//! Route-cache conformance: the optimized [`MessageBus`] must be
//! observably byte-identical to the cache-free [`ReferenceBus`].
//!
//! Each schedule drives both buses in lockstep through a seeded random
//! interleaving of every mutation that invalidates a cached route —
//! subscribe, unsubscribe, loss-rule install/remove, latency-rule
//! install/remove, tamper install/remove — mixed with publishes, clock
//! steps and drains. After every drain and at the end of the schedule the
//! delivered message sequences, the full stats snapshot (including the
//! per-topic map and the latency histogram) and the event trace must be
//! exactly equal. Both buses share a loss-RNG seed, so even probabilistic
//! packet fates must line up draw for draw.

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use sesame_middleware::bus::{MessageBus, Subscription, TamperId};
use sesame_middleware::message::{Message, Payload};
use sesame_middleware::reference::{RefSubscription, ReferenceBus};
use sesame_types::time::{SimDuration, SimTime};
use std::sync::Arc;

const SCHEDULES: u64 = 200;
const OPS_PER_SCHEDULE: usize = 80;

/// Patterns used for subscriptions (all valid — the optimized bus rejects
/// invalid filters at subscribe time by design).
const SUB_PATTERNS: &[&str] = &[
    "#",
    "/a/#",
    "/a/+",
    "/a/b",
    "/b/#",
    "+/b",
    "/c",
    "/uav1/+/waypoint",
];

/// Patterns used for loss/latency/tamper rules; includes an invalid one
/// (`#` mid-pattern) to exercise the lenient never-matching compile path.
const RULE_PATTERNS: &[&str] = &["#", "/a/#", "/a/b", "/b/+", "/c", "a/#/b"];

const TOPICS: &[&str] = &[
    "/a/b",
    "/a/c",
    "/a/b/c",
    "/b/x",
    "/b/b",
    "/c",
    "a/b",
    "/uav1/cmd/waypoint",
];

fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> &'a T {
    &xs[(rng.next_u64() % xs.len() as u64) as usize]
}

/// A paired subscription, created from the same pattern on both buses.
struct SubPair {
    opt: Subscription,
    reference: RefSubscription,
    active: bool,
}

/// A paired tamper hook, installed with identical closures on both buses.
struct TamperPair {
    opt: TamperId,
    reference: usize,
    live: bool,
}

fn assert_drained_equal(schedule: u64, got: &[Arc<Message>], want: &[Message]) {
    assert_eq!(
        got.len(),
        want.len(),
        "schedule {schedule}: drained lengths diverged"
    );
    for (g, w) in got.iter().zip(want) {
        assert_eq!(**g, *w, "schedule {schedule}: drained message diverged");
    }
}

#[test]
fn optimized_bus_is_byte_identical_to_reference_across_200_schedules() {
    for schedule in 0..SCHEDULES {
        let mut rng = StdRng::seed_from_u64(schedule_seed(schedule));
        let loss_seed = rng.next_u64();
        let mut opt = MessageBus::seeded(loss_seed);
        let mut reference = ReferenceBus::seeded(loss_seed);

        let mut subs: Vec<SubPair> = Vec::new();
        let mut tampers: Vec<TamperPair> = Vec::new();
        let mut now = SimTime::ZERO;
        let mut payload_n = 0u64;

        for _ in 0..OPS_PER_SCHEDULE {
            match rng.next_u64() % 100 {
                // Publish: the most common op, so schedules carry traffic
                // across every cache state.
                0..=34 => {
                    let topic = *pick(&mut rng, TOPICS);
                    let sender = *pick(&mut rng, &["gcs", "uav1", "uav2"]);
                    payload_n += 1;
                    let payload = Payload::Text(format!("p{payload_n}"));
                    opt.publish(now, sender, topic, payload.clone());
                    reference.publish(now, sender, topic, payload);
                }
                // Step the clock forward and deliver.
                35..=54 => {
                    now += SimDuration::from_millis(10 + (rng.next_u64() % 8) * 25);
                    let a = opt.step(now);
                    let b = reference.step(now);
                    assert_eq!(a, b, "schedule {schedule}: delivery counts diverged");
                }
                // Subscribe (occasionally with a tight queue depth, so
                // overflow accounting is exercised too).
                55..=64 => {
                    let pattern = *pick(&mut rng, SUB_PATTERNS);
                    let depth = if rng.random::<bool>() { 2 } else { 1024 };
                    subs.push(SubPair {
                        opt: opt.subscribe_with_depth(pattern, depth),
                        reference: reference.subscribe_with_depth(pattern, depth),
                        active: true,
                    });
                }
                // Unsubscribe a random live pair.
                65..=69 => {
                    if let Some(p) = live_pick(&mut rng, &mut subs, |s| s.active) {
                        p.active = false;
                        opt.unsubscribe(p.opt).expect("pair is live");
                        reference.unsubscribe(p.reference);
                    }
                }
                // Loss rules in and out.
                70..=76 => {
                    let pattern = *pick(&mut rng, RULE_PATTERNS);
                    let prob = match rng.next_u64() % 3 {
                        0 => 0.0,
                        1 => 0.5,
                        _ => 1.0,
                    };
                    opt.set_loss(pattern, prob);
                    reference.set_loss(pattern, prob);
                }
                77..=80 => {
                    let pattern = *pick(&mut rng, RULE_PATTERNS);
                    opt.remove_loss(pattern);
                    reference.remove_loss(pattern);
                }
                // Latency rules in and out.
                81..=85 => {
                    let pattern = *pick(&mut rng, RULE_PATTERNS);
                    let latency = SimDuration::from_millis(10 + (rng.next_u64() % 5) * 40);
                    opt.set_topic_latency(pattern, latency);
                    reference.set_topic_latency(pattern, latency);
                }
                86..=88 => {
                    let pattern = *pick(&mut rng, RULE_PATTERNS);
                    opt.remove_topic_latency(pattern);
                    reference.remove_topic_latency(pattern);
                }
                // Tamper hooks in and out — including a topic-rewriting
                // hook, the nastiest case for a cached route.
                89..=92 => {
                    let pattern = *pick(&mut rng, RULE_PATTERNS);
                    let kind = rng.next_u64() % 3;
                    tampers.push(TamperPair {
                        opt: opt.install_tamper(pattern, make_tamper(kind)),
                        reference: reference.install_tamper(pattern, make_tamper(kind)),
                        live: true,
                    });
                }
                93..=94 => {
                    if let Some(t) = live_pick(&mut rng, &mut tampers, |t| t.live) {
                        t.live = false;
                        opt.remove_tamper(t.opt);
                        reference.remove_tamper(t.reference);
                    }
                }
                // Drain a random live pair and compare byte for byte.
                _ => {
                    if let Some(p) = live_pick(&mut rng, &mut subs, |s| s.active) {
                        let (po, pr) = (p.opt, p.reference);
                        let got = opt.drain(po).expect("pair is live");
                        let want = reference.drain(pr);
                        assert_drained_equal(schedule, &got, &want);
                    }
                }
            }
        }

        // Flush everything still in flight and drain every live pair.
        now += SimDuration::from_secs(10);
        assert_eq!(
            opt.step(now),
            reference.step(now),
            "schedule {schedule}: final delivery counts diverged"
        );
        for p in subs.iter().filter(|p| p.active) {
            let got = opt.drain(p.opt).expect("pair is live");
            let want = reference.drain(p.reference);
            assert_drained_equal(schedule, &got, &want);
        }

        assert_eq!(opt.in_flight_len(), reference.in_flight_len());
        assert_eq!(
            opt.stats(),
            *reference.stats(),
            "schedule {schedule}: stats snapshots diverged"
        );
        assert_eq!(
            *opt.trace(),
            *reference.trace(),
            "schedule {schedule}: traces diverged"
        );
    }
}

/// Picks a random element satisfying `alive` (uniformly over the whole
/// vec, retrying a bounded number of times so schedules stay cheap).
fn live_pick<'a, T>(
    rng: &mut StdRng,
    xs: &'a mut [T],
    alive: impl Fn(&T) -> bool,
) -> Option<&'a mut T> {
    if xs.is_empty() {
        return None;
    }
    let start = (rng.next_u64() % xs.len() as u64) as usize;
    let idx = (0..xs.len())
        .map(|o| (start + o) % xs.len())
        .find(|&i| alive(&xs[i]))?;
    Some(&mut xs[idx])
}

/// Identical deterministic tamper closures for both buses.
fn make_tamper(kind: u64) -> sesame_middleware::bus::TamperFn {
    match kind {
        // Mutate the payload.
        0 => Box::new(|m: &mut Message| {
            m.payload = match &m.payload {
                Payload::Text(s) => Payload::Text(format!("{s}!")),
                other => other.clone(),
            };
            true
        }),
        // Inspect but decline (returns false — must not count as tampered).
        1 => Box::new(|_m: &mut Message| false),
        // Rewrite the topic: deliveries must follow the new topic.
        _ => Box::new(|m: &mut Message| {
            if m.topic != "/b/b" {
                m.topic = "/b/b".into();
                true
            } else {
                false
            }
        }),
    }
}

/// Spreads schedule indices across the seed space (a fixed affine map —
/// nothing magic, just decorrelates neighbouring schedules).
fn schedule_seed(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5E5A_4E00
}
