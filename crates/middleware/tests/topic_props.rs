//! Property tests of MQTT-style topic matching and bus delivery.

use proptest::prelude::*;
use sesame_middleware::broker::topic_matches;
use sesame_middleware::bus::MessageBus;
use sesame_middleware::message::Payload;
use sesame_types::time::SimTime;

fn segment() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,5}".prop_map(|s| s)
}

fn topic() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(segment(), 1..5)
}

fn join(segs: &[String]) -> String {
    segs.join("/")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A topic always matches itself, and `#` matches everything.
    #[test]
    fn reflexivity_and_hash(segs in topic()) {
        let t = join(&segs);
        prop_assert!(topic_matches(&t, &t));
        prop_assert!(topic_matches("#", &t));
        let slashed = format!("/{t}");
        prop_assert!(topic_matches(&t, &slashed), "leading slash is ignored");
    }

    /// Replacing any single segment of a topic with `+` still matches.
    #[test]
    fn plus_generalizes_each_segment(segs in topic(), idx in 0usize..5) {
        let t = join(&segs);
        let i = idx % segs.len();
        let mut pat = segs.clone();
        pat[i] = "+".into();
        prop_assert!(topic_matches(&join(&pat), &t));
    }

    /// Truncating a pattern and appending `#` still matches.
    #[test]
    fn hash_suffix_generalizes(segs in topic(), cut in 0usize..5) {
        let t = join(&segs);
        let keep = cut % segs.len();
        let mut pat: Vec<String> = segs[..keep].to_vec();
        pat.push("#".into());
        prop_assert!(topic_matches(&join(&pat), &t));
    }

    /// A pattern with more specific segments than the topic never matches.
    #[test]
    fn longer_exact_pattern_never_matches(segs in topic(), extra in segment()) {
        let t = join(&segs);
        let mut pat = segs.clone();
        pat.push(extra);
        prop_assert!(!topic_matches(&join(&pat), &t));
    }

    /// Bus delivery respects subscriptions: an exact subscriber sees
    /// exactly the messages on its topic, a `#` subscriber sees all.
    #[test]
    fn bus_delivery_counts(topics in proptest::collection::vec(topic(), 1..8)) {
        let mut bus = MessageBus::new();
        let all = bus.subscribe("#");
        let first = join(&topics[0]);
        let exact = bus.subscribe(first.clone());
        for t in &topics {
            bus.publish(SimTime::ZERO, "n", join(t), Payload::Text("x".into()));
        }
        bus.step(SimTime::from_millis(100));
        prop_assert_eq!(bus.drain(all).unwrap().len(), topics.len());
        let expected = topics.iter().filter(|t| join(t) == first).count();
        prop_assert_eq!(bus.drain(exact).unwrap().len(), expected);
    }
}
