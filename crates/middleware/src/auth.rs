//! Lightweight message authentication.
//!
//! Real deployments would use HMAC or the ECIES-based schemes the paper
//! cites (\[21\]); here a keyed FNV-1a construction provides the same *system
//! property* — an adversary without the key cannot forge a valid tag — with
//! no cryptographic dependencies. This is a simulation artefact, **not** a
//! secure MAC; see DESIGN.md.

use crate::message::{Message, Payload};

/// A shared signing key distributed to legitimate platform nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AuthKey(u64);

impl AuthKey {
    /// Creates a key from raw material.
    pub fn new(key: u64) -> Self {
        AuthKey(key)
    }
}

/// Signs and verifies bus messages with a shared [`AuthKey`].
///
/// # Examples
///
/// ```
/// use sesame_middleware::auth::{AuthKey, MessageAuth};
/// use sesame_middleware::message::{Message, Payload};
/// use sesame_types::time::SimTime;
///
/// let auth = MessageAuth::new(AuthKey::new(0xC0FFEE));
/// let mut m = Message::new("/t", "node:a", 1, SimTime::ZERO, Payload::Text("hi".into()));
/// auth.sign(&mut m);
/// assert!(auth.verify(&m));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MessageAuth {
    key: AuthKey,
}

impl MessageAuth {
    /// Creates an authenticator for `key`.
    pub fn new(key: AuthKey) -> Self {
        MessageAuth { key }
    }

    /// Computes the tag for `msg` under this key.
    pub fn tag(&self, msg: &Message) -> u64 {
        let mut h = Fnv1a::new(self.key.0);
        h.write(msg.topic.as_bytes());
        h.write(msg.sender.as_bytes());
        h.write(&msg.seq.to_le_bytes());
        h.write(&msg.sent_at.as_millis().to_le_bytes());
        hash_payload(&mut h, &msg.payload);
        h.finish()
    }

    /// Signs `msg` in place.
    pub fn sign(&self, msg: &mut Message) {
        msg.auth_tag = Some(self.tag(msg));
    }

    /// Verifies `msg`'s tag. Unsigned messages never verify.
    pub fn verify(&self, msg: &Message) -> bool {
        msg.auth_tag == Some(self.tag(msg))
    }
}

fn hash_payload(h: &mut Fnv1a, p: &Payload) {
    match p {
        Payload::Telemetry(t) => {
            h.write(&[0u8]);
            h.write(&t.uav.index().to_le_bytes());
            h.write(&t.true_position.lat_deg.to_bits().to_le_bytes());
            h.write(&t.true_position.lon_deg.to_bits().to_le_bytes());
            h.write(&t.battery_soc.to_bits().to_le_bytes());
        }
        Payload::WaypointCommand { uav, waypoint } => {
            h.write(&[1u8]);
            h.write(&uav.index().to_le_bytes());
            h.write(&waypoint.lat_deg.to_bits().to_le_bytes());
            h.write(&waypoint.lon_deg.to_bits().to_le_bytes());
            h.write(&waypoint.alt_m.to_bits().to_le_bytes());
        }
        Payload::PositionEstimate {
            uav,
            position,
            accuracy_m,
            ..
        } => {
            h.write(&[2u8]);
            h.write(&uav.index().to_le_bytes());
            h.write(&position.lat_deg.to_bits().to_le_bytes());
            h.write(&position.lon_deg.to_bits().to_le_bytes());
            h.write(&accuracy_m.to_bits().to_le_bytes());
        }
        Payload::ModeCommand { uav, mode } => {
            h.write(&[3u8]);
            h.write(&uav.index().to_le_bytes());
            h.write(mode.as_bytes());
        }
        Payload::Alert {
            rule,
            subject,
            detail,
        } => {
            h.write(&[4u8]);
            h.write(rule.as_bytes());
            h.write(&subject.index().to_le_bytes());
            h.write(detail.as_bytes());
        }
        Payload::Text(s) => {
            h.write(&[5u8]);
            h.write(s.as_bytes());
        }
        Payload::Raw(b) => {
            h.write(&[6u8]);
            h.write(b);
        }
    }
}

/// Keyed FNV-1a, 64-bit.
#[derive(Debug)]
struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    fn new(key: u64) -> Self {
        Fnv1a {
            state: 0xcbf2_9ce4_8422_2325 ^ key.rotate_left(17),
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        // Final avalanche (splitmix64 finalizer) so nearby inputs differ.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesame_types::geo::GeoPoint;
    use sesame_types::ids::UavId;
    use sesame_types::time::SimTime;

    fn msg(payload: Payload) -> Message {
        Message::new("/cmd", "node:gcs", 7, SimTime::from_secs(1), payload)
    }

    #[test]
    fn sign_verify_round_trip() {
        let auth = MessageAuth::new(AuthKey::new(42));
        let mut m = msg(Payload::Text("hello".into()));
        assert!(!auth.verify(&m), "unsigned must not verify");
        auth.sign(&mut m);
        assert!(auth.verify(&m));
    }

    #[test]
    fn wrong_key_rejects() {
        let signer = MessageAuth::new(AuthKey::new(1));
        let verifier = MessageAuth::new(AuthKey::new(2));
        let mut m = msg(Payload::Text("hello".into()));
        signer.sign(&mut m);
        assert!(!verifier.verify(&m));
    }

    #[test]
    fn tampering_invalidates_tag() {
        let auth = MessageAuth::new(AuthKey::new(9));
        let mut m = msg(Payload::WaypointCommand {
            uav: UavId::new(1),
            waypoint: GeoPoint::new(35.0, 33.0, 50.0),
        });
        auth.sign(&mut m);
        assert!(auth.verify(&m));
        // An in-flight MITM shifts the waypoint.
        if let Payload::WaypointCommand { waypoint, .. } = &mut m.payload {
            waypoint.lat_deg += 0.001;
        }
        assert!(!auth.verify(&m));
    }

    #[test]
    fn tag_covers_header_fields() {
        let auth = MessageAuth::new(AuthKey::new(9));
        let mut m = msg(Payload::Text("x".into()));
        auth.sign(&mut m);
        m.seq += 1; // replay with bumped sequence
        assert!(!auth.verify(&m));
    }

    #[test]
    fn distinct_payload_kinds_distinct_tags() {
        let auth = MessageAuth::new(AuthKey::new(9));
        let a = auth.tag(&msg(Payload::Text(String::new())));
        let b = auth.tag(&msg(Payload::Raw(bytes::Bytes::new())));
        assert_ne!(a, b);
    }
}
