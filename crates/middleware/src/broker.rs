//! MQTT-like alert broker.
//!
//! The Security EDDI architecture in the paper (§III-B) uses "an MQTT
//! message protocol broker" between the IDS and the per-attack-tree Python
//! scripts: the IDS publishes alerts to a topic, each script subscribes to
//! the alerts relevant to its tree. [`AlertBroker`] reproduces that hub,
//! including MQTT topic filters (`+` matches one level, `#` matches the
//! remaining levels) and retained messages.

use crate::message::{Message, Payload};
use crate::topic::Pattern;
use sesame_types::time::SimTime;
use std::collections::VecDeque;

/// Returns `true` when MQTT-style `pattern` matches `topic`.
///
/// `+` matches exactly one path segment, `#` (only valid as the final
/// segment) matches any number of remaining segments, including zero.
/// Leading slashes are ignored so `/a/b` and `a/b` are equivalent.
///
/// # Examples
///
/// ```
/// use sesame_middleware::broker::topic_matches;
///
/// assert!(topic_matches("ids/alerts/#", "ids/alerts/uav1/spoof"));
/// assert!(topic_matches("ids/+/uav1", "ids/alerts/uav1"));
/// assert!(!topic_matches("ids/+", "ids/alerts/uav1"));
/// ```
pub fn topic_matches(pattern: &str, topic: &str) -> bool {
    let mut pat = pattern.split('/').filter(|s| !s.is_empty()).peekable();
    let mut top = topic.split('/').filter(|s| !s.is_empty());
    while let Some(p) = pat.next() {
        match p {
            "#" => return pat.peek().is_none(),
            "+" => {
                if top.next().is_none() {
                    return false;
                }
            }
            seg => {
                if top.next() != Some(seg) {
                    return false;
                }
            }
        }
    }
    top.next().is_none()
}

/// Handle to a broker subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BrokerSubscription(usize);

struct BrokerSub {
    filter: Pattern,
    queue: VecDeque<Message>,
}

/// A tiny MQTT-like broker: immediate fan-out (no modelled latency — the
/// broker runs on the ground station LAN), topic filters, retained
/// messages.
///
/// # Examples
///
/// ```
/// use sesame_middleware::broker::AlertBroker;
/// use sesame_middleware::message::Payload;
/// use sesame_types::ids::UavId;
/// use sesame_types::time::SimTime;
///
/// let mut broker = AlertBroker::new();
/// let sub = broker.subscribe("ids/alerts/#");
/// broker.publish(SimTime::ZERO, "ids", "ids/alerts/uav1", Payload::Alert {
///     rule: "unsigned_cmd".into(),
///     subject: UavId::new(1),
///     detail: "unsigned waypoint command".into(),
/// });
/// assert_eq!(broker.drain(sub).len(), 1);
/// ```
#[derive(Default)]
pub struct AlertBroker {
    subs: Vec<BrokerSub>,
    retained: Vec<Message>,
    published: u64,
    offline: bool,
    lost_to_outage: u64,
}

impl std::fmt::Debug for AlertBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlertBroker")
            .field("subscribers", &self.subs.len())
            .field("retained", &self.retained.len())
            .field("published", &self.published)
            .field("offline", &self.offline)
            .field("lost_to_outage", &self.lost_to_outage)
            .finish()
    }
}

impl AlertBroker {
    /// Creates an empty broker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribes to `filter`. Retained messages matching the filter are
    /// delivered immediately.
    pub fn subscribe(&mut self, filter: impl Into<String>) -> BrokerSubscription {
        let filter = Pattern::parse_lenient(filter.into());
        let mut queue = VecDeque::new();
        for m in &self.retained {
            if filter.matches_topic(&m.topic) {
                queue.push_back(m.clone());
            }
        }
        self.subs.push(BrokerSub { filter, queue });
        BrokerSubscription(self.subs.len() - 1)
    }

    /// Publishes to every matching subscriber immediately.
    pub fn publish(
        &mut self,
        now: SimTime,
        sender: impl Into<String>,
        topic: impl Into<String>,
        payload: Payload,
    ) {
        let msg = Message::new(topic.into(), sender.into(), self.published, now, payload);
        self.published += 1;
        self.fan_out(msg);
    }

    /// Publishes with the retain flag: the broker stores the message and
    /// replays it to future subscribers (MQTT retained-message semantics;
    /// one retained message per topic, newest wins).
    pub fn publish_retained(
        &mut self,
        now: SimTime,
        sender: impl Into<String>,
        topic: impl Into<String>,
        payload: Payload,
    ) {
        let topic = topic.into();
        let msg = Message::new(topic.clone(), sender.into(), self.published, now, payload);
        self.published += 1;
        self.retained.retain(|m| m.topic != topic);
        self.retained.push(msg.clone());
        self.fan_out(msg);
    }

    fn fan_out(&mut self, msg: Message) {
        if self.offline {
            self.lost_to_outage += 1;
            return;
        }
        for sub in &mut self.subs {
            if sub.filter.matches_topic(&msg.topic) {
                sub.queue.push_back(msg.clone());
            }
        }
    }

    /// Takes the broker offline (an injected outage) or brings it back.
    /// While offline, publishes are accepted but reach nobody — retained
    /// messages are still stored and replay once service resumes, which is
    /// exactly the MQTT behaviour the QoS-0 alert path degrades to.
    pub fn set_offline(&mut self, offline: bool) {
        self.offline = offline;
    }

    /// Whether the broker is currently offline.
    pub fn is_offline(&self) -> bool {
        self.offline
    }

    /// Messages that reached no subscriber because the broker was offline.
    pub fn lost_to_outage(&self) -> u64 {
        self.lost_to_outage
    }

    /// Removes and returns the queued messages for `sub`, oldest first.
    pub fn drain(&mut self, sub: BrokerSubscription) -> Vec<Message> {
        self.subs
            .get_mut(sub.0)
            .map(|s| s.queue.drain(..).collect())
            .unwrap_or_default()
    }

    /// Number of messages queued for `sub`.
    pub fn queued(&self, sub: BrokerSubscription) -> usize {
        self.subs.get(sub.0).map_or(0, |s| s.queue.len())
    }

    /// Total messages published through the broker.
    pub fn published(&self) -> u64 {
        self.published
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesame_types::ids::UavId;

    fn alert(rule: &str) -> Payload {
        Payload::Alert {
            rule: rule.into(),
            subject: UavId::new(1),
            detail: String::new(),
        }
    }

    #[test]
    fn exact_match() {
        assert!(topic_matches("a/b/c", "a/b/c"));
        assert!(!topic_matches("a/b/c", "a/b"));
        assert!(!topic_matches("a/b", "a/b/c"));
        assert!(topic_matches("/a/b", "a/b"), "leading slash ignored");
    }

    #[test]
    fn plus_matches_single_level() {
        assert!(topic_matches("a/+/c", "a/b/c"));
        assert!(!topic_matches("a/+/c", "a/b/x/c"));
        assert!(!topic_matches("a/+", "a"));
        assert!(topic_matches("+/+", "x/y"));
    }

    #[test]
    fn hash_matches_rest_including_empty() {
        assert!(topic_matches("a/#", "a/b/c"));
        assert!(topic_matches("a/#", "a"));
        assert!(topic_matches("#", "anything/at/all"));
        assert!(!topic_matches("a/#/b", "a/x/b"), "# only valid at end");
    }

    #[test]
    fn broker_fan_out_and_drain() {
        let mut b = AlertBroker::new();
        let all = b.subscribe("ids/#");
        let spoof_only = b.subscribe("ids/alerts/spoof");
        b.publish(SimTime::ZERO, "ids", "ids/alerts/spoof", alert("spoof"));
        b.publish(SimTime::ZERO, "ids", "ids/alerts/replay", alert("replay"));
        assert_eq!(b.drain(all).len(), 2);
        assert_eq!(b.drain(spoof_only).len(), 1);
        assert_eq!(b.queued(all), 0);
        assert_eq!(b.published(), 2);
    }

    #[test]
    fn retained_message_reaches_late_subscriber() {
        let mut b = AlertBroker::new();
        b.publish_retained(SimTime::ZERO, "ids", "ids/status", alert("armed"));
        let late = b.subscribe("ids/#");
        assert_eq!(b.drain(late).len(), 1);
    }

    #[test]
    fn newest_retained_wins() {
        let mut b = AlertBroker::new();
        b.publish_retained(SimTime::ZERO, "ids", "ids/status", alert("v1"));
        b.publish_retained(SimTime::from_secs(1), "ids", "ids/status", alert("v2"));
        let late = b.subscribe("ids/status");
        let msgs = b.drain(late);
        assert_eq!(msgs.len(), 1);
        assert!(matches!(&msgs[0].payload, Payload::Alert { rule, .. } if rule == "v2"));
    }

    #[test]
    fn non_matching_subscriber_gets_nothing() {
        let mut b = AlertBroker::new();
        let sub = b.subscribe("other/#");
        b.publish(SimTime::ZERO, "ids", "ids/alerts", alert("x"));
        assert_eq!(b.drain(sub).len(), 0);
    }

    #[test]
    fn outage_swallows_publishes_until_service_resumes() {
        let mut b = AlertBroker::new();
        let sub = b.subscribe("ids/#");
        b.set_offline(true);
        assert!(b.is_offline());
        b.publish(SimTime::ZERO, "ids", "ids/alerts", alert("lost"));
        b.publish(SimTime::ZERO, "ids", "ids/alerts", alert("also_lost"));
        assert_eq!(b.drain(sub).len(), 0);
        assert_eq!(b.lost_to_outage(), 2);
        b.set_offline(false);
        b.publish(SimTime::from_secs(1), "ids", "ids/alerts", alert("heard"));
        let got = b.drain(sub);
        assert_eq!(got.len(), 1);
        assert!(matches!(&got[0].payload, Payload::Alert { rule, .. } if rule == "heard"));
    }

    #[test]
    fn retained_survive_an_outage_for_late_subscribers() {
        let mut b = AlertBroker::new();
        b.set_offline(true);
        b.publish_retained(SimTime::ZERO, "ids", "ids/status", alert("v1"));
        b.set_offline(false);
        // The live fan-out was lost, but the retained copy replays.
        let late = b.subscribe("ids/status");
        assert_eq!(b.drain(late).len(), 1);
    }
}
