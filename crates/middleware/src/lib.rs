//! ROS-like publish/subscribe middleware with an attack-injection plane.
//!
//! The paper's multi-UAV platform uses ROS for command and control and notes
//! that ROS's publish/subscribe architecture "brings certain security
//! vulnerabilities, such as the risk of eavesdropping, man-in-the-middle
//! attacks, and data injection" (§I). This crate reproduces exactly that
//! surface:
//!
//! * [`bus::MessageBus`] — deterministic topic-based pub/sub with per-topic
//!   QoS, modelled latency and loss, and sequence numbering;
//! * [`auth`] — lightweight message authentication so that *protected*
//!   topics can be distinguished from the unauthenticated ones an adversary
//!   can inject into;
//! * [`attack`] — the adversary: spoofed publishers, man-in-the-middle
//!   tampering, replay, and eavesdropping taps;
//! * [`broker::AlertBroker`] — the MQTT-style broker (with `+`/`#` topic
//!   filters) that carries IDS alerts to the Security EDDI scripts
//!   (§III-B);
//! * [`chaos::CommFaultPlane`] — scheduled communication faults (link
//!   blackouts, asymmetric partitions, broker outages, telemetry
//!   staleness) that chaos campaigns layer over a run.
//!
//! The bus is single-threaded and deterministic: delivery happens when the
//! platform calls [`bus::MessageBus::step`], which makes every experiment in
//! the repository bit-reproducible.
//!
//! # Examples
//!
//! ```
//! use sesame_middleware::bus::MessageBus;
//! use sesame_middleware::message::Payload;
//! use sesame_types::time::SimTime;
//!
//! let mut bus = MessageBus::new();
//! let sub = bus.subscribe("/uav1/telemetry");
//! bus.publish(
//!     SimTime::ZERO,
//!     "node:gcs",
//!     "/uav1/telemetry",
//!     Payload::Text("hello".into()),
//! );
//! bus.step(SimTime::from_millis(100));
//! let got = bus.drain(sub).expect("subscription is live");
//! assert_eq!(got.len(), 1);
//! ```

pub mod attack;
pub mod auth;
pub mod broker;
pub mod bus;
pub mod chaos;
pub mod message;
pub mod network;
pub mod reference;
pub mod topic;

pub use attack::{AttackInjector, AttackKind};
pub use auth::{AuthKey, MessageAuth};
pub use broker::{AlertBroker, BrokerSubscription};
pub use bus::{BusCounters, BusError, BusStats, MessageBus, Subscription, TopicStats};
pub use message::{Message, Payload};
pub use network::{LinkQuality, NetworkModel};
pub use reference::{RefSubscription, ReferenceBus};
pub use topic::{Pattern, PatternError, TopicId, TopicTable};
