//! Scheduled communication faults — the chaos plane of the middleware.
//!
//! The distance-derived [`crate::network::NetworkModel`] explains *how
//! good* a link is; this module injects *what goes wrong when*: total link
//! blackouts, asymmetric partitions (one direction of a link dies while
//! the other survives), broker outages, and telemetry-staleness windows.
//! Each fault is scheduled with a start time and a duration, applied to
//! the [`crate::bus::MessageBus`] / [`crate::broker::AlertBroker`] when it
//! activates, and cleanly retracted when it expires — so a chaos campaign
//! can layer dozens of faults over a run and the bus always ends in a
//! consistent state. Everything is deterministic: the schedule is data,
//! and the bus's own seeded RNG decides individual packet fates.
//!
//! # Examples
//!
//! ```
//! use sesame_middleware::broker::AlertBroker;
//! use sesame_middleware::bus::MessageBus;
//! use sesame_middleware::chaos::{CommFaultKind, CommFaultPlane};
//! use sesame_types::ids::UavId;
//! use sesame_types::time::{SimDuration, SimTime};
//!
//! let mut plane = CommFaultPlane::new();
//! plane.schedule(
//!     SimTime::from_secs(10),
//!     SimDuration::from_secs(5),
//!     CommFaultKind::LinkBlackout { uav: UavId::new(1) },
//! );
//! let mut bus = MessageBus::new();
//! let mut broker = AlertBroker::new();
//! // Inside the platform tick loop:
//! let transitions = plane.step(SimTime::from_secs(10), &mut bus, &mut broker);
//! assert_eq!(transitions.len(), 1);
//! assert!(transitions[0].activated);
//! ```

use crate::broker::AlertBroker;
use crate::bus::MessageBus;
use sesame_types::ids::UavId;
use sesame_types::time::{SimDuration, SimTime};

/// Which direction of a UAV ↔ GCS link an asymmetric partition severs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDirection {
    /// GCS → UAV: commands and heartbeats (`/{uav}/cmd/#`).
    Uplink,
    /// UAV → GCS: telemetry (`/{uav}/telemetry`).
    Downlink,
}

/// The injectable communication fault kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum CommFaultKind {
    /// Total radio blackout of one UAV: every topic under `/{uav}/#`
    /// drops, both directions.
    LinkBlackout {
        /// The affected UAV.
        uav: UavId,
    },
    /// One direction of the link dies; the other keeps flowing. The
    /// classic nasty case: the GCS still *sees* the UAV but cannot
    /// command it (uplink cut), or flies blind while the UAV still
    /// obeys (downlink cut).
    AsymmetricPartition {
        /// The affected UAV.
        uav: UavId,
        /// Which direction is severed.
        direction: LinkDirection,
    },
    /// The MQTT-style alert broker goes down: IDS alerts and EDDI
    /// security scripts hear nothing until service resumes.
    BrokerOutage,
    /// Telemetry from one UAV still arrives, but late — stale enough to
    /// trip a staleness watchdog without a single drop.
    TelemetryStaleness {
        /// The affected UAV.
        uav: UavId,
        /// Extra one-way delay applied to the telemetry topic.
        delay: SimDuration,
    },
}

impl CommFaultKind {
    /// Short stable label for traces and metrics.
    pub fn label(&self) -> String {
        match self {
            CommFaultKind::LinkBlackout { uav } => format!("link_blackout_{uav}"),
            CommFaultKind::AsymmetricPartition { uav, direction } => match direction {
                LinkDirection::Uplink => format!("uplink_partition_{uav}"),
                LinkDirection::Downlink => format!("downlink_partition_{uav}"),
            },
            CommFaultKind::BrokerOutage => "broker_outage".to_string(),
            CommFaultKind::TelemetryStaleness { uav, .. } => {
                format!("telemetry_staleness_{uav}")
            }
        }
    }

    /// The bus topic pattern this fault manages, if it is a bus fault.
    fn pattern(&self) -> Option<String> {
        match self {
            CommFaultKind::LinkBlackout { uav } => Some(format!("/{uav}/#")),
            CommFaultKind::AsymmetricPartition { uav, direction } => Some(match direction {
                LinkDirection::Uplink => format!("/{uav}/cmd/#"),
                LinkDirection::Downlink => format!("/{uav}/telemetry"),
            }),
            CommFaultKind::BrokerOutage => None,
            CommFaultKind::TelemetryStaleness { uav, .. } => Some(format!("/{uav}/telemetry")),
        }
    }
}

/// One scheduled communication fault: active in `[at, until)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CommFault {
    /// Activation time.
    pub at: SimTime,
    /// Expiry time (exclusive).
    pub until: SimTime,
    /// What breaks.
    pub kind: CommFaultKind,
}

/// A fault activating or expiring, reported by [`CommFaultPlane::step`]
/// so the orchestrator can count and trace it.
#[derive(Debug, Clone, PartialEq)]
pub struct CommFaultTransition {
    /// Stable label of the fault (see [`CommFaultKind::label`]).
    pub label: String,
    /// `true` on activation, `false` on expiry.
    pub activated: bool,
    /// The fault itself.
    pub fault: CommFault,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultPhase {
    Pending,
    Active,
    Done,
}

/// The scheduled communication-fault plane. Owns no bus state of its own:
/// every activation and expiry is translated into loss/latency rules on
/// the bus (or the broker's offline flag), and the full managed rule set
/// is rebuilt on every transition so overlapping faults on the same
/// topic compose correctly.
#[derive(Debug, Default)]
pub struct CommFaultPlane {
    entries: Vec<(CommFault, FaultPhase)>,
}

impl CommFaultPlane {
    /// An empty plane.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a fault active in `[at, at + duration)`. Zero-duration
    /// faults are accepted and simply never activate.
    pub fn schedule(&mut self, at: SimTime, duration: SimDuration, kind: CommFaultKind) {
        let fault = CommFault {
            at,
            until: at + duration,
            kind,
        };
        self.entries.push((fault, FaultPhase::Pending));
    }

    /// Faults not yet expired.
    pub fn pending(&self) -> usize {
        self.entries
            .iter()
            .filter(|(_, p)| *p != FaultPhase::Done)
            .count()
    }

    /// Currently active faults.
    pub fn active(&self) -> impl Iterator<Item = &CommFault> {
        self.entries
            .iter()
            .filter(|(_, p)| *p == FaultPhase::Active)
            .map(|(f, _)| f)
    }

    /// Whether any active fault currently severs `uav`'s link in the
    /// given direction (blackouts sever both).
    pub fn severs(&self, uav: UavId, direction: LinkDirection) -> bool {
        self.active().any(|f| match &f.kind {
            CommFaultKind::LinkBlackout { uav: u } => *u == uav,
            CommFaultKind::AsymmetricPartition {
                uav: u,
                direction: d,
            } => *u == uav && *d == direction,
            _ => false,
        })
    }

    /// Advances the plane to `now`: activates due faults, expires old
    /// ones, and reconciles the bus/broker with the surviving active set.
    /// Returns every transition that happened, for tracing.
    pub fn step(
        &mut self,
        now: SimTime,
        bus: &mut MessageBus,
        broker: &mut AlertBroker,
    ) -> Vec<CommFaultTransition> {
        let mut transitions = Vec::new();
        for (fault, phase) in self.entries.iter_mut() {
            match *phase {
                FaultPhase::Pending if fault.until <= now || fault.until <= fault.at => {
                    // Expired (or empty) before ever applying.
                    *phase = FaultPhase::Done;
                }
                FaultPhase::Pending if fault.at <= now => {
                    *phase = FaultPhase::Active;
                    transitions.push(CommFaultTransition {
                        label: fault.kind.label(),
                        activated: true,
                        fault: fault.clone(),
                    });
                }
                FaultPhase::Active if fault.until <= now => {
                    *phase = FaultPhase::Done;
                    transitions.push(CommFaultTransition {
                        label: fault.kind.label(),
                        activated: false,
                        fault: fault.clone(),
                    });
                }
                _ => {}
            }
        }
        if !transitions.is_empty() {
            self.reconcile(bus, broker);
        }
        transitions
    }

    /// Rebuilds every managed rule from the active set: first retract all
    /// patterns any entry has ever managed, then re-apply the active
    /// faults in schedule order (so a blackout layered over a staleness
    /// window wins while it lasts, and the staleness rule survives it).
    fn reconcile(&self, bus: &mut MessageBus, broker: &mut AlertBroker) {
        for (fault, _) in &self.entries {
            if let Some(pattern) = fault.kind.pattern() {
                bus.remove_loss(&pattern);
                bus.remove_topic_latency(&pattern);
            }
        }
        let mut broker_down = false;
        for fault in self.active() {
            match &fault.kind {
                CommFaultKind::LinkBlackout { .. } | CommFaultKind::AsymmetricPartition { .. } => {
                    let pattern = fault.kind.pattern().expect("bus fault has a pattern");
                    bus.set_loss(pattern, 1.0);
                }
                CommFaultKind::BrokerOutage => broker_down = true,
                CommFaultKind::TelemetryStaleness { delay, .. } => {
                    let pattern = fault.kind.pattern().expect("bus fault has a pattern");
                    bus.set_topic_latency(pattern, *delay);
                }
            }
        }
        broker.set_offline(broker_down);
    }
}

// Comm-fault schedules are part of the scenario description a parallel
// campaign executor clones onto worker threads.
sesame_types::assert_send_sync!(
    LinkDirection,
    CommFaultKind,
    CommFault,
    CommFaultTransition,
    CommFaultPlane
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;

    fn text() -> Payload {
        Payload::Text("x".into())
    }

    fn plane_with(kind: CommFaultKind, at: u64, secs: u64) -> CommFaultPlane {
        let mut plane = CommFaultPlane::new();
        plane.schedule(SimTime::from_secs(at), SimDuration::from_secs(secs), kind);
        plane
    }

    #[test]
    fn blackout_window_drops_both_directions_then_heals() {
        let uav = UavId::new(1);
        let mut plane = plane_with(CommFaultKind::LinkBlackout { uav }, 10, 5);
        let mut bus = MessageBus::seeded(1);
        let mut broker = AlertBroker::new();
        let tel = bus.subscribe("/uav1/telemetry");
        let cmd = bus.subscribe("/uav1/cmd/#");

        // Before the window: traffic flows.
        plane.step(SimTime::from_secs(5), &mut bus, &mut broker);
        bus.publish(
            SimTime::from_secs(5),
            "node:uav1",
            "/uav1/telemetry",
            text(),
        );
        bus.publish(
            SimTime::from_secs(5),
            "node:gcs",
            "/uav1/cmd/waypoint",
            text(),
        );
        bus.step(SimTime::from_secs(6));
        assert_eq!(bus.drain(tel).unwrap().len(), 1);
        assert_eq!(bus.drain(cmd).unwrap().len(), 1);

        // Inside: everything under /uav1/# drops.
        let tr = plane.step(SimTime::from_secs(10), &mut bus, &mut broker);
        assert!(tr[0].activated && tr[0].label == "link_blackout_uav1");
        assert!(plane.severs(uav, LinkDirection::Uplink));
        assert!(plane.severs(uav, LinkDirection::Downlink));
        bus.publish(
            SimTime::from_secs(10),
            "node:uav1",
            "/uav1/telemetry",
            text(),
        );
        bus.publish(
            SimTime::from_secs(10),
            "node:gcs",
            "/uav1/cmd/waypoint",
            text(),
        );
        bus.step(SimTime::from_secs(11));
        assert_eq!(bus.drain(tel).unwrap().len(), 0);
        assert_eq!(bus.drain(cmd).unwrap().len(), 0);

        // After: healed, no rule debris.
        let tr = plane.step(SimTime::from_secs(15), &mut bus, &mut broker);
        assert!(!tr[0].activated);
        assert_eq!(plane.active().count(), 0);
        bus.publish(
            SimTime::from_secs(15),
            "node:uav1",
            "/uav1/telemetry",
            text(),
        );
        bus.step(SimTime::from_secs(16));
        assert_eq!(bus.drain(tel).unwrap().len(), 1);
    }

    #[test]
    fn asymmetric_partition_severs_only_one_direction() {
        let uav = UavId::new(2);
        let mut plane = plane_with(
            CommFaultKind::AsymmetricPartition {
                uav,
                direction: LinkDirection::Uplink,
            },
            0,
            60,
        );
        let mut bus = MessageBus::seeded(1);
        let mut broker = AlertBroker::new();
        let tel = bus.subscribe("/uav2/telemetry");
        let cmd = bus.subscribe("/uav2/cmd/#");
        plane.step(SimTime::ZERO, &mut bus, &mut broker);
        assert!(plane.severs(uav, LinkDirection::Uplink));
        assert!(!plane.severs(uav, LinkDirection::Downlink));
        for _ in 0..5 {
            bus.publish(SimTime::ZERO, "node:uav2", "/uav2/telemetry", text());
            bus.publish(SimTime::ZERO, "node:gcs", "/uav2/cmd/waypoint", text());
        }
        bus.step(SimTime::from_secs(1));
        assert_eq!(bus.drain(tel).unwrap().len(), 5, "downlink alive");
        assert_eq!(bus.drain(cmd).unwrap().len(), 0, "uplink dead");
    }

    #[test]
    fn broker_outage_toggles_offline_flag() {
        let mut plane = plane_with(CommFaultKind::BrokerOutage, 10, 10);
        let mut bus = MessageBus::new();
        let mut broker = AlertBroker::new();
        plane.step(SimTime::from_secs(9), &mut bus, &mut broker);
        assert!(!broker.is_offline());
        plane.step(SimTime::from_secs(10), &mut bus, &mut broker);
        assert!(broker.is_offline());
        plane.step(SimTime::from_secs(20), &mut bus, &mut broker);
        assert!(!broker.is_offline());
    }

    #[test]
    fn telemetry_staleness_delays_without_dropping() {
        let uav = UavId::new(1);
        let mut plane = plane_with(
            CommFaultKind::TelemetryStaleness {
                uav,
                delay: SimDuration::from_secs(4),
            },
            0,
            30,
        );
        let mut bus = MessageBus::seeded(1);
        let mut broker = AlertBroker::new();
        let tel = bus.subscribe("/uav1/telemetry");
        plane.step(SimTime::ZERO, &mut bus, &mut broker);
        bus.publish(SimTime::ZERO, "node:uav1", "/uav1/telemetry", text());
        bus.step(SimTime::from_secs(1));
        assert_eq!(bus.drain(tel).unwrap().len(), 0, "still in flight");
        bus.step(SimTime::from_secs(4));
        assert_eq!(bus.drain(tel).unwrap().len(), 1, "late but delivered");
        assert_eq!(bus.stats().dropped, 0);
    }

    #[test]
    fn overlapping_faults_on_one_topic_compose() {
        // A staleness window spans a shorter blackout; when the blackout
        // expires the staleness rule must still hold.
        let uav = UavId::new(1);
        let mut plane = CommFaultPlane::new();
        plane.schedule(
            SimTime::from_secs(0),
            SimDuration::from_secs(100),
            CommFaultKind::TelemetryStaleness {
                uav,
                delay: SimDuration::from_secs(5),
            },
        );
        plane.schedule(
            SimTime::from_secs(10),
            SimDuration::from_secs(10),
            CommFaultKind::LinkBlackout { uav },
        );
        let mut bus = MessageBus::seeded(1);
        let mut broker = AlertBroker::new();
        let tel = bus.subscribe("/uav1/telemetry");

        plane.step(SimTime::ZERO, &mut bus, &mut broker);
        plane.step(SimTime::from_secs(10), &mut bus, &mut broker);
        bus.publish(
            SimTime::from_secs(10),
            "node:uav1",
            "/uav1/telemetry",
            text(),
        );
        bus.step(SimTime::from_secs(16));
        assert_eq!(bus.drain(tel).unwrap().len(), 0, "blackout drops it");

        plane.step(SimTime::from_secs(20), &mut bus, &mut broker);
        assert_eq!(plane.active().count(), 1, "staleness outlives blackout");
        bus.publish(
            SimTime::from_secs(20),
            "node:uav1",
            "/uav1/telemetry",
            text(),
        );
        bus.step(SimTime::from_secs(21));
        assert_eq!(bus.drain(tel).unwrap().len(), 0, "still delayed");
        bus.step(SimTime::from_secs(25));
        assert_eq!(bus.drain(tel).unwrap().len(), 1);
    }

    #[test]
    fn expired_before_stepped_never_activates() {
        let mut plane = plane_with(CommFaultKind::BrokerOutage, 1, 2);
        let mut bus = MessageBus::new();
        let mut broker = AlertBroker::new();
        // First step happens long after the window closed.
        let tr = plane.step(SimTime::from_secs(60), &mut bus, &mut broker);
        assert!(tr.is_empty());
        assert!(!broker.is_offline());
        assert_eq!(plane.pending(), 0);
    }

    #[test]
    fn labels_are_stable() {
        let uav = UavId::new(3);
        assert_eq!(
            CommFaultKind::LinkBlackout { uav }.label(),
            "link_blackout_uav3"
        );
        assert_eq!(
            CommFaultKind::AsymmetricPartition {
                uav,
                direction: LinkDirection::Downlink
            }
            .label(),
            "downlink_partition_uav3"
        );
        assert_eq!(CommFaultKind::BrokerOutage.label(), "broker_outage");
    }
}
