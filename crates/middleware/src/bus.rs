//! The deterministic ROS-like message bus.
//!
//! Topics are slash-separated paths; subscriptions may use MQTT-style
//! wildcards (`+` for one segment, `#` for the rest), which is how the IDS
//! taps the whole bus with a single `"#"` subscription. Delivery is
//! two-phase: [`MessageBus::publish`] enqueues the message with a modelled
//! latency, and [`MessageBus::step`] moves everything whose delivery time
//! has arrived into subscriber queues — in publish order, so the whole bus
//! is deterministic under a fixed seed.

use crate::broker::topic_matches;
use crate::message::{Message, Payload};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sesame_obs::metrics::Histogram;
use sesame_obs::{TraceEvent, TraceLog};
use sesame_types::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;

/// Handle to a subscriber queue, returned by [`MessageBus::subscribe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Subscription(usize);

/// Handle to an installed man-in-the-middle tamper hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TamperId(usize);

/// Why a [`MessageBus`] queue operation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusError {
    /// The subscription handle was never issued by this bus.
    UnknownSubscription(Subscription),
    /// The subscription was already cancelled with
    /// [`MessageBus::unsubscribe`].
    Unsubscribed(Subscription),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::UnknownSubscription(Subscription(id)) => {
                write!(f, "subscription #{id} was never issued by this bus")
            }
            BusError::Unsubscribed(Subscription(id)) => {
                write!(f, "subscription #{id} has been cancelled")
            }
        }
    }
}

impl std::error::Error for BusError {}

/// Traffic counters for one topic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopicStats {
    /// Messages accepted on this topic.
    pub published: u64,
    /// Deliveries of this topic's messages into subscriber queues.
    pub delivered: u64,
    /// This topic's messages dropped by the loss model.
    pub dropped: u64,
    /// This topic's messages modified in flight by a tamper hook.
    pub tampered: u64,
}

/// Counters and distributions the bus keeps about its own traffic.
///
/// Aggregate counters are mirrored per topic in [`BusStats::per_topic`],
/// and each delivery's modelled latency lands in
/// [`BusStats::latency_ms`]. All of it is deterministic under a fixed
/// seed, so stats can be asserted exactly in tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BusStats {
    /// Messages accepted by `publish`.
    pub published: u64,
    /// Message deliveries into subscriber queues (one message delivered to
    /// three subscribers counts three).
    pub delivered: u64,
    /// Messages dropped by the loss model.
    pub dropped: u64,
    /// Messages modified in flight by a tamper hook.
    pub tampered: u64,
    /// Deliveries discarded because a subscriber queue was full.
    pub overflowed: u64,
    /// Per-topic breakdown of the counters above (except overflow, which
    /// belongs to subscriber queues rather than topics).
    pub per_topic: BTreeMap<String, TopicStats>,
    /// Modelled publish→deliver latency of every delivered message, in
    /// milliseconds.
    pub latency_ms: Histogram,
}

impl BusStats {
    /// This topic's counters (zeros if the topic never saw traffic).
    pub fn topic(&self, topic: &str) -> TopicStats {
        self.per_topic.get(topic).copied().unwrap_or_default()
    }
}

/// A man-in-the-middle hook: may mutate the message; returns `true` if it
/// did (counted in [`BusStats::tampered`]).
// `Sync` as well as `Send` so a bus (worker-owned, but potentially
// parked inside a shared scenario template) never blocks the
// `Send + Sync` audit of the parallel campaign executor. Tamper hooks
// close over plain data, so the extra bound costs callers nothing.
pub type TamperFn = Box<dyn FnMut(&mut Message) -> bool + Send + Sync>;

struct SubState {
    pattern: String,
    queue: VecDeque<Message>,
    depth: usize,
    active: bool,
}

struct InFlight {
    deliver_at: SimTime,
    msg: Message,
}

/// The bus. See the crate docs for an end-to-end example.
pub struct MessageBus {
    subs: Vec<SubState>,
    in_flight: VecDeque<InFlight>,
    seq: HashMap<String, u64>,
    tampers: Vec<(String, Option<TamperFn>)>,
    loss: Vec<(String, f64)>,
    latency: SimDuration,
    topic_latency: Vec<(String, SimDuration)>,
    rng: StdRng,
    stats: BusStats,
    trace: TraceLog,
}

impl fmt::Debug for MessageBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MessageBus")
            .field("subscribers", &self.subs.len())
            .field("in_flight", &self.in_flight.len())
            .field("tampers", &self.tampers.iter().filter(|t| t.1.is_some()).count())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for MessageBus {
    fn default() -> Self {
        Self::new()
    }
}

impl MessageBus {
    /// A bus with seed 0 and the default 20 ms latency.
    pub fn new() -> Self {
        Self::seeded(0)
    }

    /// A bus whose loss model draws from a deterministic RNG seeded with
    /// `seed`.
    pub fn seeded(seed: u64) -> Self {
        MessageBus {
            subs: Vec::new(),
            in_flight: VecDeque::new(),
            seq: HashMap::new(),
            tampers: Vec::new(),
            loss: Vec::new(),
            latency: SimDuration::from_millis(20),
            topic_latency: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            stats: BusStats::default(),
            trace: TraceLog::default(),
        }
    }

    /// Sets the uniform publish→deliver latency.
    pub fn set_latency(&mut self, latency: SimDuration) {
        self.latency = latency;
    }

    /// Overrides the latency for topics matching `pattern` (MQTT
    /// wildcards allowed; the last matching rule wins) — the hook a
    /// [`crate::network::NetworkModel`] uses to model long radio links.
    pub fn set_topic_latency(&mut self, pattern: impl Into<String>, latency: SimDuration) {
        self.topic_latency.push((pattern.into(), latency));
    }

    /// Sets a packet-loss probability for every topic matching `pattern`
    /// (MQTT wildcards allowed). Later rules take precedence.
    pub fn set_loss(&mut self, pattern: impl Into<String>, probability: f64) {
        self.loss.push((pattern.into(), probability.clamp(0.0, 1.0)));
    }

    /// Removes every loss rule installed for exactly `pattern`, letting
    /// any earlier rule (or the lossless default) apply again. This is how
    /// a scheduled link fault ends without leaving rule debris behind.
    pub fn remove_loss(&mut self, pattern: &str) {
        self.loss.retain(|(p, _)| p != pattern);
    }

    /// Removes every latency override installed for exactly `pattern`.
    pub fn remove_topic_latency(&mut self, pattern: &str) {
        self.topic_latency.retain(|(p, _)| p != pattern);
    }

    /// Subscribes to `pattern` (exact topic or MQTT wildcard pattern) with
    /// the default queue depth of 1024.
    pub fn subscribe(&mut self, pattern: impl Into<String>) -> Subscription {
        self.subscribe_with_depth(pattern, 1024)
    }

    /// Subscribes with an explicit queue depth; the oldest overflowing
    /// deliveries are discarded (counted in [`BusStats::overflowed`]).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn subscribe_with_depth(
        &mut self,
        pattern: impl Into<String>,
        depth: usize,
    ) -> Subscription {
        assert!(depth > 0, "queue depth must be positive");
        self.subs.push(SubState {
            pattern: pattern.into(),
            queue: VecDeque::new(),
            depth,
            active: true,
        });
        Subscription(self.subs.len() - 1)
    }

    /// Cancels a subscription; its queue is dropped. Cancelling twice, or
    /// cancelling a handle from another bus, is an error.
    pub fn unsubscribe(&mut self, sub: Subscription) -> Result<(), BusError> {
        let s = self
            .subs
            .get_mut(sub.0)
            .ok_or(BusError::UnknownSubscription(sub))?;
        if !s.active {
            return Err(BusError::Unsubscribed(sub));
        }
        s.active = false;
        s.queue.clear();
        Ok(())
    }

    /// Publishes an unsigned message from `sender` on `topic`; the sequence
    /// number is assigned per sender. Returns the enqueued message.
    pub fn publish(
        &mut self,
        now: SimTime,
        sender: impl Into<String>,
        topic: impl Into<String>,
        payload: Payload,
    ) -> Message {
        let sender = sender.into();
        let seq = {
            let c = self.seq.entry(sender.clone()).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        let msg = Message::new(topic.into(), sender, seq, now, payload);
        self.publish_message(msg.clone());
        msg
    }

    /// Publishes a pre-built message verbatim — used by the attack plane to
    /// inject spoofed or replayed envelopes without touching the legitimate
    /// sequence counters.
    pub fn publish_message(&mut self, msg: Message) {
        self.stats.published += 1;
        self.stats
            .per_topic
            .entry(msg.topic.clone())
            .or_default()
            .published += 1;
        let latency = self
            .topic_latency
            .iter()
            .rev()
            .find(|(p, _)| topic_matches(p, &msg.topic))
            .map(|(_, l)| *l)
            .unwrap_or(self.latency);
        let deliver_at = msg.sent_at + latency;
        self.in_flight.push_back(InFlight { deliver_at, msg });
    }

    /// Installs a man-in-the-middle tamper hook on topics matching
    /// `pattern`; hooks run at delivery time in installation order.
    pub fn install_tamper(&mut self, pattern: impl Into<String>, f: TamperFn) -> TamperId {
        self.tampers.push((pattern.into(), Some(f)));
        TamperId(self.tampers.len() - 1)
    }

    /// Removes a previously installed tamper hook.
    pub fn remove_tamper(&mut self, id: TamperId) {
        if let Some(slot) = self.tampers.get_mut(id.0) {
            slot.1 = None;
        }
    }

    /// Delivers every in-flight message whose delivery time is `<= now`
    /// into matching subscriber queues, applying loss and tamper hooks.
    /// Returns the number of deliveries made.
    pub fn step(&mut self, now: SimTime) -> usize {
        let mut delivered = 0;
        let mut remaining = VecDeque::with_capacity(self.in_flight.len());
        while let Some(inf) = self.in_flight.pop_front() {
            if inf.deliver_at > now {
                remaining.push_back(inf);
                continue;
            }
            let mut msg = inf.msg;
            // Loss model: last matching rule wins.
            let loss = self
                .loss
                .iter()
                .rev()
                .find(|(p, _)| topic_matches(p, &msg.topic))
                .map(|(_, p)| *p)
                .unwrap_or(0.0);
            if loss > 0.0 && self.rng.random::<f64>() < loss {
                self.stats.dropped += 1;
                self.stats.per_topic.entry(msg.topic.clone()).or_default().dropped += 1;
                self.trace.push(
                    now.as_millis(),
                    TraceEvent::MessageDropped {
                        topic: msg.topic.clone(),
                        sender: msg.sender.clone(),
                    },
                );
                continue;
            }
            // MITM hooks.
            for (pattern, hook) in self.tampers.iter_mut() {
                if let Some(f) = hook {
                    if topic_matches(pattern, &msg.topic) && f(&mut msg) {
                        self.stats.tampered += 1;
                        self.stats.per_topic.entry(msg.topic.clone()).or_default().tampered += 1;
                        self.trace.push(
                            now.as_millis(),
                            TraceEvent::MessageTampered {
                                topic: msg.topic.clone(),
                                sender: msg.sender.clone(),
                            },
                        );
                    }
                }
            }
            let mut fanout = 0u64;
            for (idx, sub) in self.subs.iter_mut().enumerate().filter(|(_, s)| s.active) {
                if topic_matches(&sub.pattern, &msg.topic) {
                    if sub.queue.len() >= sub.depth {
                        sub.queue.pop_front();
                        self.stats.overflowed += 1;
                        self.trace.push(
                            now.as_millis(),
                            TraceEvent::QueueOverflow {
                                topic: msg.topic.clone(),
                                subscriber: idx,
                            },
                        );
                    }
                    sub.queue.push_back(msg.clone());
                    self.stats.delivered += 1;
                    fanout += 1;
                    delivered += 1;
                }
            }
            if fanout > 0 {
                self.stats.per_topic.entry(msg.topic.clone()).or_default().delivered += fanout;
                let latency = inf.deliver_at - msg.sent_at;
                self.stats.latency_ms.observe(latency.as_millis() as f64);
            }
        }
        self.in_flight = remaining;
        delivered
    }

    /// Removes and returns every queued message for `sub`, oldest first.
    /// Draining a cancelled or foreign handle is an error rather than
    /// silently empty, so lost-handle bugs surface where they happen.
    pub fn drain(&mut self, sub: Subscription) -> Result<Vec<Message>, BusError> {
        let s = self
            .subs
            .get_mut(sub.0)
            .ok_or(BusError::UnknownSubscription(sub))?;
        if !s.active {
            return Err(BusError::Unsubscribed(sub));
        }
        Ok(s.queue.drain(..).collect())
    }

    /// Number of messages currently queued for `sub`.
    pub fn queued(&self, sub: Subscription) -> Result<usize, BusError> {
        let s = self
            .subs
            .get(sub.0)
            .ok_or(BusError::UnknownSubscription(sub))?;
        if !s.active {
            return Err(BusError::Unsubscribed(sub));
        }
        Ok(s.queue.len())
    }

    /// Traffic counters and latency distribution.
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// The bounded trace of notable bus events (drops, tampers, queue
    /// overflows). Routine deliveries are counted in [`Self::stats`] but
    /// not traced, so rare events aren't evicted by bulk traffic.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Mutable access to the trace, letting an orchestrator absorb bus
    /// events into a platform-wide log each tick.
    pub fn trace_mut(&mut self) -> &mut TraceLog {
        &mut self.trace
    }

    /// Messages accepted but not yet delivered.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }
}

// Each parallel campaign worker owns a private bus, but the bus (and
// its stats, which feed merged campaign aggregates) must be movable
// onto the worker thread.
sesame_types::assert_send_sync!(MessageBus, BusStats, TopicStats, BusError, Subscription);

#[cfg(test)]
mod tests {
    use super::*;

    fn text(s: &str) -> Payload {
        Payload::Text(s.into())
    }

    #[test]
    fn publish_deliver_drain() {
        let mut bus = MessageBus::new();
        let sub = bus.subscribe("/a/b");
        bus.publish(SimTime::ZERO, "n1", "/a/b", text("x"));
        assert_eq!(bus.queued(sub).unwrap(), 0, "not delivered before step");
        assert_eq!(bus.step(SimTime::from_millis(100)), 1);
        let msgs = bus.drain(sub).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].payload, text("x"));
        assert_eq!(bus.queued(sub).unwrap(), 0);
    }

    #[test]
    fn latency_delays_delivery() {
        let mut bus = MessageBus::new();
        bus.set_latency(SimDuration::from_millis(500));
        let sub = bus.subscribe("/t");
        bus.publish(SimTime::ZERO, "n", "/t", text("x"));
        assert_eq!(bus.step(SimTime::from_millis(400)), 0);
        assert_eq!(bus.in_flight_len(), 1);
        assert_eq!(bus.step(SimTime::from_millis(500)), 1);
        assert_eq!(bus.drain(sub).unwrap().len(), 1);
    }

    #[test]
    fn per_topic_latency_overrides_default() {
        let mut bus = MessageBus::new();
        bus.set_latency(SimDuration::from_millis(10));
        bus.set_topic_latency("/far/#", SimDuration::from_millis(300));
        let near = bus.subscribe("/near");
        let far = bus.subscribe("/far/x");
        bus.publish(SimTime::ZERO, "n", "/near", text("a"));
        bus.publish(SimTime::ZERO, "n", "/far/x", text("b"));
        bus.step(SimTime::from_millis(100));
        assert_eq!(bus.drain(near).unwrap().len(), 1);
        assert_eq!(bus.drain(far).unwrap().len(), 0, "long link still in flight");
        bus.step(SimTime::from_millis(300));
        assert_eq!(bus.drain(far).unwrap().len(), 1);
    }

    #[test]
    fn later_fast_message_overtakes_earlier_slow_one() {
        let mut bus = MessageBus::new();
        bus.set_topic_latency("/slow", SimDuration::from_millis(500));
        bus.set_topic_latency("/fast", SimDuration::from_millis(10));
        let sub = bus.subscribe("#");
        bus.publish(SimTime::ZERO, "n", "/slow", text("1st published"));
        bus.publish(SimTime::ZERO, "n", "/fast", text("2nd published"));
        bus.step(SimTime::from_millis(50));
        let got = bus.drain(sub).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].topic, "/fast");
    }

    #[test]
    fn wildcard_subscription_sees_all_topics() {
        let mut bus = MessageBus::new();
        let all = bus.subscribe("#");
        let one = bus.subscribe("/uav1/+");
        bus.publish(SimTime::ZERO, "n", "/uav1/telemetry", text("a"));
        bus.publish(SimTime::ZERO, "n", "/uav2/telemetry", text("b"));
        bus.step(SimTime::from_millis(100));
        assert_eq!(bus.drain(all).unwrap().len(), 2);
        let m = bus.drain(one).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].topic, "/uav1/telemetry");
    }

    #[test]
    fn per_sender_sequence_numbers_are_monotone() {
        let mut bus = MessageBus::new();
        let m0 = bus.publish(SimTime::ZERO, "a", "/t", text("1"));
        let m1 = bus.publish(SimTime::ZERO, "a", "/t", text("2"));
        let other = bus.publish(SimTime::ZERO, "b", "/t", text("3"));
        assert_eq!((m0.seq, m1.seq, other.seq), (0, 1, 0));
    }

    #[test]
    fn loss_drops_messages_deterministically() {
        let mut bus = MessageBus::seeded(7);
        bus.set_loss("/lossy/#", 1.0);
        let sub = bus.subscribe("#");
        bus.publish(SimTime::ZERO, "n", "/lossy/x", text("a"));
        bus.publish(SimTime::ZERO, "n", "/fine", text("b"));
        bus.step(SimTime::from_millis(100));
        let msgs = bus.drain(sub).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].topic, "/fine");
        assert_eq!(bus.stats().dropped, 1);
    }

    #[test]
    fn partial_loss_is_reproducible_across_seeds() {
        let run = |seed| {
            let mut bus = MessageBus::seeded(seed);
            bus.set_loss("#", 0.5);
            let sub = bus.subscribe("#");
            for i in 0..100 {
                bus.publish(SimTime::ZERO, "n", format!("/t{i}"), text("x"));
            }
            bus.step(SimTime::from_millis(100));
            bus.drain(sub).unwrap()
                .into_iter()
                .map(|m| m.topic)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3), "same seed, same losses");
        assert_ne!(run(3), run(4), "different seed, different losses");
    }

    #[test]
    fn tamper_hook_modifies_in_flight() {
        let mut bus = MessageBus::new();
        let sub = bus.subscribe("/cmd");
        bus.install_tamper(
            "/cmd",
            Box::new(|m| {
                m.payload = Payload::Text("evil".into());
                true
            }),
        );
        bus.publish(SimTime::ZERO, "gcs", "/cmd", text("good"));
        bus.step(SimTime::from_millis(100));
        let msgs = bus.drain(sub).unwrap();
        assert_eq!(msgs[0].payload, text("evil"));
        assert_eq!(bus.stats().tampered, 1);
    }

    #[test]
    fn removed_tamper_stops_firing() {
        let mut bus = MessageBus::new();
        let sub = bus.subscribe("/cmd");
        let id = bus.install_tamper(
            "/cmd",
            Box::new(|m| {
                m.payload = Payload::Text("evil".into());
                true
            }),
        );
        bus.remove_tamper(id);
        bus.publish(SimTime::ZERO, "gcs", "/cmd", text("good"));
        bus.step(SimTime::from_millis(100));
        assert_eq!(bus.drain(sub).unwrap()[0].payload, text("good"));
        assert_eq!(bus.stats().tampered, 0);
    }

    #[test]
    fn queue_depth_overflow_discards_oldest() {
        let mut bus = MessageBus::new();
        let sub = bus.subscribe_with_depth("/t", 2);
        for i in 0..5 {
            bus.publish(SimTime::ZERO, "n", "/t", text(&i.to_string()));
        }
        bus.step(SimTime::from_millis(100));
        let msgs = bus.drain(sub).unwrap();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].payload, text("3"));
        assert_eq!(msgs[1].payload, text("4"));
        assert_eq!(bus.stats().overflowed, 3);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut bus = MessageBus::new();
        let sub = bus.subscribe("/t");
        let live = bus.subscribe("/t");
        bus.unsubscribe(sub).unwrap();
        bus.publish(SimTime::ZERO, "n", "/t", text("x"));
        assert_eq!(bus.step(SimTime::from_millis(100)), 1, "only the live sub");
        assert_eq!(bus.drain(sub), Err(BusError::Unsubscribed(sub)));
        assert_eq!(bus.drain(live).unwrap().len(), 1);
    }

    #[test]
    fn queue_ops_reject_unknown_and_cancelled_handles() {
        let mut bus = MessageBus::new();
        let sub = bus.subscribe("/t");
        let mut other = MessageBus::new();
        let _ = other.subscribe("/a");
        let foreign = other.subscribe("/b");

        assert_eq!(
            bus.drain(foreign),
            Err(BusError::UnknownSubscription(foreign))
        );
        assert_eq!(
            bus.queued(foreign),
            Err(BusError::UnknownSubscription(foreign))
        );
        assert_eq!(
            bus.unsubscribe(foreign),
            Err(BusError::UnknownSubscription(foreign))
        );

        bus.unsubscribe(sub).unwrap();
        assert_eq!(bus.unsubscribe(sub), Err(BusError::Unsubscribed(sub)));
        assert_eq!(bus.queued(sub), Err(BusError::Unsubscribed(sub)));
        let err = bus.drain(sub).unwrap_err();
        assert!(err.to_string().contains("cancelled"), "{err}");
    }

    #[test]
    fn removed_loss_rule_restores_earlier_behaviour() {
        let mut bus = MessageBus::seeded(7);
        bus.set_loss("/t", 0.1);
        bus.set_loss("/t", 1.0); // the injected blackout
        let sub = bus.subscribe("/t");
        bus.publish(SimTime::ZERO, "n", "/t", text("a"));
        bus.step(SimTime::from_millis(100));
        assert_eq!(bus.drain(sub).unwrap().len(), 0, "blackout drops everything");
        bus.remove_loss("/t"); // removes both rules for the pattern
        for _ in 0..20 {
            bus.publish(SimTime::from_millis(100), "n", "/t", text("b"));
        }
        bus.step(SimTime::from_millis(200));
        assert_eq!(bus.drain(sub).unwrap().len(), 20, "lossless again");
    }

    #[test]
    fn removed_topic_latency_restores_default() {
        let mut bus = MessageBus::new();
        bus.set_topic_latency("/t", SimDuration::from_millis(900));
        bus.remove_topic_latency("/t");
        let sub = bus.subscribe("/t");
        bus.publish(SimTime::ZERO, "n", "/t", text("x"));
        bus.step(SimTime::from_millis(20));
        assert_eq!(bus.drain(sub).unwrap().len(), 1, "default 20 ms applies");
    }

    #[test]
    fn per_topic_stats_break_down_traffic() {
        let mut bus = MessageBus::seeded(7);
        bus.set_loss("/lossy/#", 1.0);
        let _sub = bus.subscribe("#");
        bus.publish(SimTime::ZERO, "n", "/lossy/x", text("a"));
        bus.publish(SimTime::ZERO, "n", "/fine", text("b"));
        bus.publish(SimTime::ZERO, "n", "/fine", text("c"));
        bus.step(SimTime::from_millis(100));
        let s = bus.stats();
        assert_eq!(s.topic("/lossy/x").published, 1);
        assert_eq!(s.topic("/lossy/x").dropped, 1);
        assert_eq!(s.topic("/lossy/x").delivered, 0);
        assert_eq!(s.topic("/fine").published, 2);
        assert_eq!(s.topic("/fine").delivered, 2);
        assert_eq!(s.topic("/never-seen"), TopicStats::default());
    }

    #[test]
    fn latency_histogram_records_modelled_delay() {
        let mut bus = MessageBus::new();
        bus.set_latency(SimDuration::from_millis(40));
        bus.set_topic_latency("/far", SimDuration::from_millis(300));
        let _near = bus.subscribe("/near");
        let _far = bus.subscribe("/far");
        bus.publish(SimTime::ZERO, "n", "/near", text("a"));
        bus.publish(SimTime::ZERO, "n", "/far", text("b"));
        bus.step(SimTime::from_secs(1));
        let h = &bus.stats().latency_ms;
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 40.0);
        assert_eq!(h.max(), 300.0);
        // A message nobody subscribes to records no latency sample.
        bus.publish(SimTime::ZERO, "n", "/unheard", text("c"));
        bus.step(SimTime::from_secs(2));
        assert_eq!(bus.stats().latency_ms.count(), 2);
    }

    #[test]
    fn trace_records_drops_tampers_and_overflows() {
        let mut bus = MessageBus::seeded(7);
        bus.set_loss("/lossy", 1.0);
        bus.install_tamper(
            "/cmd",
            Box::new(|m| {
                m.payload = Payload::Text("evil".into());
                true
            }),
        );
        let _tight = bus.subscribe_with_depth("/cmd", 1);
        bus.publish(SimTime::ZERO, "n", "/lossy", text("a"));
        bus.publish(SimTime::ZERO, "gcs", "/cmd", text("b"));
        bus.publish(SimTime::ZERO, "gcs", "/cmd", text("c"));
        bus.step(SimTime::from_millis(100));

        assert_eq!(bus.trace().count_kind("message_dropped"), 1);
        assert_eq!(bus.trace().count_kind("message_tampered"), 2);
        assert_eq!(bus.trace().count_kind("queue_overflow"), 1);
        let drop = bus.trace().of_kind("message_dropped").next().unwrap();
        assert_eq!(drop.t_ms, 100);
        assert!(matches!(
            &drop.event,
            TraceEvent::MessageDropped { topic, .. } if topic == "/lossy"
        ));

        // An orchestrator can absorb the bus trace into its own log.
        let mut unified = TraceLog::default();
        unified.absorb(bus.trace_mut());
        assert!(bus.trace().is_empty());
        assert_eq!(unified.count_kind("message_tampered"), 2);
    }

    #[test]
    #[should_panic(expected = "queue depth must be positive")]
    fn zero_depth_panics() {
        let mut bus = MessageBus::new();
        let _ = bus.subscribe_with_depth("/t", 0);
    }

    #[test]
    fn injected_message_preserves_forged_fields() {
        let mut bus = MessageBus::new();
        let sub = bus.subscribe("/cmd");
        // Adversary forges sender and seq directly.
        let forged = Message::new("/cmd", "node:gcs", 999, SimTime::ZERO, text("spoof"));
        bus.publish_message(forged.clone());
        bus.step(SimTime::from_millis(100));
        let got = bus.drain(sub).unwrap();
        assert_eq!(got[0].sender, "node:gcs");
        assert_eq!(got[0].seq, 999);
        assert!(!got[0].is_signed());
    }

    #[test]
    fn stats_track_published_and_delivered() {
        let mut bus = MessageBus::new();
        let _a = bus.subscribe("#");
        let _b = bus.subscribe("/t");
        bus.publish(SimTime::ZERO, "n", "/t", text("x"));
        bus.step(SimTime::from_millis(100));
        let s = bus.stats();
        assert_eq!(s.published, 1);
        assert_eq!(s.delivered, 2);
    }
}
