//! The deterministic ROS-like message bus.
//!
//! Topics are slash-separated paths; subscriptions may use MQTT-style
//! wildcards (`+` for one segment, `#` for the rest), which is how the IDS
//! taps the whole bus with a single `"#"` subscription. Delivery is
//! two-phase: [`MessageBus::publish`] enqueues the message with a modelled
//! latency, and [`MessageBus::step`] moves everything whose delivery time
//! has arrived into subscriber queues — in publish order, so the whole bus
//! is deterministic under a fixed seed.
//!
//! # The fast path
//!
//! Internally the bus is zero-copy and allocation-light. Topics are
//! interned once into a [`TopicTable`]; filters are compiled into
//! [`Pattern`]s at install time; and each concrete topic's routing
//! decision — matching subscriber set, resolved loss probability, resolved
//! latency and matching tamper hooks — is cached in a per-topic route
//! entry, invalidated by a generation counter whenever a subscription or
//! rule changes. Fanout shares one `Arc<Message>` across all subscriber
//! queues; the message body is only deep-copied (copy-on-write) when a
//! tamper hook actually has to mutate it. Per-topic statistics are kept in
//! a dense `Vec` indexed by [`TopicId`] and rendered to topic strings only
//! when a [`BusStats`] snapshot is requested. All of this is observably
//! equivalent to the cache-free [`crate::reference::ReferenceBus`], which
//! the conformance suite proves byte for byte.

use crate::message::{Message, Payload};
use crate::topic::{Pattern, PatternError, TopicId, TopicTable};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sesame_obs::metrics::Histogram;
use sesame_obs::{TraceEvent, TraceLog};
use sesame_types::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Handle to a subscriber queue, returned by [`MessageBus::subscribe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Subscription(usize);

/// Handle to an installed man-in-the-middle tamper hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TamperId(usize);

/// Why a [`MessageBus`] queue operation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusError {
    /// The subscription handle was never issued by this bus.
    UnknownSubscription(Subscription),
    /// The subscription was already cancelled with
    /// [`MessageBus::unsubscribe`].
    Unsubscribed(Subscription),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::UnknownSubscription(Subscription(id)) => {
                write!(f, "subscription #{id} was never issued by this bus")
            }
            BusError::Unsubscribed(Subscription(id)) => {
                write!(f, "subscription #{id} has been cancelled")
            }
        }
    }
}

impl std::error::Error for BusError {}

/// Traffic counters for one topic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopicStats {
    /// Messages accepted on this topic.
    pub published: u64,
    /// Deliveries of this topic's messages into subscriber queues.
    pub delivered: u64,
    /// This topic's messages dropped by the loss model.
    pub dropped: u64,
    /// This topic's messages modified in flight by a tamper hook.
    pub tampered: u64,
}

/// The bus's aggregate counters, cheap to read every tick (no per-topic
/// map is materialized — see [`MessageBus::stats`] for the full snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusCounters {
    /// Messages accepted by `publish`.
    pub published: u64,
    /// Message deliveries into subscriber queues.
    pub delivered: u64,
    /// Messages dropped by the loss model.
    pub dropped: u64,
    /// Messages modified in flight by a tamper hook.
    pub tampered: u64,
    /// Deliveries discarded because a subscriber queue was full.
    pub overflowed: u64,
}

/// Counters and distributions the bus keeps about its own traffic.
///
/// Aggregate counters are mirrored per topic in [`BusStats::per_topic`],
/// and each delivery's modelled latency lands in
/// [`BusStats::latency_ms`]. All of it is deterministic under a fixed
/// seed, so stats can be asserted exactly in tests.
///
/// This is a rendered snapshot: internally the bus keys per-topic counters
/// by interned [`TopicId`] and only materializes the string-keyed map when
/// [`MessageBus::stats`] is called.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BusStats {
    /// Messages accepted by `publish`.
    pub published: u64,
    /// Message deliveries into subscriber queues (one message delivered to
    /// three subscribers counts three).
    pub delivered: u64,
    /// Messages dropped by the loss model.
    pub dropped: u64,
    /// Messages modified in flight by a tamper hook.
    pub tampered: u64,
    /// Deliveries discarded because a subscriber queue was full.
    pub overflowed: u64,
    /// Per-topic breakdown of the counters above (except overflow, which
    /// belongs to subscriber queues rather than topics).
    pub per_topic: BTreeMap<String, TopicStats>,
    /// Modelled publish→deliver latency of every delivered message, in
    /// milliseconds.
    pub latency_ms: Histogram,
}

impl BusStats {
    /// This topic's counters (zeros if the topic never saw traffic).
    pub fn topic(&self, topic: &str) -> TopicStats {
        self.per_topic.get(topic).copied().unwrap_or_default()
    }
}

/// A man-in-the-middle hook: may mutate the message; returns `true` if it
/// did (counted in [`BusStats::tampered`]).
// `Sync` as well as `Send` so a bus (worker-owned, but potentially
// parked inside a shared scenario template) never blocks the
// `Send + Sync` audit of the parallel campaign executor. Tamper hooks
// close over plain data, so the extra bound costs callers nothing.
pub type TamperFn = Box<dyn FnMut(&mut Message) -> bool + Send + Sync>;

struct SubState {
    pattern: Pattern,
    queue: VecDeque<Arc<Message>>,
    depth: usize,
    active: bool,
}

struct InFlight {
    deliver_at: SimTime,
    tid: TopicId,
    msg: Arc<Message>,
}

/// One concrete topic's cached routing decision, valid while the bus
/// generation is unchanged.
struct CachedRoute {
    generation: u64,
    /// Active matching subscriber indices, ascending (delivery order).
    subs: Vec<usize>,
    /// Matching live tamper slots, installation order.
    tampers: Vec<usize>,
    /// Resolved loss probability (last matching rule wins, else 0).
    loss: f64,
    /// Resolved latency (last matching override wins, else the default).
    latency: SimDuration,
}

/// The bus. See the crate docs for an end-to-end example.
pub struct MessageBus {
    subs: Vec<SubState>,
    in_flight: VecDeque<InFlight>,
    seq: HashMap<String, u64>,
    tampers: Vec<(Pattern, Option<TamperFn>)>,
    loss: Vec<(Pattern, f64)>,
    latency: SimDuration,
    topic_latency: Vec<(Pattern, SimDuration)>,
    topics: TopicTable,
    routes: Vec<Option<CachedRoute>>,
    /// Bumped on every subscription/rule mutation; stale route entries
    /// rebuild lazily on next use.
    generation: u64,
    rng: StdRng,
    counters: BusCounters,
    per_topic: Vec<TopicStats>,
    latency_ms: Histogram,
    trace: TraceLog,
}

impl fmt::Debug for MessageBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MessageBus")
            .field("subscribers", &self.subs.len())
            .field("in_flight", &self.in_flight.len())
            .field(
                "tampers",
                &self.tampers.iter().filter(|t| t.1.is_some()).count(),
            )
            .field("topics", &self.topics.len())
            .field("stats", &self.counters)
            .finish()
    }
}

impl Default for MessageBus {
    fn default() -> Self {
        Self::new()
    }
}

impl MessageBus {
    /// A bus with seed 0 and the default 20 ms latency.
    pub fn new() -> Self {
        Self::seeded(0)
    }

    /// A bus whose loss model draws from a deterministic RNG seeded with
    /// `seed`.
    pub fn seeded(seed: u64) -> Self {
        MessageBus {
            subs: Vec::new(),
            in_flight: VecDeque::new(),
            seq: HashMap::new(),
            tampers: Vec::new(),
            loss: Vec::new(),
            latency: SimDuration::from_millis(20),
            topic_latency: Vec::new(),
            topics: TopicTable::new(),
            routes: Vec::new(),
            generation: 0,
            rng: StdRng::seed_from_u64(seed),
            counters: BusCounters::default(),
            per_topic: Vec::new(),
            latency_ms: Histogram::default(),
            trace: TraceLog::default(),
        }
    }

    /// Invalidates every cached route (lazily: entries rebuild on next
    /// use).
    fn invalidate_routes(&mut self) {
        self.generation += 1;
    }

    /// Sets the uniform publish→deliver latency.
    pub fn set_latency(&mut self, latency: SimDuration) {
        self.latency = latency;
        self.invalidate_routes();
    }

    /// Overrides the latency for topics matching `pattern` (MQTT
    /// wildcards allowed; the last matching rule wins) — the hook a
    /// [`crate::network::NetworkModel`] uses to model long radio links.
    pub fn set_topic_latency(&mut self, pattern: impl Into<String>, latency: SimDuration) {
        self.topic_latency
            .push((Pattern::parse_lenient(pattern.into()), latency));
        self.invalidate_routes();
    }

    /// Sets a packet-loss probability for every topic matching `pattern`
    /// (MQTT wildcards allowed). Later rules take precedence.
    pub fn set_loss(&mut self, pattern: impl Into<String>, probability: f64) {
        self.loss.push((
            Pattern::parse_lenient(pattern.into()),
            probability.clamp(0.0, 1.0),
        ));
        self.invalidate_routes();
    }

    /// Removes every loss rule installed for exactly `pattern`, letting
    /// any earlier rule (or the lossless default) apply again. This is how
    /// a scheduled link fault ends without leaving rule debris behind.
    pub fn remove_loss(&mut self, pattern: &str) {
        self.loss.retain(|(p, _)| p.raw() != pattern);
        self.invalidate_routes();
    }

    /// Removes every latency override installed for exactly `pattern`.
    pub fn remove_topic_latency(&mut self, pattern: &str) {
        self.topic_latency.retain(|(p, _)| p.raw() != pattern);
        self.invalidate_routes();
    }

    /// Subscribes to `pattern` (exact topic or MQTT wildcard pattern) with
    /// the default queue depth of 1024.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is an invalid filter (a `#` in a non-final
    /// segment) — such a subscription could never match anything. Use
    /// [`MessageBus::try_subscribe`] to handle the rejection gracefully.
    pub fn subscribe(&mut self, pattern: impl Into<String>) -> Subscription {
        self.subscribe_with_depth(pattern, 1024)
    }

    /// Subscribes with an explicit queue depth; the oldest overflowing
    /// deliveries are discarded (counted in [`BusStats::overflowed`]).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or `pattern` is an invalid filter.
    pub fn subscribe_with_depth(
        &mut self,
        pattern: impl Into<String>,
        depth: usize,
    ) -> Subscription {
        self.try_subscribe_with_depth(pattern, depth)
            .unwrap_or_else(|e| panic!("invalid subscription pattern: {e}"))
    }

    /// Subscribes to `pattern`, rejecting invalid filters with a typed
    /// error instead of silently never matching.
    pub fn try_subscribe(
        &mut self,
        pattern: impl Into<String>,
    ) -> Result<Subscription, PatternError> {
        self.try_subscribe_with_depth(pattern, 1024)
    }

    /// Subscribes with an explicit queue depth, rejecting invalid filters
    /// with a typed error.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn try_subscribe_with_depth(
        &mut self,
        pattern: impl Into<String>,
        depth: usize,
    ) -> Result<Subscription, PatternError> {
        assert!(depth > 0, "queue depth must be positive");
        let pattern = Pattern::parse(pattern.into())?;
        self.subs.push(SubState {
            pattern,
            queue: VecDeque::new(),
            depth,
            active: true,
        });
        self.invalidate_routes();
        Ok(Subscription(self.subs.len() - 1))
    }

    /// Cancels a subscription; its queue is dropped. Cancelling twice, or
    /// cancelling a handle from another bus, is an error.
    pub fn unsubscribe(&mut self, sub: Subscription) -> Result<(), BusError> {
        let s = self
            .subs
            .get_mut(sub.0)
            .ok_or(BusError::UnknownSubscription(sub))?;
        if !s.active {
            return Err(BusError::Unsubscribed(sub));
        }
        s.active = false;
        s.queue.clear();
        self.invalidate_routes();
        Ok(())
    }

    /// Publishes an unsigned message from `sender` on `topic`; the sequence
    /// number is assigned per sender. Returns a handle to the enqueued
    /// message (shared with the bus — no deep copy is made).
    pub fn publish(
        &mut self,
        now: SimTime,
        sender: impl Into<String>,
        topic: impl Into<String>,
        payload: Payload,
    ) -> Arc<Message> {
        let sender = sender.into();
        let seq = if let Some(c) = self.seq.get_mut(&sender) {
            let s = *c;
            *c += 1;
            s
        } else {
            self.seq.insert(sender.clone(), 1);
            0
        };
        let msg = Arc::new(Message::new(topic.into(), sender, seq, now, payload));
        self.publish_arc(Arc::clone(&msg));
        msg
    }

    /// Publishes a pre-built message verbatim — used by the attack plane to
    /// inject spoofed or replayed envelopes without touching the legitimate
    /// sequence counters.
    pub fn publish_message(&mut self, msg: Message) {
        self.publish_arc(Arc::new(msg));
    }

    /// Publishes an already-shared message without copying the body — the
    /// zero-copy variant of [`MessageBus::publish_message`].
    pub fn publish_arc(&mut self, msg: Arc<Message>) {
        let tid = self.intern(&msg.topic);
        self.counters.published += 1;
        self.per_topic[tid.index()].published += 1;
        self.ensure_route(tid);
        let latency = self.routes[tid.index()]
            .as_ref()
            .expect("route was just ensured")
            .latency;
        let deliver_at = msg.sent_at + latency;
        self.in_flight.push_back(InFlight {
            deliver_at,
            tid,
            msg,
        });
    }

    /// Interns `topic`, growing the dense per-topic stats and route tables
    /// alongside the interner.
    fn intern(&mut self, topic: &str) -> TopicId {
        let tid = self.topics.intern(topic);
        if self.per_topic.len() <= tid.index() {
            self.per_topic
                .resize(tid.index() + 1, TopicStats::default());
            self.routes.resize_with(tid.index() + 1, || None);
        }
        tid
    }

    /// Rebuilds `tid`'s cached route if the bus generation moved since it
    /// was computed (or it never was).
    fn ensure_route(&mut self, tid: TopicId) {
        let fresh = matches!(
            &self.routes[tid.index()],
            Some(r) if r.generation == self.generation
        );
        if fresh {
            return;
        }
        let segments = self.topics.segments(tid);
        let subs = self
            .subs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.active && s.pattern.matches_segments(segments.clone()))
            .map(|(i, _)| i)
            .collect();
        let tampers = self
            .tampers
            .iter()
            .enumerate()
            .filter(|(_, (p, f))| f.is_some() && p.matches_segments(segments.clone()))
            .map(|(i, _)| i)
            .collect();
        let loss = self
            .loss
            .iter()
            .rev()
            .find(|(p, _)| p.matches_segments(segments.clone()))
            .map(|(_, p)| *p)
            .unwrap_or(0.0);
        let latency = self
            .topic_latency
            .iter()
            .rev()
            .find(|(p, _)| p.matches_segments(segments.clone()))
            .map(|(_, l)| *l)
            .unwrap_or(self.latency);
        self.routes[tid.index()] = Some(CachedRoute {
            generation: self.generation,
            subs,
            tampers,
            loss,
            latency,
        });
    }

    /// Installs a man-in-the-middle tamper hook on topics matching
    /// `pattern`; hooks run at delivery time in installation order.
    pub fn install_tamper(&mut self, pattern: impl Into<String>, f: TamperFn) -> TamperId {
        self.tampers
            .push((Pattern::parse_lenient(pattern.into()), Some(f)));
        self.invalidate_routes();
        TamperId(self.tampers.len() - 1)
    }

    /// Removes a previously installed tamper hook.
    pub fn remove_tamper(&mut self, id: TamperId) {
        if let Some(slot) = self.tampers.get_mut(id.0) {
            slot.1 = None;
        }
        self.invalidate_routes();
    }

    /// Delivers every in-flight message whose delivery time is `<= now`
    /// into matching subscriber queues, applying loss and tamper hooks.
    /// Returns the number of deliveries made.
    ///
    /// Delivery is zero-copy: every matching subscriber queue receives a
    /// clone of the same `Arc<Message>`. When a tamper hook matches, the
    /// body is deep-copied once (copy-on-write) before the hook mutates
    /// it, and the mutated copy is what fans out.
    pub fn step(&mut self, now: SimTime) -> usize {
        let mut delivered = 0;
        let mut remaining = VecDeque::with_capacity(self.in_flight.len());
        while let Some(inf) = self.in_flight.pop_front() {
            if inf.deliver_at > now {
                remaining.push_back(inf);
                continue;
            }
            let InFlight {
                deliver_at,
                mut tid,
                mut msg,
            } = inf;
            self.ensure_route(tid);
            // Take the route out of its slot so the borrow checker lets
            // the fanout below touch subscriber queues, stats and the
            // trace; it goes back before the next message.
            let mut route = self.routes[tid.index()].take().expect("route just ensured");
            // Loss model (resolved at route-build time; last rule wins).
            // The RNG is consulted only when a loss rule applies, exactly
            // like the reference bus, so packet fates stay seed-stable.
            if route.loss > 0.0 && self.rng.random::<f64>() < route.loss {
                self.counters.dropped += 1;
                self.per_topic[tid.index()].dropped += 1;
                self.trace.push(
                    now.as_millis(),
                    TraceEvent::MessageDropped {
                        topic: msg.topic.clone(),
                        sender: msg.sender.clone(),
                    },
                );
                self.routes[tid.index()] = Some(route);
                continue;
            }
            // MITM hooks: copy-on-write — the shared body is cloned only
            // when a matching hook exists. A hook may (pathologically)
            // rewrite the topic mid-flight; the reference semantics match
            // every subsequent hook (and the fanout) against the rewritten
            // topic, so on the first rewrite we leave the cached membership
            // list and match the remaining hooks individually.
            if !route.tampers.is_empty() {
                let original_tid = tid;
                let body = Arc::make_mut(&mut msg);
                let mut cur_tid = tid;
                let mut rewritten = false;
                let mut cursor = 0usize;
                for slot in 0..self.tampers.len() {
                    let fires = if rewritten {
                        self.tampers[slot].1.is_some()
                            && self.tampers[slot].0.matches_topic(&body.topic)
                    } else if route.tampers.get(cursor) == Some(&slot) {
                        cursor += 1;
                        true
                    } else {
                        false
                    };
                    if !fires {
                        continue;
                    }
                    let Some(f) = self.tampers[slot].1.as_mut() else {
                        continue;
                    };
                    let mutated = f(body);
                    if body.topic != self.topics.name(cur_tid) {
                        let topic = body.topic.clone();
                        cur_tid = self.intern(&topic);
                        rewritten = true;
                    }
                    if mutated {
                        self.counters.tampered += 1;
                        self.per_topic[cur_tid.index()].tampered += 1;
                        self.trace.push(
                            now.as_millis(),
                            TraceEvent::MessageTampered {
                                topic: body.topic.clone(),
                                sender: body.sender.clone(),
                            },
                        );
                    }
                }
                if cur_tid != original_tid {
                    // Reroute the fanout to the rewritten topic.
                    self.routes[original_tid.index()] = Some(route);
                    tid = cur_tid;
                    self.ensure_route(tid);
                    route = self.routes[tid.index()].take().expect("route just ensured");
                }
            }
            // Fanout: one Arc clone per subscriber, no message copies.
            let mut fanout = 0u64;
            for &idx in &route.subs {
                let sub = &mut self.subs[idx];
                if sub.queue.len() >= sub.depth {
                    sub.queue.pop_front();
                    self.counters.overflowed += 1;
                    self.trace.push(
                        now.as_millis(),
                        TraceEvent::QueueOverflow {
                            topic: msg.topic.clone(),
                            subscriber: idx,
                        },
                    );
                }
                sub.queue.push_back(Arc::clone(&msg));
                self.counters.delivered += 1;
                fanout += 1;
                delivered += 1;
            }
            if fanout > 0 {
                self.per_topic[tid.index()].delivered += fanout;
                let latency = deliver_at - msg.sent_at;
                self.latency_ms.observe(latency.as_millis() as f64);
            }
            self.routes[tid.index()] = Some(route);
        }
        self.in_flight = remaining;
        delivered
    }

    /// Removes and returns every queued message for `sub`, oldest first.
    /// Draining a cancelled or foreign handle is an error rather than
    /// silently empty, so lost-handle bugs surface where they happen.
    ///
    /// Messages are shared (`Arc`) — field access derefs transparently;
    /// clone the inner [`Message`] only if an owned copy is needed.
    pub fn drain(&mut self, sub: Subscription) -> Result<Vec<Arc<Message>>, BusError> {
        let s = self
            .subs
            .get_mut(sub.0)
            .ok_or(BusError::UnknownSubscription(sub))?;
        if !s.active {
            return Err(BusError::Unsubscribed(sub));
        }
        Ok(s.queue.drain(..).collect())
    }

    /// Number of messages currently queued for `sub`.
    pub fn queued(&self, sub: Subscription) -> Result<usize, BusError> {
        let s = self
            .subs
            .get(sub.0)
            .ok_or(BusError::UnknownSubscription(sub))?;
        if !s.active {
            return Err(BusError::Unsubscribed(sub));
        }
        Ok(s.queue.len())
    }

    /// Aggregate counters, cheap enough to mirror into metrics every tick
    /// (no per-topic rendering happens).
    pub fn counters(&self) -> BusCounters {
        self.counters
    }

    /// A full statistics snapshot: aggregate counters, the latency
    /// histogram, and the per-topic breakdown rendered from the interned
    /// topic table (this is the only place topic strings are materialized
    /// for stats).
    pub fn stats(&self) -> BusStats {
        let mut per_topic = BTreeMap::new();
        for (i, ts) in self.per_topic.iter().enumerate() {
            if *ts != TopicStats::default() {
                per_topic.insert(self.topics.name(TopicId::from_index(i)).to_string(), *ts);
            }
        }
        BusStats {
            published: self.counters.published,
            delivered: self.counters.delivered,
            dropped: self.counters.dropped,
            tampered: self.counters.tampered,
            overflowed: self.counters.overflowed,
            per_topic,
            latency_ms: self.latency_ms.clone(),
        }
    }

    /// The bounded trace of notable bus events (drops, tampers, queue
    /// overflows). Routine deliveries are counted in [`Self::stats`] but
    /// not traced, so rare events aren't evicted by bulk traffic.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Mutable access to the trace, letting an orchestrator absorb bus
    /// events into a platform-wide log each tick.
    pub fn trace_mut(&mut self) -> &mut TraceLog {
        &mut self.trace
    }

    /// Messages accepted but not yet delivered.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Number of distinct topics the bus has interned.
    pub fn topic_count(&self) -> usize {
        self.topics.len()
    }
}

// Each parallel campaign worker owns a private bus, but the bus (and
// its stats, which feed merged campaign aggregates) must be movable
// onto the worker thread.
sesame_types::assert_send_sync!(
    MessageBus,
    BusStats,
    BusCounters,
    TopicStats,
    BusError,
    Subscription
);

#[cfg(test)]
mod tests {
    use super::*;

    fn text(s: &str) -> Payload {
        Payload::Text(s.into())
    }

    #[test]
    fn publish_deliver_drain() {
        let mut bus = MessageBus::new();
        let sub = bus.subscribe("/a/b");
        bus.publish(SimTime::ZERO, "n1", "/a/b", text("x"));
        assert_eq!(bus.queued(sub).unwrap(), 0, "not delivered before step");
        assert_eq!(bus.step(SimTime::from_millis(100)), 1);
        let msgs = bus.drain(sub).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].payload, text("x"));
        assert_eq!(bus.queued(sub).unwrap(), 0);
    }

    #[test]
    fn latency_delays_delivery() {
        let mut bus = MessageBus::new();
        bus.set_latency(SimDuration::from_millis(500));
        let sub = bus.subscribe("/t");
        bus.publish(SimTime::ZERO, "n", "/t", text("x"));
        assert_eq!(bus.step(SimTime::from_millis(400)), 0);
        assert_eq!(bus.in_flight_len(), 1);
        assert_eq!(bus.step(SimTime::from_millis(500)), 1);
        assert_eq!(bus.drain(sub).unwrap().len(), 1);
    }

    #[test]
    fn per_topic_latency_overrides_default() {
        let mut bus = MessageBus::new();
        bus.set_latency(SimDuration::from_millis(10));
        bus.set_topic_latency("/far/#", SimDuration::from_millis(300));
        let near = bus.subscribe("/near");
        let far = bus.subscribe("/far/x");
        bus.publish(SimTime::ZERO, "n", "/near", text("a"));
        bus.publish(SimTime::ZERO, "n", "/far/x", text("b"));
        bus.step(SimTime::from_millis(100));
        assert_eq!(bus.drain(near).unwrap().len(), 1);
        assert_eq!(
            bus.drain(far).unwrap().len(),
            0,
            "long link still in flight"
        );
        bus.step(SimTime::from_millis(300));
        assert_eq!(bus.drain(far).unwrap().len(), 1);
    }

    #[test]
    fn later_fast_message_overtakes_earlier_slow_one() {
        let mut bus = MessageBus::new();
        bus.set_topic_latency("/slow", SimDuration::from_millis(500));
        bus.set_topic_latency("/fast", SimDuration::from_millis(10));
        let sub = bus.subscribe("#");
        bus.publish(SimTime::ZERO, "n", "/slow", text("1st published"));
        bus.publish(SimTime::ZERO, "n", "/fast", text("2nd published"));
        bus.step(SimTime::from_millis(50));
        let got = bus.drain(sub).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].topic, "/fast");
    }

    #[test]
    fn wildcard_subscription_sees_all_topics() {
        let mut bus = MessageBus::new();
        let all = bus.subscribe("#");
        let one = bus.subscribe("/uav1/+");
        bus.publish(SimTime::ZERO, "n", "/uav1/telemetry", text("a"));
        bus.publish(SimTime::ZERO, "n", "/uav2/telemetry", text("b"));
        bus.step(SimTime::from_millis(100));
        assert_eq!(bus.drain(all).unwrap().len(), 2);
        let m = bus.drain(one).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].topic, "/uav1/telemetry");
    }

    #[test]
    fn per_sender_sequence_numbers_are_monotone() {
        let mut bus = MessageBus::new();
        let m0 = bus.publish(SimTime::ZERO, "a", "/t", text("1"));
        let m1 = bus.publish(SimTime::ZERO, "a", "/t", text("2"));
        let other = bus.publish(SimTime::ZERO, "b", "/t", text("3"));
        assert_eq!((m0.seq, m1.seq, other.seq), (0, 1, 0));
    }

    #[test]
    fn loss_drops_messages_deterministically() {
        let mut bus = MessageBus::seeded(7);
        bus.set_loss("/lossy/#", 1.0);
        let sub = bus.subscribe("#");
        bus.publish(SimTime::ZERO, "n", "/lossy/x", text("a"));
        bus.publish(SimTime::ZERO, "n", "/fine", text("b"));
        bus.step(SimTime::from_millis(100));
        let msgs = bus.drain(sub).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].topic, "/fine");
        assert_eq!(bus.stats().dropped, 1);
    }

    #[test]
    fn partial_loss_is_reproducible_across_seeds() {
        let run = |seed| {
            let mut bus = MessageBus::seeded(seed);
            bus.set_loss("#", 0.5);
            let sub = bus.subscribe("#");
            for i in 0..100 {
                bus.publish(SimTime::ZERO, "n", format!("/t{i}"), text("x"));
            }
            bus.step(SimTime::from_millis(100));
            bus.drain(sub)
                .unwrap()
                .into_iter()
                .map(|m| m.topic.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3), "same seed, same losses");
        assert_ne!(run(3), run(4), "different seed, different losses");
    }

    #[test]
    fn tamper_hook_modifies_in_flight() {
        let mut bus = MessageBus::new();
        let sub = bus.subscribe("/cmd");
        bus.install_tamper(
            "/cmd",
            Box::new(|m| {
                m.payload = Payload::Text("evil".into());
                true
            }),
        );
        bus.publish(SimTime::ZERO, "gcs", "/cmd", text("good"));
        bus.step(SimTime::from_millis(100));
        let msgs = bus.drain(sub).unwrap();
        assert_eq!(msgs[0].payload, text("evil"));
        assert_eq!(bus.stats().tampered, 1);
    }

    #[test]
    fn removed_tamper_stops_firing() {
        let mut bus = MessageBus::new();
        let sub = bus.subscribe("/cmd");
        let id = bus.install_tamper(
            "/cmd",
            Box::new(|m| {
                m.payload = Payload::Text("evil".into());
                true
            }),
        );
        bus.remove_tamper(id);
        bus.publish(SimTime::ZERO, "gcs", "/cmd", text("good"));
        bus.step(SimTime::from_millis(100));
        assert_eq!(bus.drain(sub).unwrap()[0].payload, text("good"));
        assert_eq!(bus.stats().tampered, 0);
    }

    #[test]
    fn queue_depth_overflow_discards_oldest() {
        let mut bus = MessageBus::new();
        let sub = bus.subscribe_with_depth("/t", 2);
        for i in 0..5 {
            bus.publish(SimTime::ZERO, "n", "/t", text(&i.to_string()));
        }
        bus.step(SimTime::from_millis(100));
        let msgs = bus.drain(sub).unwrap();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].payload, text("3"));
        assert_eq!(msgs[1].payload, text("4"));
        assert_eq!(bus.stats().overflowed, 3);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut bus = MessageBus::new();
        let sub = bus.subscribe("/t");
        let live = bus.subscribe("/t");
        bus.unsubscribe(sub).unwrap();
        bus.publish(SimTime::ZERO, "n", "/t", text("x"));
        assert_eq!(bus.step(SimTime::from_millis(100)), 1, "only the live sub");
        assert_eq!(bus.drain(sub), Err(BusError::Unsubscribed(sub)));
        assert_eq!(bus.drain(live).unwrap().len(), 1);
    }

    #[test]
    fn queue_ops_reject_unknown_and_cancelled_handles() {
        let mut bus = MessageBus::new();
        let sub = bus.subscribe("/t");
        let mut other = MessageBus::new();
        let _ = other.subscribe("/a");
        let foreign = other.subscribe("/b");

        assert_eq!(
            bus.drain(foreign),
            Err(BusError::UnknownSubscription(foreign))
        );
        assert_eq!(
            bus.queued(foreign),
            Err(BusError::UnknownSubscription(foreign))
        );
        assert_eq!(
            bus.unsubscribe(foreign),
            Err(BusError::UnknownSubscription(foreign))
        );

        bus.unsubscribe(sub).unwrap();
        assert_eq!(bus.unsubscribe(sub), Err(BusError::Unsubscribed(sub)));
        assert_eq!(bus.queued(sub), Err(BusError::Unsubscribed(sub)));
        let err = bus.drain(sub).unwrap_err();
        assert!(err.to_string().contains("cancelled"), "{err}");
    }

    #[test]
    fn removed_loss_rule_restores_earlier_behaviour() {
        let mut bus = MessageBus::seeded(7);
        bus.set_loss("/t", 0.1);
        bus.set_loss("/t", 1.0); // the injected blackout
        let sub = bus.subscribe("/t");
        bus.publish(SimTime::ZERO, "n", "/t", text("a"));
        bus.step(SimTime::from_millis(100));
        assert_eq!(
            bus.drain(sub).unwrap().len(),
            0,
            "blackout drops everything"
        );
        bus.remove_loss("/t"); // removes both rules for the pattern
        for _ in 0..20 {
            bus.publish(SimTime::from_millis(100), "n", "/t", text("b"));
        }
        bus.step(SimTime::from_millis(200));
        assert_eq!(bus.drain(sub).unwrap().len(), 20, "lossless again");
    }

    #[test]
    fn removed_topic_latency_restores_default() {
        let mut bus = MessageBus::new();
        bus.set_topic_latency("/t", SimDuration::from_millis(900));
        bus.remove_topic_latency("/t");
        let sub = bus.subscribe("/t");
        bus.publish(SimTime::ZERO, "n", "/t", text("x"));
        bus.step(SimTime::from_millis(20));
        assert_eq!(bus.drain(sub).unwrap().len(), 1, "default 20 ms applies");
    }

    #[test]
    fn per_topic_stats_break_down_traffic() {
        let mut bus = MessageBus::seeded(7);
        bus.set_loss("/lossy/#", 1.0);
        let _sub = bus.subscribe("#");
        bus.publish(SimTime::ZERO, "n", "/lossy/x", text("a"));
        bus.publish(SimTime::ZERO, "n", "/fine", text("b"));
        bus.publish(SimTime::ZERO, "n", "/fine", text("c"));
        bus.step(SimTime::from_millis(100));
        let s = bus.stats();
        assert_eq!(s.topic("/lossy/x").published, 1);
        assert_eq!(s.topic("/lossy/x").dropped, 1);
        assert_eq!(s.topic("/lossy/x").delivered, 0);
        assert_eq!(s.topic("/fine").published, 2);
        assert_eq!(s.topic("/fine").delivered, 2);
        assert_eq!(s.topic("/never-seen"), TopicStats::default());
    }

    #[test]
    fn latency_histogram_records_modelled_delay() {
        let mut bus = MessageBus::new();
        bus.set_latency(SimDuration::from_millis(40));
        bus.set_topic_latency("/far", SimDuration::from_millis(300));
        let _near = bus.subscribe("/near");
        let _far = bus.subscribe("/far");
        bus.publish(SimTime::ZERO, "n", "/near", text("a"));
        bus.publish(SimTime::ZERO, "n", "/far", text("b"));
        bus.step(SimTime::from_secs(1));
        let h = bus.stats().latency_ms;
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 40.0);
        assert_eq!(h.max(), 300.0);
        // A message nobody subscribes to records no latency sample.
        bus.publish(SimTime::ZERO, "n", "/unheard", text("c"));
        bus.step(SimTime::from_secs(2));
        assert_eq!(bus.stats().latency_ms.count(), 2);
    }

    #[test]
    fn trace_records_drops_tampers_and_overflows() {
        let mut bus = MessageBus::seeded(7);
        bus.set_loss("/lossy", 1.0);
        bus.install_tamper(
            "/cmd",
            Box::new(|m| {
                m.payload = Payload::Text("evil".into());
                true
            }),
        );
        let _tight = bus.subscribe_with_depth("/cmd", 1);
        bus.publish(SimTime::ZERO, "n", "/lossy", text("a"));
        bus.publish(SimTime::ZERO, "gcs", "/cmd", text("b"));
        bus.publish(SimTime::ZERO, "gcs", "/cmd", text("c"));
        bus.step(SimTime::from_millis(100));

        assert_eq!(bus.trace().count_kind("message_dropped"), 1);
        assert_eq!(bus.trace().count_kind("message_tampered"), 2);
        assert_eq!(bus.trace().count_kind("queue_overflow"), 1);
        let drop = bus.trace().of_kind("message_dropped").next().unwrap();
        assert_eq!(drop.t_ms, 100);
        assert!(matches!(
            &drop.event,
            TraceEvent::MessageDropped { topic, .. } if topic == "/lossy"
        ));

        // An orchestrator can absorb the bus trace into its own log.
        let mut unified = TraceLog::default();
        unified.absorb(bus.trace_mut());
        assert!(bus.trace().is_empty());
        assert_eq!(unified.count_kind("message_tampered"), 2);
    }

    #[test]
    #[should_panic(expected = "queue depth must be positive")]
    fn zero_depth_panics() {
        let mut bus = MessageBus::new();
        let _ = bus.subscribe_with_depth("/t", 0);
    }

    #[test]
    fn injected_message_preserves_forged_fields() {
        let mut bus = MessageBus::new();
        let sub = bus.subscribe("/cmd");
        // Adversary forges sender and seq directly.
        let forged = Message::new("/cmd", "node:gcs", 999, SimTime::ZERO, text("spoof"));
        bus.publish_message(forged.clone());
        bus.step(SimTime::from_millis(100));
        let got = bus.drain(sub).unwrap();
        assert_eq!(got[0].sender, "node:gcs");
        assert_eq!(got[0].seq, 999);
        assert!(!got[0].is_signed());
    }

    #[test]
    fn stats_track_published_and_delivered() {
        let mut bus = MessageBus::new();
        let _a = bus.subscribe("#");
        let _b = bus.subscribe("/t");
        bus.publish(SimTime::ZERO, "n", "/t", text("x"));
        bus.step(SimTime::from_millis(100));
        let s = bus.stats();
        assert_eq!(s.published, 1);
        assert_eq!(s.delivered, 2);
        assert_eq!(bus.counters().published, 1);
        assert_eq!(bus.counters().delivered, 2);
    }

    #[test]
    fn invalid_subscription_pattern_is_rejected_with_typed_error() {
        use crate::topic::PatternError;
        let mut bus = MessageBus::new();
        let err = bus.try_subscribe("a/#/b").unwrap_err();
        assert_eq!(
            err,
            PatternError::HashNotFinal {
                pattern: "a/#/b".into(),
                segment: 1
            }
        );
        // The rejected filter left no subscriber behind.
        bus.publish(SimTime::ZERO, "n", "a/x/b", text("x"));
        assert_eq!(bus.step(SimTime::from_millis(100)), 0);
    }

    #[test]
    #[should_panic(expected = "invalid subscription pattern")]
    fn invalid_subscription_pattern_panics_on_infallible_subscribe() {
        let mut bus = MessageBus::new();
        let _ = bus.subscribe("ids/#/alerts");
    }

    #[test]
    fn fanout_shares_one_allocation_until_tampered() {
        let mut bus = MessageBus::new();
        let a = bus.subscribe("/t");
        let b = bus.subscribe("#");
        bus.publish(SimTime::ZERO, "n", "/t", text("shared"));
        bus.step(SimTime::from_millis(100));
        let ma = bus.drain(a).unwrap().remove(0);
        let mb = bus.drain(b).unwrap().remove(0);
        assert!(Arc::ptr_eq(&ma, &mb), "clean fanout must share the body");

        // With a tamper in the path the body is copied exactly once and
        // the mutated copy is what all subscribers share.
        bus.install_tamper(
            "/t",
            Box::new(|m| {
                m.payload = Payload::Text("evil".into());
                true
            }),
        );
        let keep = bus.publish(SimTime::from_secs(1), "n", "/t", text("clean"));
        bus.step(SimTime::from_secs(2));
        let ta = bus.drain(a).unwrap().remove(0);
        let tb = bus.drain(b).unwrap().remove(0);
        assert!(
            Arc::ptr_eq(&ta, &tb),
            "tampered fanout still shares one body"
        );
        assert!(
            !Arc::ptr_eq(&keep, &ta),
            "publisher's handle was CoW-detached"
        );
        assert_eq!(keep.payload, text("clean"), "publisher copy untouched");
        assert_eq!(ta.payload, text("evil"));
    }

    #[test]
    fn route_cache_follows_interleaved_rule_mutations() {
        let mut bus = MessageBus::seeded(3);
        let sub = bus.subscribe("/t");
        bus.publish(SimTime::ZERO, "n", "/t", text("1"));
        bus.step(SimTime::from_millis(100));
        assert_eq!(bus.drain(sub).unwrap().len(), 1, "route built clean");

        // A late subscriber must appear in the cached route.
        let late = bus.subscribe("/t");
        bus.publish(SimTime::from_millis(100), "n", "/t", text("2"));
        bus.step(SimTime::from_millis(200));
        assert_eq!(bus.drain(late).unwrap().len(), 1, "cache saw the new sub");
        assert_eq!(bus.drain(sub).unwrap().len(), 1);

        // A blackout rule invalidates the cached loss...
        bus.set_loss("/t", 1.0);
        bus.publish(SimTime::from_millis(200), "n", "/t", text("3"));
        bus.step(SimTime::from_millis(300));
        assert_eq!(bus.drain(sub).unwrap().len(), 0, "cached route dropped it");

        // ...and removing it restores the cached lossless route.
        bus.remove_loss("/t");
        bus.publish(SimTime::from_millis(300), "n", "/t", text("4"));
        bus.step(SimTime::from_millis(400));
        assert_eq!(bus.drain(sub).unwrap().len(), 1, "cache healed");
    }

    #[test]
    fn topic_rewriting_tamper_reroutes_to_the_new_topic() {
        let mut bus = MessageBus::new();
        let orig = bus.subscribe("/orig");
        let redirected = bus.subscribe("/redirected");
        bus.install_tamper(
            "/orig",
            Box::new(|m| {
                m.topic = "/redirected".into();
                true
            }),
        );
        bus.publish(SimTime::ZERO, "n", "/orig", text("x"));
        bus.step(SimTime::from_millis(100));
        assert_eq!(bus.drain(orig).unwrap().len(), 0);
        assert_eq!(bus.drain(redirected).unwrap().len(), 1);
        let s = bus.stats();
        assert_eq!(s.topic("/orig").published, 1);
        assert_eq!(s.topic("/redirected").tampered, 1);
        assert_eq!(s.topic("/redirected").delivered, 1);
    }
}
