//! Topic interning and precompiled wildcard patterns — the bus fast path.
//!
//! Every topic string that crosses the [`crate::bus::MessageBus`] is
//! interned exactly once into a [`TopicTable`]: the string is segment-split
//! at intern time and subsequent routing works on a small integer
//! [`TopicId`] plus cached segment slices, never on repeated `str::split`.
//! Subscription filters, loss rules, latency overrides and tamper hooks are
//! compiled into a [`Pattern`] once at install time, so a wildcard match is
//! a single walk over precomputed segments.
//!
//! Interning keys on the *exact* topic string (`"/a/b"` and `"a/b"` get
//! distinct ids even though they match the same patterns, because per-topic
//! stats have always been keyed by the raw string), while matching uses the
//! empty-segment-filtered split, so `topic_matches` semantics are
//! preserved byte for byte.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Interned handle to a concrete topic string. Cheap to copy and compare;
/// resolves back to the original string through the [`TopicTable`] that
/// issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TopicId(u32);

impl TopicId {
    /// Dense index into per-topic tables (stats rows, route cache slots).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs the id for a dense table index (the inverse of
    /// [`TopicId::index`]); only meaningful for indices issued by the same
    /// [`TopicTable`].
    pub fn from_index(index: usize) -> Self {
        TopicId(index as u32)
    }
}

struct TopicEntry {
    name: Arc<str>,
    /// Byte ranges of the non-empty `/`-separated segments of `name`.
    seg_bounds: Vec<(u32, u32)>,
}

/// The interner: topic string → [`TopicId`], with the segment split done
/// once at intern time.
#[derive(Default)]
pub struct TopicTable {
    index: HashMap<Arc<str>, u32>,
    entries: Vec<TopicEntry>,
}

impl fmt::Debug for TopicTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TopicTable")
            .field("topics", &self.entries.len())
            .finish()
    }
}

impl TopicTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `topic`, interning it (one allocation, one
    /// segment split) the first time it is seen.
    pub fn intern(&mut self, topic: &str) -> TopicId {
        if let Some(&id) = self.index.get(topic) {
            return TopicId(id);
        }
        let name: Arc<str> = Arc::from(topic);
        let mut seg_bounds = Vec::new();
        let mut start = 0u32;
        for (i, b) in topic.bytes().enumerate() {
            if b == b'/' {
                if i as u32 > start {
                    seg_bounds.push((start, i as u32));
                }
                start = i as u32 + 1;
            }
        }
        if topic.len() as u32 > start {
            seg_bounds.push((start, topic.len() as u32));
        }
        let id = self.entries.len() as u32;
        self.index.insert(Arc::clone(&name), id);
        self.entries.push(TopicEntry { name, seg_bounds });
        TopicId(id)
    }

    /// The exact topic string behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this table.
    pub fn name(&self, id: TopicId) -> &str {
        &self.entries[id.index()].name
    }

    /// The non-empty path segments of the topic, split once at intern time.
    pub fn segments(&self, id: TopicId) -> impl Iterator<Item = &str> + Clone {
        let e = &self.entries[id.index()];
        e.seg_bounds
            .iter()
            .map(move |&(a, b)| &e.name[a as usize..b as usize])
    }

    /// Number of interned topics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no topic has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Why a wildcard pattern was rejected at compile time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// `#` appeared somewhere other than the final segment — such a filter
    /// can never match any topic, so installing it is almost certainly a
    /// caller bug.
    HashNotFinal {
        /// The offending pattern.
        pattern: String,
        /// Zero-based index of the misplaced `#` segment.
        segment: usize,
    },
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::HashNotFinal { pattern, segment } => write!(
                f,
                "pattern {pattern:?} has '#' at segment {segment}, but '#' is only \
                 valid as the final segment"
            ),
        }
    }
}

impl std::error::Error for PatternError {}

#[derive(Debug, Clone, PartialEq)]
enum PatSeg {
    /// Must equal this literal segment.
    Lit(Box<str>),
    /// `+`: matches exactly one segment.
    Plus,
}

/// A compiled MQTT-style topic filter: segment-split once, matched by a
/// slice walk. `+` matches one segment, a trailing `#` matches any number
/// of remaining segments (including zero). Leading and duplicate slashes
/// are ignored, mirroring [`crate::broker::topic_matches`].
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    raw: String,
    segs: Vec<PatSeg>,
    open_tail: bool,
    /// `false` for a leniently-compiled invalid pattern: it never matches,
    /// which is exactly what the string matcher did with a misplaced `#`.
    valid: bool,
}

impl Pattern {
    /// Compiles `raw`, rejecting filters that could never match.
    pub fn parse(raw: impl Into<String>) -> Result<Self, PatternError> {
        let raw = raw.into();
        let mut segs = Vec::new();
        let mut open_tail = false;
        let parts: Vec<&str> = raw.split('/').filter(|s| !s.is_empty()).collect();
        for (i, part) in parts.iter().enumerate() {
            match *part {
                "#" => {
                    if i != parts.len() - 1 {
                        return Err(PatternError::HashNotFinal {
                            pattern: raw,
                            segment: i,
                        });
                    }
                    open_tail = true;
                }
                "+" => segs.push(PatSeg::Plus),
                lit => segs.push(PatSeg::Lit(lit.into())),
            }
        }
        Ok(Pattern {
            raw,
            segs,
            open_tail,
            valid: true,
        })
    }

    /// Compiles `raw` without rejecting invalid filters: a misplaced `#`
    /// yields a pattern that simply never matches, byte-compatible with
    /// the uncompiled string matcher. Used for loss/latency/tamper rules,
    /// which historically tolerated (and ignored) such patterns.
    pub fn parse_lenient(raw: impl Into<String>) -> Self {
        let raw = raw.into();
        match Pattern::parse(raw) {
            Ok(p) => p,
            Err(PatternError::HashNotFinal { pattern, .. }) => Pattern {
                raw: pattern,
                segs: Vec::new(),
                open_tail: false,
                valid: false,
            },
        }
    }

    /// The original filter string.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// Matches against a pre-split segment sequence (zero allocation).
    pub fn matches_segments<'a, I>(&self, mut topic: I) -> bool
    where
        I: Iterator<Item = &'a str>,
    {
        if !self.valid {
            return false;
        }
        for seg in &self.segs {
            match (seg, topic.next()) {
                (PatSeg::Plus, Some(_)) => {}
                (PatSeg::Lit(lit), Some(t)) if &**lit == t => {}
                _ => return false,
            }
        }
        self.open_tail || topic.next().is_none()
    }

    /// Matches against a raw topic string (splits on the fly, but without
    /// collecting into vectors).
    pub fn matches_topic(&self, topic: &str) -> bool {
        self.matches_segments(topic.split('/').filter(|s| !s.is_empty()))
    }
}

sesame_types::assert_send_sync!(TopicId, TopicTable, Pattern, PatternError);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_exact() {
        let mut t = TopicTable::new();
        let a = t.intern("/a/b");
        let b = t.intern("/a/b");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        // Same match semantics but a distinct raw string: distinct id,
        // because per-topic stats key on the exact string.
        let c = t.intern("a/b");
        assert_ne!(a, c);
        assert_eq!(t.name(a), "/a/b");
        assert_eq!(t.name(c), "a/b");
    }

    #[test]
    fn segments_filter_empties() {
        let mut t = TopicTable::new();
        let id = t.intern("//a///b/");
        let segs: Vec<&str> = t.segments(id).collect();
        assert_eq!(segs, vec!["a", "b"]);
        let root = t.intern("/");
        assert_eq!(t.segments(root).count(), 0);
    }

    #[test]
    fn pattern_matches_agree_with_string_matcher() {
        use crate::broker::topic_matches;
        let cases = [
            ("ids/alerts/#", "ids/alerts/uav1/spoof"),
            ("ids/+/uav1", "ids/alerts/uav1"),
            ("ids/+", "ids/alerts/uav1"),
            ("a/#", "a"),
            ("#", "anything/at/all"),
            ("/a/b", "a/b"),
            ("a/+", "a"),
            ("a/b/c", "a/b"),
            ("+/+", "x/y"),
        ];
        let mut table = TopicTable::new();
        for (pat, topic) in cases {
            let compiled = Pattern::parse_lenient(pat);
            let id = table.intern(topic);
            assert_eq!(
                compiled.matches_topic(topic),
                topic_matches(pat, topic),
                "string path diverged for {pat} vs {topic}"
            );
            assert_eq!(
                compiled.matches_segments(table.segments(id)),
                topic_matches(pat, topic),
                "interned path diverged for {pat} vs {topic}"
            );
        }
    }

    #[test]
    fn misplaced_hash_is_a_typed_error() {
        let err = Pattern::parse("a/#/b").unwrap_err();
        assert_eq!(
            err,
            PatternError::HashNotFinal {
                pattern: "a/#/b".into(),
                segment: 1
            }
        );
        assert!(err.to_string().contains("final segment"));
        // Lenient compile never matches — the historical behaviour.
        let lenient = Pattern::parse_lenient("a/#/b");
        assert!(!lenient.matches_topic("a/x/b"));
        assert!(!lenient.matches_topic("a/b"));
    }

    #[test]
    fn literal_hash_inside_segment_is_not_a_wildcard() {
        let p = Pattern::parse("a#b/c").unwrap();
        assert!(p.matches_topic("a#b/c"));
        assert!(!p.matches_topic("a/c"));
    }
}
