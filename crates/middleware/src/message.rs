//! Message envelope and payload vocabulary.
//!
//! A [`Message`] is what travels on the bus: a topic, a named sender, a
//! per-sender sequence number, an optional authentication tag and a typed
//! [`Payload`]. Keeping payloads typed (instead of opaque bytes) lets the
//! IDS inspect traffic the way a real deep-packet-inspection IDS would,
//! while `Payload::Raw` still allows opaque application data.

use bytes::Bytes;
use sesame_types::geo::GeoPoint;
use sesame_types::ids::UavId;
use sesame_types::telemetry::UavTelemetry;
use sesame_types::time::SimTime;

/// Typed message payloads understood by the platform and the IDS.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Periodic UAV telemetry.
    Telemetry(UavTelemetry),
    /// A waypoint command for a UAV's autopilot — the stream the paper's
    /// spoofing attack falsifies to corrupt area mapping (§V-C).
    WaypointCommand { uav: UavId, waypoint: GeoPoint },
    /// A position estimate (GPS-derived or collaborative).
    PositionEstimate {
        uav: UavId,
        position: GeoPoint,
        /// 1-σ accuracy of the estimate in metres.
        accuracy_m: f64,
        /// Which localization source produced it.
        source: PositionSource,
    },
    /// A mode-change command (hold / RTB / emergency land / land).
    ModeCommand { uav: UavId, mode: String },
    /// An IDS or monitor alert carried on the broker.
    Alert {
        rule: String,
        subject: UavId,
        detail: String,
    },
    /// Free-form text (used in examples and tests).
    Text(String),
    /// Opaque application bytes.
    Raw(Bytes),
}

/// Localization sources distinguished by the navigation ConSert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PositionSource {
    /// On-board GPS receiver.
    Gps,
    /// Vision-based localization.
    Vision,
    /// Communication/collaborative localization from nearby UAVs.
    Collaborative,
    /// Dead reckoning from IMU/odometry.
    DeadReckoning,
}

/// The envelope placed on the bus.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Destination topic path (e.g. `"/uav1/cmd/waypoint"`).
    pub topic: String,
    /// The claimed sender node name (spoofable unless authenticated).
    pub sender: String,
    /// Per-sender monotone sequence number; gaps and repeats are IDS
    /// signals.
    pub seq: u64,
    /// Publish timestamp.
    pub sent_at: SimTime,
    /// Authentication tag, if the sender signed the message.
    pub auth_tag: Option<u64>,
    /// The payload.
    pub payload: Payload,
}

impl Message {
    /// Creates an unsigned message (the default in a stock ROS deployment —
    /// exactly the weakness the Security EDDI watches for).
    pub fn new(
        topic: impl Into<String>,
        sender: impl Into<String>,
        seq: u64,
        sent_at: SimTime,
        payload: Payload,
    ) -> Self {
        Message {
            topic: topic.into(),
            sender: sender.into(),
            seq,
            sent_at,
            auth_tag: None,
            payload,
        }
    }

    /// Whether the message carries an authentication tag.
    pub fn is_signed(&self) -> bool {
        self.auth_tag.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_by_default() {
        let m = Message::new("/t", "node:a", 0, SimTime::ZERO, Payload::Text("x".into()));
        assert!(!m.is_signed());
        assert_eq!(m.topic, "/t");
        assert_eq!(m.sender, "node:a");
    }

    #[test]
    fn payload_variants_compare() {
        let a = Payload::Text("x".into());
        let b = Payload::Text("x".into());
        assert_eq!(a, b);
        let r = Payload::Raw(Bytes::from_static(b"abc"));
        assert_ne!(a, r);
    }
}
