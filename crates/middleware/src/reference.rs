//! The cache-free reference bus: a golden model for the optimized
//! [`crate::bus::MessageBus`].
//!
//! This is the pre-optimization bus implementation, kept verbatim: every
//! in-flight message re-splits topic strings for every subscriber, loss
//! rule and tamper hook via [`crate::broker::topic_matches`], deep-clones
//! the whole [`Message`] per subscriber, and allocates the topic string
//! into the stats map on each publish/drop/tamper/deliver. It is
//! deliberately slow and obviously correct, which makes it useful twice:
//!
//! * the route-cache conformance suite drives it in lockstep with the
//!   optimized bus and asserts byte-identical delivery sequences, stats
//!   and traces across interleaved rule mutations;
//! * `sesame-bench --bin busbench` uses it as the baseline that the
//!   optimized fanout's throughput is measured against.
//!
//! It intentionally keeps the old lenient subscribe (an invalid wildcard
//! pattern silently never matches), because that is the behaviour the
//! conformance suite must reproduce for leniently-installed rules.

use crate::broker::topic_matches;
use crate::bus::{BusStats, TamperFn};
use crate::message::{Message, Payload};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sesame_obs::{TraceEvent, TraceLog};
use sesame_types::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;

/// Handle to a reference-bus subscriber queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RefSubscription(usize);

struct SubState {
    pattern: String,
    queue: VecDeque<Message>,
    depth: usize,
    active: bool,
}

struct InFlight {
    deliver_at: SimTime,
    msg: Message,
}

/// The cache-free golden-model bus. Mirrors the optimized bus's public
/// surface closely enough for lockstep conformance driving.
pub struct ReferenceBus {
    subs: Vec<SubState>,
    in_flight: VecDeque<InFlight>,
    seq: HashMap<String, u64>,
    tampers: Vec<(String, Option<TamperFn>)>,
    loss: Vec<(String, f64)>,
    latency: SimDuration,
    topic_latency: Vec<(String, SimDuration)>,
    rng: StdRng,
    stats: BusStats,
    trace: TraceLog,
}

impl fmt::Debug for ReferenceBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReferenceBus")
            .field("subscribers", &self.subs.len())
            .field("in_flight", &self.in_flight.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl ReferenceBus {
    /// A reference bus whose loss model draws from a deterministic RNG
    /// seeded with `seed` — seed-compatible with the optimized bus.
    pub fn seeded(seed: u64) -> Self {
        ReferenceBus {
            subs: Vec::new(),
            in_flight: VecDeque::new(),
            seq: HashMap::new(),
            tampers: Vec::new(),
            loss: Vec::new(),
            latency: SimDuration::from_millis(20),
            topic_latency: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            stats: BusStats::default(),
            trace: TraceLog::default(),
        }
    }

    /// Sets the uniform publish→deliver latency.
    pub fn set_latency(&mut self, latency: SimDuration) {
        self.latency = latency;
    }

    /// Overrides the latency for matching topics; last matching rule wins.
    pub fn set_topic_latency(&mut self, pattern: impl Into<String>, latency: SimDuration) {
        self.topic_latency.push((pattern.into(), latency));
    }

    /// Sets a loss probability for matching topics; later rules win.
    pub fn set_loss(&mut self, pattern: impl Into<String>, probability: f64) {
        self.loss
            .push((pattern.into(), probability.clamp(0.0, 1.0)));
    }

    /// Removes every loss rule installed for exactly `pattern`.
    pub fn remove_loss(&mut self, pattern: &str) {
        self.loss.retain(|(p, _)| p != pattern);
    }

    /// Removes every latency override installed for exactly `pattern`.
    pub fn remove_topic_latency(&mut self, pattern: &str) {
        self.topic_latency.retain(|(p, _)| p != pattern);
    }

    /// Subscribes with the default queue depth of 1024.
    pub fn subscribe(&mut self, pattern: impl Into<String>) -> RefSubscription {
        self.subscribe_with_depth(pattern, 1024)
    }

    /// Subscribes with an explicit queue depth.
    pub fn subscribe_with_depth(
        &mut self,
        pattern: impl Into<String>,
        depth: usize,
    ) -> RefSubscription {
        assert!(depth > 0, "queue depth must be positive");
        self.subs.push(SubState {
            pattern: pattern.into(),
            queue: VecDeque::new(),
            depth,
            active: true,
        });
        RefSubscription(self.subs.len() - 1)
    }

    /// Cancels a subscription; its queue is dropped.
    pub fn unsubscribe(&mut self, sub: RefSubscription) {
        if let Some(s) = self.subs.get_mut(sub.0) {
            s.active = false;
            s.queue.clear();
        }
    }

    /// Publishes an unsigned message; sequence numbers are per sender.
    pub fn publish(
        &mut self,
        now: SimTime,
        sender: impl Into<String>,
        topic: impl Into<String>,
        payload: Payload,
    ) -> Message {
        let sender = sender.into();
        let seq = {
            let c = self.seq.entry(sender.clone()).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        let msg = Message::new(topic.into(), sender, seq, now, payload);
        self.publish_message(msg.clone());
        msg
    }

    /// Publishes a pre-built message verbatim.
    pub fn publish_message(&mut self, msg: Message) {
        self.stats.published += 1;
        self.stats
            .per_topic
            .entry(msg.topic.clone())
            .or_default()
            .published += 1;
        let latency = self
            .topic_latency
            .iter()
            .rev()
            .find(|(p, _)| topic_matches(p, &msg.topic))
            .map(|(_, l)| *l)
            .unwrap_or(self.latency);
        let deliver_at = msg.sent_at + latency;
        self.in_flight.push_back(InFlight { deliver_at, msg });
    }

    /// Installs a tamper hook; hooks run at delivery time in installation
    /// order. Returns the slot index.
    pub fn install_tamper(&mut self, pattern: impl Into<String>, f: TamperFn) -> usize {
        self.tampers.push((pattern.into(), Some(f)));
        self.tampers.len() - 1
    }

    /// Removes a tamper hook by slot index.
    pub fn remove_tamper(&mut self, slot: usize) {
        if let Some(t) = self.tampers.get_mut(slot) {
            t.1 = None;
        }
    }

    /// Delivers every due in-flight message, applying loss and tampers.
    /// Returns the number of deliveries made.
    pub fn step(&mut self, now: SimTime) -> usize {
        let mut delivered = 0;
        let mut remaining = VecDeque::with_capacity(self.in_flight.len());
        while let Some(inf) = self.in_flight.pop_front() {
            if inf.deliver_at > now {
                remaining.push_back(inf);
                continue;
            }
            let mut msg = inf.msg;
            // Loss model: last matching rule wins.
            let loss = self
                .loss
                .iter()
                .rev()
                .find(|(p, _)| topic_matches(p, &msg.topic))
                .map(|(_, p)| *p)
                .unwrap_or(0.0);
            if loss > 0.0 && self.rng.random::<f64>() < loss {
                self.stats.dropped += 1;
                self.stats
                    .per_topic
                    .entry(msg.topic.clone())
                    .or_default()
                    .dropped += 1;
                self.trace.push(
                    now.as_millis(),
                    TraceEvent::MessageDropped {
                        topic: msg.topic.clone(),
                        sender: msg.sender.clone(),
                    },
                );
                continue;
            }
            // MITM hooks.
            for (pattern, hook) in self.tampers.iter_mut() {
                if let Some(f) = hook {
                    if topic_matches(pattern, &msg.topic) && f(&mut msg) {
                        self.stats.tampered += 1;
                        self.stats
                            .per_topic
                            .entry(msg.topic.clone())
                            .or_default()
                            .tampered += 1;
                        self.trace.push(
                            now.as_millis(),
                            TraceEvent::MessageTampered {
                                topic: msg.topic.clone(),
                                sender: msg.sender.clone(),
                            },
                        );
                    }
                }
            }
            let mut fanout = 0u64;
            for (idx, sub) in self.subs.iter_mut().enumerate().filter(|(_, s)| s.active) {
                if topic_matches(&sub.pattern, &msg.topic) {
                    if sub.queue.len() >= sub.depth {
                        sub.queue.pop_front();
                        self.stats.overflowed += 1;
                        self.trace.push(
                            now.as_millis(),
                            TraceEvent::QueueOverflow {
                                topic: msg.topic.clone(),
                                subscriber: idx,
                            },
                        );
                    }
                    sub.queue.push_back(msg.clone());
                    self.stats.delivered += 1;
                    fanout += 1;
                    delivered += 1;
                }
            }
            if fanout > 0 {
                self.stats
                    .per_topic
                    .entry(msg.topic.clone())
                    .or_default()
                    .delivered += fanout;
                let latency = inf.deliver_at - msg.sent_at;
                self.stats.latency_ms.observe(latency.as_millis() as f64);
            }
        }
        self.in_flight = remaining;
        delivered
    }

    /// Removes and returns every queued message for `sub`, oldest first.
    pub fn drain(&mut self, sub: RefSubscription) -> Vec<Message> {
        self.subs
            .get_mut(sub.0)
            .filter(|s| s.active)
            .map(|s| s.queue.drain(..).collect())
            .unwrap_or_default()
    }

    /// Traffic counters and latency distribution.
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// The bounded trace of drops, tampers and queue overflows.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Messages accepted but not yet delivered.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }
}

sesame_types::assert_send_sync!(ReferenceBus, RefSubscription);
