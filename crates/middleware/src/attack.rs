//! The adversary model.
//!
//! [`AttackInjector`] drives the four classic ROS attack classes the paper
//! names (§I): data injection ("spoofing" — the §V-C evaluation), man-in-
//! the-middle tampering, replay, and eavesdropping. Each attack operates on
//! the [`MessageBus`] through its public hooks, so the attack plane has no
//! privileged access to subscriber state — exactly like a network-level
//! adversary.

use crate::bus::{MessageBus, Subscription, TamperId};
use crate::message::{Message, Payload};
use sesame_types::geo::GeoPoint;
use sesame_types::ids::UavId;
use sesame_types::time::SimTime;

/// The attack classes the injector can mount.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackKind {
    /// Publish forged messages claiming to come from `impersonate`
    /// (ROS message spoofing, the paper's §V-C scenario).
    Spoof {
        /// Sender name to forge.
        impersonate: String,
        /// Topic to inject into.
        topic: String,
    },
    /// Mutate matching in-flight messages (man in the middle).
    Mitm {
        /// Topic pattern to tamper with.
        pattern: String,
    },
    /// Record matching messages and re-publish them later.
    Replay {
        /// Topic pattern to record.
        pattern: String,
    },
    /// Passively copy matching traffic.
    Eavesdrop {
        /// Topic pattern to listen on.
        pattern: String,
    },
}

/// A live attack session against a bus.
#[derive(Debug)]
pub struct AttackInjector {
    /// Forged-message counter (to fabricate plausible sequence numbers).
    forged_seq: u64,
    tap: Option<Subscription>,
    recorded: Vec<Message>,
    tamper: Option<TamperId>,
    kind: AttackKind,
}

impl AttackInjector {
    /// Arms an attack of the given kind against `bus`. For `Mitm` the
    /// caller supplies the tamper via [`AttackInjector::install_waypoint_offset`]
    /// or [`MessageBus::install_tamper`] directly.
    pub fn arm(bus: &mut MessageBus, kind: AttackKind) -> Self {
        let tap = match &kind {
            AttackKind::Replay { pattern } | AttackKind::Eavesdrop { pattern } => {
                Some(bus.subscribe(pattern.clone()))
            }
            _ => None,
        };
        AttackInjector {
            forged_seq: 1000,
            tap,
            recorded: Vec::new(),
            tamper: None,
            kind,
        }
    }

    /// The armed attack kind.
    pub fn kind(&self) -> &AttackKind {
        &self.kind
    }

    /// Spoofs a waypoint command: a forged, unsigned message that claims to
    /// come from the impersonated sender and steers `uav` toward
    /// `waypoint`. This is the falsified-data injection of Fig. 6.
    ///
    /// # Panics
    ///
    /// Panics if the armed attack is not [`AttackKind::Spoof`].
    pub fn spoof_waypoint(
        &mut self,
        bus: &mut MessageBus,
        now: SimTime,
        uav: UavId,
        waypoint: GeoPoint,
    ) {
        let (sender, topic) = match &self.kind {
            AttackKind::Spoof { impersonate, topic } => (impersonate.clone(), topic.clone()),
            other => panic!("spoof_waypoint on non-spoof attack {other:?}"),
        };
        let msg = Message::new(
            topic,
            sender,
            self.forged_seq,
            now,
            Payload::WaypointCommand { uav, waypoint },
        );
        self.forged_seq += 1;
        bus.publish_message(msg);
    }

    /// Spoofs an arbitrary payload on the armed topic.
    ///
    /// # Panics
    ///
    /// Panics if the armed attack is not [`AttackKind::Spoof`].
    pub fn spoof_payload(&mut self, bus: &mut MessageBus, now: SimTime, payload: Payload) {
        let (sender, topic) = match &self.kind {
            AttackKind::Spoof { impersonate, topic } => (impersonate.clone(), topic.clone()),
            other => panic!("spoof_payload on non-spoof attack {other:?}"),
        };
        let msg = Message::new(topic, sender, self.forged_seq, now, payload);
        self.forged_seq += 1;
        bus.publish_message(msg);
    }

    /// For a `Mitm` attack: installs a tamper that shifts every waypoint
    /// command by (`dlat`, `dlon`) degrees — a subtle area-mapping
    /// corruption.
    ///
    /// # Panics
    ///
    /// Panics if the armed attack is not [`AttackKind::Mitm`].
    pub fn install_waypoint_offset(&mut self, bus: &mut MessageBus, dlat: f64, dlon: f64) {
        let pattern = match &self.kind {
            AttackKind::Mitm { pattern } => pattern.clone(),
            other => panic!("install_waypoint_offset on non-mitm attack {other:?}"),
        };
        let id = bus.install_tamper(
            pattern,
            Box::new(move |m| {
                if let Payload::WaypointCommand { waypoint, .. } = &mut m.payload {
                    waypoint.lat_deg += dlat;
                    waypoint.lon_deg += dlon;
                    // The stale tag stays: a network MITM cannot re-sign
                    // what it cannot key, so verification now fails.
                    true
                } else {
                    false
                }
            }),
        );
        self.tamper = Some(id);
    }

    /// Stops an installed MITM tamper, if any.
    pub fn disarm_mitm(&mut self, bus: &mut MessageBus) {
        if let Some(id) = self.tamper.take() {
            bus.remove_tamper(id);
        }
    }

    /// For `Replay`/`Eavesdrop` attacks: pulls newly observed traffic into
    /// the recorder and returns how many messages were captured this call.
    pub fn observe(&mut self, bus: &mut MessageBus) -> usize {
        let Some(tap) = self.tap else { return 0 };
        // The tap subscription is owned by this injector and never
        // cancelled, so a drain failure means the handle belongs to a
        // different bus — a caller bug worth surfacing loudly.
        let new = bus.drain(tap).expect("attack tap subscription is live");
        let n = new.len();
        // The recorder needs owned copies: take the body without cloning
        // when the tap held the last reference, clone otherwise.
        self.recorded.extend(
            new.into_iter()
                .map(|m| std::sync::Arc::try_unwrap(m).unwrap_or_else(|a| (*a).clone())),
        );
        n
    }

    /// Captured traffic so far (eavesdropping take).
    pub fn recorded(&self) -> &[Message] {
        &self.recorded
    }

    /// For a `Replay` attack: re-publishes every recorded message verbatim
    /// (original sender, seq, and tag — stale by construction). Returns the
    /// number replayed.
    pub fn replay_all(&mut self, bus: &mut MessageBus, now: SimTime) -> usize {
        let mut n = 0;
        for m in &self.recorded {
            let mut replayed = m.clone();
            replayed.sent_at = now;
            bus.publish_message(replayed);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::{AuthKey, MessageAuth};

    #[test]
    fn spoofed_waypoint_reaches_subscriber_unsigned() {
        let mut bus = MessageBus::new();
        let autopilot = bus.subscribe("/uav1/cmd/waypoint");
        let mut atk = AttackInjector::arm(
            &mut bus,
            AttackKind::Spoof {
                impersonate: "node:gcs".into(),
                topic: "/uav1/cmd/waypoint".into(),
            },
        );
        atk.spoof_waypoint(
            &mut bus,
            SimTime::ZERO,
            UavId::new(1),
            GeoPoint::new(35.0, 33.0, 50.0),
        );
        bus.step(SimTime::from_millis(100));
        let msgs = bus.drain(autopilot).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].sender, "node:gcs");
        assert!(!msgs[0].is_signed());
    }

    #[test]
    fn mitm_shifts_waypoints_and_breaks_signature() {
        let mut bus = MessageBus::new();
        let auth = MessageAuth::new(AuthKey::new(5));
        let sub = bus.subscribe("/uav1/cmd/waypoint");
        let mut atk = AttackInjector::arm(
            &mut bus,
            AttackKind::Mitm {
                pattern: "/uav1/cmd/#".into(),
            },
        );
        atk.install_waypoint_offset(&mut bus, 0.001, 0.0);

        let mut m = Message::new(
            "/uav1/cmd/waypoint",
            "node:gcs",
            0,
            SimTime::ZERO,
            Payload::WaypointCommand {
                uav: UavId::new(1),
                waypoint: GeoPoint::new(35.0, 33.0, 50.0),
            },
        );
        auth.sign(&mut m);
        bus.publish_message(m);
        bus.step(SimTime::from_millis(100));
        let got = bus.drain(sub).unwrap();
        assert_eq!(got.len(), 1);
        match &got[0].payload {
            Payload::WaypointCommand { waypoint, .. } => {
                assert!((waypoint.lat_deg - 35.001).abs() < 1e-12);
            }
            p => panic!("unexpected payload {p:?}"),
        }
        assert!(!auth.verify(&got[0]), "tampered message must fail auth");
    }

    #[test]
    fn eavesdrop_captures_without_disturbing_traffic() {
        let mut bus = MessageBus::new();
        let legit = bus.subscribe("/uav1/telemetry");
        let mut atk = AttackInjector::arm(
            &mut bus,
            AttackKind::Eavesdrop {
                pattern: "/uav1/#".into(),
            },
        );
        bus.publish(
            SimTime::ZERO,
            "uav1",
            "/uav1/telemetry",
            Payload::Text("secret".into()),
        );
        bus.step(SimTime::from_millis(100));
        assert_eq!(atk.observe(&mut bus), 1);
        assert_eq!(atk.recorded().len(), 1);
        assert_eq!(
            bus.drain(legit).unwrap().len(),
            1,
            "legit subscriber unaffected"
        );
    }

    #[test]
    fn replay_re_publishes_stale_messages() {
        let mut bus = MessageBus::new();
        let sub = bus.subscribe("/uav1/cmd/waypoint");
        let mut atk = AttackInjector::arm(
            &mut bus,
            AttackKind::Replay {
                pattern: "/uav1/cmd/#".into(),
            },
        );
        bus.publish(
            SimTime::ZERO,
            "node:gcs",
            "/uav1/cmd/waypoint",
            Payload::Text("goto A".into()),
        );
        bus.step(SimTime::from_millis(100));
        assert_eq!(bus.drain(sub).unwrap().len(), 1);
        atk.observe(&mut bus);
        let replayed = atk.replay_all(&mut bus, SimTime::from_secs(60));
        assert_eq!(replayed, 1);
        bus.step(SimTime::from_secs(61));
        let msgs = bus.drain(sub).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].seq, 0, "replayed seq is stale — an IDS signal");
    }

    #[test]
    #[should_panic(expected = "non-spoof")]
    fn wrong_kind_panics() {
        let mut bus = MessageBus::new();
        let mut atk = AttackInjector::arm(
            &mut bus,
            AttackKind::Eavesdrop {
                pattern: "#".into(),
            },
        );
        atk.spoof_payload(&mut bus, SimTime::ZERO, Payload::Text("x".into()));
    }
}
