//! Network quality model.
//!
//! Links between platform nodes (UAV ↔ UAV, UAV ↔ ground station) have a
//! latency and a loss probability derived from range, plus an RSSI-like
//! [`LinkQuality`] signal that the communication-based localization ConSert
//! monitors ("internal signal and connection states to other nearby UAVs",
//! §II-B).

use sesame_types::time::SimDuration;

/// Scalar link quality in `[0, 1]`, where 1 is a perfect short-range link.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct LinkQuality(f64);

impl LinkQuality {
    /// Creates a link quality, clamping into `[0, 1]`.
    pub fn new(q: f64) -> Self {
        LinkQuality(q.clamp(0.0, 1.0))
    }

    /// The raw value.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// Whether the link is good enough for collaborative localization data
    /// sharing (threshold used by the comm-localization ConSert).
    pub fn supports_collaboration(&self) -> bool {
        self.0 >= 0.4
    }
}

/// Distance-driven link model: quality decays smoothly with range, latency
/// and loss grow with range.
///
/// # Examples
///
/// ```
/// use sesame_middleware::network::NetworkModel;
///
/// let net = NetworkModel::default();
/// assert!(net.link_quality(50.0).value() > net.link_quality(2000.0).value());
/// ```
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// Range at which quality halves, metres.
    pub half_range_m: f64,
    /// Base one-way latency.
    pub base_latency: SimDuration,
    /// Additional latency per kilometre of range.
    pub latency_per_km: SimDuration,
    /// Loss probability at the half range (grows toward 1 beyond it).
    pub loss_at_half_range: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            half_range_m: 1500.0,
            base_latency: SimDuration::from_millis(20),
            latency_per_km: SimDuration::from_millis(5),
            loss_at_half_range: 0.05,
        }
    }
}

impl NetworkModel {
    /// Link quality for a link of length `range_m`.
    pub fn link_quality(&self, range_m: f64) -> LinkQuality {
        let r = (range_m.max(0.0)) / self.half_range_m;
        // Smooth logistic-ish falloff: 1 at r=0, 0.5 at r=1.
        LinkQuality::new(1.0 / (1.0 + r * r))
    }

    /// One-way latency for a link of length `range_m`.
    pub fn latency(&self, range_m: f64) -> SimDuration {
        let extra_ms =
            (self.latency_per_km.as_millis() as f64 * (range_m.max(0.0) / 1000.0)).round() as u64;
        SimDuration::from_millis(self.base_latency.as_millis() + extra_ms)
    }

    /// Packet loss probability for a link of length `range_m`, clamped
    /// into `[0, 1]`. A non-finite range (a corrupted or uninitialised
    /// position) is treated as out of range entirely: loss 1.
    pub fn loss_probability(&self, range_m: f64) -> f64 {
        if !range_m.is_finite() {
            return 1.0;
        }
        let r = (range_m.max(0.0)) / self.half_range_m;
        (self.loss_at_half_range * r * r).clamp(0.0, 1.0)
    }

    /// Installs this model's range-derived latency and loss on every bus
    /// topic matching `pattern` — the hook that turns a geometric link
    /// model into actual scheduled drops and delays on the
    /// [`crate::bus::MessageBus`]. Re-applying with a new range replaces
    /// the previous rules for the pattern.
    pub fn apply_to_topic(&self, bus: &mut crate::bus::MessageBus, pattern: &str, range_m: f64) {
        bus.remove_topic_latency(pattern);
        bus.remove_loss(pattern);
        bus.set_topic_latency(pattern, self.latency(range_m));
        bus.set_loss(pattern, self.loss_probability(range_m));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_monotone_decreasing_with_range() {
        let net = NetworkModel::default();
        let q: Vec<f64> = [0.0, 100.0, 500.0, 1500.0, 5000.0]
            .iter()
            .map(|r| net.link_quality(*r).value())
            .collect();
        for w in q.windows(2) {
            assert!(w[0] >= w[1], "quality must not increase with range: {q:?}");
        }
        assert!((q[0] - 1.0).abs() < 1e-12);
        assert!((q[3] - 0.5).abs() < 1e-12, "half range gives 0.5");
    }

    #[test]
    fn latency_grows_with_range() {
        let net = NetworkModel::default();
        assert_eq!(net.latency(0.0).as_millis(), 20);
        assert_eq!(net.latency(2000.0).as_millis(), 30);
    }

    #[test]
    fn loss_clamped_into_unit_interval_at_extreme_ranges() {
        let net = NetworkModel::default();
        assert!(net.loss_probability(0.0) < 1e-12);
        assert_eq!(net.loss_probability(1e9), 1.0);
        assert_eq!(net.loss_probability(f64::MAX), 1.0, "no overflow past 1");
        assert_eq!(net.loss_probability(-50.0), net.loss_probability(0.0));
        for r in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(net.loss_probability(r), 1.0, "non-finite range is lost");
        }
        // A pathological configuration still cannot exceed probability 1.
        let hot = NetworkModel {
            loss_at_half_range: 5.0,
            ..NetworkModel::default()
        };
        assert_eq!(hot.loss_probability(3000.0), 1.0);
    }

    #[test]
    fn loss_monotone_nondecreasing_with_range() {
        let net = NetworkModel::default();
        let l: Vec<f64> = [0.0, 200.0, 800.0, 1500.0, 4000.0, 20_000.0, 1e9]
            .iter()
            .map(|r| net.loss_probability(*r))
            .collect();
        for w in l.windows(2) {
            assert!(w[0] <= w[1], "loss must not decrease with range: {l:?}");
        }
        assert!(l.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn latency_monotone_nondecreasing_with_range() {
        let net = NetworkModel::default();
        let ms: Vec<u64> = [0.0, 500.0, 1000.0, 5000.0, 50_000.0]
            .iter()
            .map(|r| net.latency(*r).as_millis())
            .collect();
        for w in ms.windows(2) {
            assert!(w[0] <= w[1], "latency must not decrease with range: {ms:?}");
        }
    }

    #[test]
    fn quality_clamped_and_monotone_at_extremes() {
        let net = NetworkModel::default();
        assert!(net.link_quality(1e12).value() >= 0.0);
        assert!(net.link_quality(1e12).value() < 1e-6);
        assert_eq!(
            net.link_quality(-10.0).value(),
            1.0,
            "negative range = co-located"
        );
    }

    #[test]
    fn apply_to_topic_installs_range_derived_rules() {
        use crate::bus::MessageBus;
        use crate::message::Payload;
        use sesame_types::time::SimTime;

        let net = NetworkModel::default();
        let mut bus = MessageBus::seeded(3);
        // Far link: every message dropped (loss ≈ 1 at extreme range).
        net.apply_to_topic(&mut bus, "/uav9/telemetry", 1e9);
        let sub = bus.subscribe("/uav9/telemetry");
        for _ in 0..10 {
            bus.publish(
                SimTime::ZERO,
                "n",
                "/uav9/telemetry",
                Payload::Text("x".into()),
            );
        }
        bus.step(SimTime::from_secs(10));
        assert_eq!(bus.drain(sub).unwrap().len(), 0);
        // Re-applying at close range replaces the rules: traffic flows.
        net.apply_to_topic(&mut bus, "/uav9/telemetry", 10.0);
        for _ in 0..10 {
            bus.publish(
                SimTime::from_secs(10),
                "n",
                "/uav9/telemetry",
                Payload::Text("x".into()),
            );
        }
        bus.step(SimTime::from_secs(20));
        assert_eq!(bus.drain(sub).unwrap().len(), 10);
    }

    #[test]
    fn collaboration_threshold() {
        assert!(LinkQuality::new(0.5).supports_collaboration());
        assert!(!LinkQuality::new(0.3).supports_collaboration());
        assert_eq!(LinkQuality::new(7.0).value(), 1.0);
        assert_eq!(LinkQuality::new(-1.0).value(), 0.0);
    }
}
