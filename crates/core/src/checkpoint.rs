//! Periodic copy-on-write checkpoints and deterministic recovery.
//!
//! The platform's state is the product of a deterministic function of
//! the scenario log (the [`crate::scenario::ScenarioBuilder`]: seed,
//! fleet, fault/attack schedules) and the tick count. A [`Checkpoint`]
//! therefore stores no platform state at all — it pins the *log* behind
//! a shared [`Arc`] (copy-on-write: capturing is an atomic refcount
//! bump) plus the logical clock and a digest of the observable state at
//! capture time.
//!
//! [`Checkpoint::recover`] rebuilds the scenario from the log, replays
//! exactly the checkpointed number of ticks through the same
//! [`crate::scenario::Scenario::step_once`] loop the original run used,
//! and verifies the digest bit-for-bit before handing the scenario
//! back. A recovered run continued to completion is indistinguishable
//! from an uninterrupted one, except for the digest-excluded
//! `checkpoint.*` counters that record the recovery itself — the
//! `checkpoint_recovery` integration suite holds this equality.
//!
//! Digesting covers every surface the conformance suites compare across
//! execution plans: the PoF/uncertainty series (bit patterns, not
//! approximate equality), trajectories, the event log, the structured
//! trace, and the wall-clock-free metrics.

use crate::orchestrator::Platform;
use crate::scenario::{Scenario, ScenarioBuilder};
use std::sync::Arc;

/// A checkpoint of a scenario run: the scenario log (shared
/// copy-on-write), the tick it was captured at, and the state digest
/// recovery must reproduce.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    tick: u64,
    digest: u64,
    log: Arc<ScenarioBuilder>,
}

/// Why a recovery was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverError {
    /// The replay reached the checkpoint tick with different observable
    /// state — the log no longer describes the run that was captured
    /// (or determinism broke, which the conformance suites would also
    /// catch).
    DigestMismatch {
        /// The digest stored at capture time.
        expected: u64,
        /// The digest the replay produced.
        actual: u64,
    },
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::DigestMismatch { expected, actual } => write!(
                f,
                "checkpoint digest mismatch: expected {expected:#018x}, replay produced {actual:#018x}"
            ),
        }
    }
}

impl std::error::Error for RecoverError {}

impl Checkpoint {
    /// Captures the current state of `platform` against `log`. Called by
    /// [`Scenario::checkpoint`][crate::scenario::Scenario::checkpoint];
    /// no platform state is copied.
    pub(crate) fn capture(platform: &Platform, log: Arc<ScenarioBuilder>) -> Self {
        Checkpoint {
            tick: platform.total_ticks(),
            digest: digest_platform(platform),
            log,
        }
    }

    /// The tick count at capture time.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The state digest recovery must reproduce.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Rebuilds the scenario from the log and replays it to the
    /// checkpointed tick, verifying the digest before returning the
    /// recovered, resumable scenario (continue it with
    /// [`Scenario::resume`][crate::scenario::Scenario::resume] or
    /// step it manually).
    pub fn recover(&self) -> Result<Scenario, RecoverError> {
        let mut scenario = (*self.log).clone().build();
        scenario.launch();
        for _ in 0..self.tick {
            scenario.step_once();
        }
        let actual = digest_platform(scenario.platform());
        if actual != self.digest {
            return Err(RecoverError::DigestMismatch {
                expected: self.digest,
                actual,
            });
        }
        scenario.platform_mut().record_recovery(self.tick);
        Ok(scenario)
    }
}

/// FNV-1a digest over every observable surface of the platform the
/// conformance suites compare: series and trajectory bit patterns, the
/// event log, the structured trace, and the wall-clock-free metrics
/// (minus the `checkpoint.*` keys, so capturing and recovering never
/// perturb the digest they verify).
pub fn digest_platform(platform: &Platform) -> u64 {
    let mut h = Fnv::new();
    let series = platform.series();
    for (t, v) in series.pof() {
        h.f64(*t);
        h.f64(*v);
    }
    for (t, v) in series.uncertainty() {
        h.f64(*t);
        h.f64(*v);
    }
    for i in 0..series.uav_count() {
        for (t, p) in series.trajectory(i) {
            h.f64(*t);
            h.f64(p.lat_deg);
            h.f64(p.lon_deg);
            h.f64(p.alt_m);
        }
    }
    for ev in platform.events().iter() {
        h.bytes(format!("{ev:?}").as_bytes());
    }
    for rec in platform.trace().iter() {
        h.bytes(format!("{rec:?}").as_bytes());
    }
    let metrics = platform.metrics_snapshot().without_wall_clock();
    for (k, v) in &metrics.counters {
        if k.starts_with("checkpoint.") {
            continue;
        }
        h.bytes(k.as_bytes());
        h.u64(*v);
    }
    for (k, v) in &metrics.gauges {
        h.bytes(k.as_bytes());
        h.f64(*v);
    }
    h.finish()
}

/// Minimal FNV-1a. `std`'s hashers are not guaranteed stable across
/// releases; a checkpoint digest must be.
///
/// Public because every digest in the reproduction shares this one
/// discipline: the checkpoint digest here, the conformance digests the
/// bench binaries assert, and the `sesame-server` run log's
/// record-chain digest all hash the same way, so a digest logged by one
/// layer is directly comparable to one recomputed by another.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the standard FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    /// Resumes hashing from a previous [`Fnv::finish`] value — the
    /// chaining primitive the event-sourced run log uses: each record's
    /// digest seeds the next record's hash, so flipping any byte
    /// anywhere invalidates every digest after it.
    pub fn resume(state: u64) -> Self {
        Fnv(state)
    }

    /// Feeds raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds a `u64` as its little-endian bytes.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Hashes the exact bit pattern — digest equality is bit-identity,
    /// not approximate float equality.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesame_types::time::SimTime;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        let mut h = Fnv::new();
        h.bytes(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv::new();
        h.bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn digest_distinguishes_float_bit_patterns() {
        let mut a = Fnv::new();
        a.f64(0.0);
        let mut b = Fnv::new();
        b.f64(-0.0); // same value, different bits
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn checkpoint_is_copy_on_write() {
        let mut scenario = ScenarioBuilder::new(3)
            .deadline(SimTime::from_secs(5))
            .build();
        scenario.launch();
        for _ in 0..10 {
            scenario.step_once();
        }
        let a = scenario.checkpoint();
        let b = scenario.checkpoint();
        // Both checkpoints share the one log allocation.
        assert!(Arc::ptr_eq(&a.log, &b.log));
        assert_eq!(a.tick(), b.tick());
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn recover_replays_to_the_same_digest() {
        let mut scenario = ScenarioBuilder::new(17)
            .deadline(SimTime::from_secs(10))
            .build();
        scenario.launch();
        for _ in 0..25 {
            scenario.step_once();
        }
        let cp = scenario.checkpoint();
        let recovered = cp.recover().expect("digest must match");
        assert_eq!(recovered.platform().total_ticks(), cp.tick());
        let counters = &recovered.platform().metrics_snapshot().counters;
        assert_eq!(counters.get("checkpoint.recoveries"), Some(&1));
        assert_eq!(counters.get("checkpoint.replayed_ticks"), Some(&25));
    }

    #[test]
    fn recover_rejects_a_forged_digest() {
        let mut scenario = ScenarioBuilder::new(23)
            .deadline(SimTime::from_secs(5))
            .build();
        scenario.launch();
        for _ in 0..5 {
            scenario.step_once();
        }
        let mut cp = scenario.checkpoint();
        cp.digest ^= 1;
        match cp.recover() {
            Err(RecoverError::DigestMismatch { expected, actual }) => {
                assert_eq!(expected, actual ^ 1);
            }
            other => panic!("expected DigestMismatch, got {other:?}"),
        }
    }
}
