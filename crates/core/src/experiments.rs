//! Experiment runners regenerating every §V result.
//!
//! Each function returns structured data that the `sesame-bench`
//! `experiments` binary prints as the paper's rows/series and that
//! EXPERIMENTS.md records as paper-vs-measured. Absolute numbers depend on
//! the simulated substrate; the *shapes* (who wins, by what factor, where
//! thresholds are crossed) are the reproduction target — see DESIGN.md.

use crate::orchestrator::Sample;
use crate::scenario::{fig5_like_config, ScenarioBuilder, ScenarioOutcome, SpoofAttack};
use sesame_obs::MetricsSnapshot;
use sesame_types::events::SystemEvent;
use sesame_types::geo::Vec3;
use sesame_types::time::SimTime;
use sesame_vision::detector::PersonDetector;

/// Summary of one §V-A run.
#[derive(Debug, Clone)]
pub struct Fig5Run {
    /// Seconds at which the coverage completed (None = never).
    pub completion_secs: Option<f64>,
    /// Availability of the affected UAV (productive fraction).
    pub affected_availability: f64,
    /// Fleet-mean availability.
    pub mean_availability: f64,
    /// Coverage fraction achieved.
    pub completed_fraction: f64,
}

/// The §V-A (Fig. 5) result: probability of failure under a battery fault,
/// with and without SESAME.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// The SESAME run.
    pub with_sesame: Fig5Run,
    /// The baseline run.
    pub baseline: Fig5Run,
    /// PoF(t) of the affected UAV in the SESAME run (per second).
    pub pof_series: Vec<Sample<f64>>,
    /// Seconds at which PoF first crossed the 0.9 threshold.
    pub threshold_crossed_secs: Option<f64>,
    /// Availability gain of SESAME over the baseline (percentage points).
    pub availability_gain: f64,
    /// Relative completion-time improvement of SESAME (fraction).
    pub completion_time_improvement: Option<f64>,
}

/// Runs the Fig. 5 experiment: battery of UAV 1 faults at t = 250 s
/// (SoC −40 points, thermal runaway); the mission nominally ends ≈510 s.
pub fn fig5(seed: u64) -> Fig5Result {
    let sesame_outcome = fig5_like_config(seed, true).build().run();
    let baseline_outcome = fig5_like_config(seed, false).build().run();

    let summarize = |o: &ScenarioOutcome| Fig5Run {
        completion_secs: o.metrics.mission_complete_secs,
        affected_availability: o.metrics.availability[0],
        mean_availability: o.metrics.mean_availability,
        completed_fraction: o.metrics.mission_completed_fraction,
    };
    let with_sesame = summarize(&sesame_outcome);
    let baseline = summarize(&baseline_outcome);

    let threshold_crossed_secs = sesame_outcome
        .pof_series
        .iter()
        .find(|(_, p)| *p >= 0.9)
        .map(|(t, _)| *t);
    let availability_gain = with_sesame.affected_availability - baseline.affected_availability;
    let completion_time_improvement = match (with_sesame.completion_secs, baseline.completion_secs)
    {
        (Some(s), Some(b)) if b > 0.0 => Some((b - s) / b),
        _ => None,
    };
    Fig5Result {
        with_sesame,
        baseline,
        pof_series: sesame_outcome.pof_series,
        threshold_crossed_secs,
        availability_gain,
        completion_time_improvement,
    }
}

/// The §V-B result: uncertainty-driven altitude adaptation.
#[derive(Debug, Clone)]
pub struct SarAccuracyResult {
    /// Peak combined uncertainty while scanning high (must exceed 0.9).
    pub high_altitude_uncertainty: f64,
    /// Settled combined uncertainty after descending (paper: ≈0.75).
    pub low_altitude_uncertainty: f64,
    /// Seconds at which the descent was commanded.
    pub descent_commanded_secs: Option<f64>,
    /// Model detection accuracy at the low altitude (paper: 0.998).
    pub accuracy_low: f64,
    /// Model detection accuracy at the high altitude (the no-SESAME
    /// operating point).
    pub accuracy_high: f64,
    /// Empirical fleet detection accuracy measured in the adaptive run.
    pub measured_accuracy: f64,
    /// Empirical fleet detection accuracy without adaptation.
    pub baseline_accuracy: f64,
    /// Uncertainty samples of UAV 1 over the adaptive run.
    pub uncertainty_series: Vec<Sample<f64>>,
}

/// Runs the §V-B experiment: the fleet starts scanning from 60 m; SafeML /
/// DeepKnowledge / SINADRA push the uncertainty over the 90 % threshold;
/// the policy descends to 25 m.
pub fn sar_accuracy(seed: u64) -> SarAccuracyResult {
    let build = |adapt: bool| {
        let mut b = ScenarioBuilder::new(seed)
            .sesame(true)
            .altitude_adaptation(adapt)
            .deadline(SimTime::from_secs(900));
        b.config_mut().scan_altitude_m = 60.0;
        b.config_mut().area_width_m = 360.0;
        b.config_mut().area_height_m = 240.0;
        b.config_mut().person_count = 10;
        b
    };
    let adaptive = build(true).build().run();
    let fixed = build(false).build().run();

    let descent_commanded_secs = adaptive
        .events
        .iter()
        .find(|e| {
            matches!(&e.event, SystemEvent::MonitorFinding { monitor, detail, .. }
                if monitor == "sinadra" && detail.contains("altitude adaptation -> 25"))
        })
        .map(|e| e.time.as_secs_f64());

    // Peak uncertainty before the descent; settled uncertainty well after.
    let split = descent_commanded_secs.unwrap_or(f64::MAX);
    let high_altitude_uncertainty = adaptive
        .uncertainty_series
        .iter()
        .filter(|(t, _)| *t <= split)
        .map(|(_, u)| *u)
        .fold(0.0, f64::max);
    let low_altitude_uncertainty = {
        // Average over the settled low-altitude scan: after the descent
        // completes and before the post-mission return home.
        let end = adaptive.metrics.mission_complete_secs.unwrap_or(f64::MAX);
        let late: Vec<f64> = adaptive
            .uncertainty_series
            .iter()
            .filter(|(t, _)| *t >= split + 30.0 && *t < end)
            .map(|(_, u)| *u)
            .collect();
        if late.is_empty() {
            f64::NAN
        } else {
            late.iter().sum::<f64>() / late.len() as f64
        }
    };

    let model = PersonDetector::new(seed);
    SarAccuracyResult {
        high_altitude_uncertainty,
        low_altitude_uncertainty,
        descent_commanded_secs,
        accuracy_low: model.accuracy(25.0, 1.0),
        accuracy_high: model.accuracy(60.0, 1.0),
        measured_accuracy: adaptive.metrics.detection_accuracy,
        baseline_accuracy: fixed.metrics.detection_accuracy,
        uncertainty_series: adaptive.uncertainty_series,
    }
}

/// The §V-C / Fig. 6 result: area-mapping trajectories with and without
/// the spoofing attack.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// Per-second deviation (metres) between the attacked and clean
    /// trajectories of the targeted UAV (baseline, attack undetected).
    pub deviation_series: Vec<Sample<f64>>,
    /// Maximum deviation reached in the unprotected run.
    pub max_deviation_m: f64,
    /// Seconds between attack start and Security EDDI detection in the
    /// SESAME run.
    pub detection_latency_secs: Option<f64>,
    /// Deviation at the moment of detection in the SESAME run.
    pub deviation_at_detection_m: f64,
    /// The attack start time, seconds.
    pub attack_start_secs: f64,
    /// Clean trajectory of the targeted UAV.
    pub clean_trajectory: Vec<Sample<sesame_types::geo::GeoPoint>>,
    /// Attacked (unprotected) trajectory of the targeted UAV.
    pub attacked_trajectory: Vec<Sample<sesame_types::geo::GeoPoint>>,
    /// Observability snapshot of the protected (SESAME) run: per-phase
    /// tick timings, bus drop/tamper counters, IDS activity.
    pub protected_metrics: MetricsSnapshot,
}

/// When the Fig. 6 spoofing attack starts, seconds.
pub const FIG6_ATTACK_START_SECS: f64 = 120.0;

/// The three independent runs the Fig. 6 experiment compares, in the
/// order [`fig6_reduce`] consumes them. Each leg is a full scenario run
/// with no data dependency on the others, so a parallel executor can
/// run all three concurrently and reduce afterwards.
pub const FIG6_LEGS: [(bool, bool); 3] = [
    (false, false), // clean:     no SESAME, no attack
    (false, true),  // attacked:  no SESAME, spoofing on
    (true, true),   // protected: SESAME on, spoofing on
];

/// Builds one leg of the Fig. 6 experiment (`sesame` stack on/off,
/// spoofing `attack` armed or not).
pub fn fig6_scenario(seed: u64, sesame: bool, attack: bool) -> ScenarioBuilder {
    let mut b = ScenarioBuilder::new(seed)
        .sesame(sesame)
        .deadline(SimTime::from_secs(700));
    b.config_mut().area_width_m = 420.0;
    b.config_mut().area_height_m = 300.0;
    b.config_mut().person_count = 5;
    if attack {
        b = b.spoof_attack(SpoofAttack {
            start: SimTime::from_secs(FIG6_ATTACK_START_SECS as u64),
            uav_index: 0,
            gps_drift: Vec3::new(0.0, 4.0, 0.0),
            forge_waypoints: true,
        });
    }
    b
}

/// Runs the Fig. 6 experiment serially: clean vs attacked mapping runs.
pub fn fig6(seed: u64) -> Fig6Result {
    let [clean, attacked, protected] =
        FIG6_LEGS.map(|(sesame, attack)| fig6_scenario(seed, sesame, attack).build().run());
    fig6_reduce(&clean, &attacked, &protected)
}

/// The pure reduction step of Fig. 6: folds the three leg outcomes into
/// the result. Outcomes are passed positionally ([`FIG6_LEGS`] order),
/// so the reduction is identical whether the legs ran serially or on
/// three workers.
pub fn fig6_reduce(
    clean: &ScenarioOutcome,
    attacked: &ScenarioOutcome,
    protected: &ScenarioOutcome,
) -> Fig6Result {
    let attack_start = FIG6_ATTACK_START_SECS;
    // Deviation between the two unprotected runs, matched per second.
    let mut deviation_series = Vec::new();
    for (t, p_clean) in &clean.trajectories[0] {
        if let Some((_, p_atk)) = attacked.trajectories[0]
            .iter()
            .find(|(ta, _)| (ta - t).abs() < 0.5)
        {
            deviation_series.push((*t, p_clean.haversine_distance_m(p_atk)));
        }
    }
    let max_deviation_m = deviation_series.iter().map(|(_, d)| *d).fold(0.0, f64::max);
    let detection_latency_secs = protected
        .metrics
        .attack_detected_secs
        .map(|t| t - attack_start);
    // Deviation of the protected run at detection time (true vs clean).
    let deviation_at_detection_m = protected
        .metrics
        .attack_detected_secs
        .and_then(|td| {
            let p = protected.trajectories[0]
                .iter()
                .find(|(t, _)| (*t - td).abs() < 1.0)?;
            let c = clean.trajectories[0]
                .iter()
                .find(|(t, _)| (*t - td).abs() < 1.0)?;
            Some(p.1.haversine_distance_m(&c.1))
        })
        .unwrap_or(f64::NAN);
    Fig6Result {
        deviation_series,
        max_deviation_m,
        detection_latency_secs,
        deviation_at_detection_m,
        attack_start_secs: attack_start,
        clean_trajectory: clean.trajectories[0].clone(),
        attacked_trajectory: attacked.trajectories[0].clone(),
        protected_metrics: protected.obs_metrics.clone(),
    }
}

/// The Fig. 7 result: the CL-guided, GPS-denied safe landing of the
/// spoofed UAV.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Seconds at which the attack was detected.
    pub detected_secs: Option<f64>,
    /// Seconds at which the spoofed UAV touched down.
    pub landed_secs: Option<f64>,
    /// Distance between the chosen pad and the true touchdown, metres.
    pub landing_miss_m: Option<f64>,
    /// Per-fix CL position error over the landing, metres.
    pub cl_error_series: Vec<Sample<f64>>,
    /// Mean CL error over the landing.
    pub mean_cl_error_m: f64,
    /// Whether the spoofed UAV was GPS-denied during the landing.
    pub gps_denied: bool,
}

/// Runs the Fig. 7 experiment (the SESAME leg of the Fig. 6 scenario,
/// inspected for the collaborative landing).
pub fn fig7(seed: u64) -> Fig7Result {
    let protected = fig6_scenario(seed, true, true).build().run();
    let cl_error_series: Vec<Sample<f64>> = protected
        .events
        .iter()
        .filter_map(|e| match &e.event {
            SystemEvent::CollabFix { error_m, .. } => Some((e.time.as_secs_f64(), *error_m)),
            _ => None,
        })
        .collect();
    let mean_cl_error_m = if cl_error_series.is_empty() {
        f64::NAN
    } else {
        cl_error_series.iter().map(|(_, e)| *e).sum::<f64>() / cl_error_series.len() as f64
    };
    let gps_denied = protected.events.iter().any(
        |e| matches!(&e.event, SystemEvent::FaultInjected { fault, .. } if fault == "gps_loss"),
    );
    Fig7Result {
        detected_secs: protected.metrics.attack_detected_secs,
        landed_secs: protected.metrics.cl_landing.map(|o| o.at.as_secs_f64()),
        landing_miss_m: protected.metrics.cl_landing.map(|o| o.miss_m),
        cl_error_series,
        mean_cl_error_m,
        gps_denied,
    }
}

/// Multi-seed robustness summary of the Fig. 5 shape.
#[derive(Debug, Clone)]
pub struct RobustnessResult {
    /// Seeds exercised.
    pub seeds: Vec<u64>,
    /// Per-seed completion-time improvement of SESAME over baseline.
    pub improvements: Vec<f64>,
    /// Per-seed availability gain (percentage points) on the affected UAV.
    pub availability_gains: Vec<f64>,
    /// Seeds where both runs completed and SESAME won on both metrics.
    pub shape_holds_count: usize,
}

impl RobustnessResult {
    /// The pure reduction step: folds per-seed Fig. 5 results — produced
    /// serially or by parallel workers — into the summary. `results`
    /// must be in the same order as `seeds`; handing results over in
    /// seed order (not completion order) is what keeps the summary
    /// identical at any worker count.
    pub fn from_runs(seeds: &[u64], results: &[Fig5Result]) -> RobustnessResult {
        assert_eq!(seeds.len(), results.len(), "one Fig5Result per seed");
        let mut improvements = Vec::new();
        let mut availability_gains = Vec::new();
        let mut shape_holds_count = 0;
        for r in results {
            let improvement = r.completion_time_improvement.unwrap_or(f64::NAN);
            improvements.push(improvement);
            availability_gains.push(r.availability_gain);
            if improvement > 0.0 && r.availability_gain > 0.0 {
                shape_holds_count += 1;
            }
        }
        RobustnessResult {
            seeds: seeds.to_vec(),
            improvements,
            availability_gains,
            shape_holds_count,
        }
    }
}

/// Repeats the Fig. 5 experiment across seeds to check the headline shape
/// is not a single-seed artefact. Expensive: one full pair of scenario
/// runs per seed.
pub fn fig5_robustness(seeds: &[u64]) -> RobustnessResult {
    let results: Vec<Fig5Result> = seeds.iter().map(|&s| fig5(s)).collect();
    RobustnessResult::from_runs(seeds, &results)
}

// Experiment results are assembled on worker threads and handed back to
// the reducing thread.
sesame_types::assert_send_sync!(
    Fig5Result,
    SarAccuracyResult,
    Fig6Result,
    Fig7Result,
    RobustnessResult,
);

#[cfg(test)]
mod tests {
    use super::*;

    // These are the headline reproduction checks; they run full scenarios
    // and are therefore the slowest tests in the workspace.

    #[test]
    fn fig5_shape_holds() {
        let r = fig5(42);
        // SESAME completes; the PoF threshold is approached near mission
        // end; the baseline loses availability to the battery swap.
        assert!(
            r.with_sesame.completed_fraction > 0.99,
            "{:?}",
            r.with_sesame
        );
        assert!(r.baseline.completed_fraction > 0.99, "{:?}", r.baseline);
        assert!(
            r.availability_gain > 0.03,
            "SESAME must be more available: gain = {}",
            r.availability_gain
        );
        let improvement = r.completion_time_improvement.expect("both complete");
        assert!(
            improvement > 0.05,
            "SESAME must finish meaningfully earlier: {improvement}"
        );
        // The PoF must rise sharply only after the 250 s fault.
        let before: f64 = r
            .pof_series
            .iter()
            .filter(|(t, _)| *t < 245.0)
            .map(|(_, p)| *p)
            .fold(0.0, f64::max);
        let after = r
            .pof_series
            .iter()
            .filter(|(t, _)| *t > 400.0)
            .map(|(_, p)| *p)
            .fold(0.0, f64::max);
        assert!(before < 0.1, "pre-fault PoF {before}");
        assert!(after > 0.5, "post-fault PoF {after}");
    }

    #[test]
    fn sar_accuracy_shape_holds() {
        let r = sar_accuracy(42);
        assert!(
            r.high_altitude_uncertainty > 0.9,
            "high-altitude uncertainty {}",
            r.high_altitude_uncertainty
        );
        assert!(
            r.descent_commanded_secs.is_some(),
            "the policy must command a descent"
        );
        assert!(
            (0.5..0.9).contains(&r.low_altitude_uncertainty),
            "post-descent uncertainty {}",
            r.low_altitude_uncertainty
        );
        assert!((r.accuracy_low - 0.998).abs() < 1e-9);
        assert!(r.accuracy_low > r.accuracy_high);
        assert!(
            r.measured_accuracy > r.baseline_accuracy,
            "adaptation must raise empirical accuracy: {} vs {}",
            r.measured_accuracy,
            r.baseline_accuracy
        );
    }

    #[test]
    fn fig6_shape_holds() {
        let r = fig6(42);
        // Before the attack the trajectories coincide (same seed).
        let pre: f64 = r
            .deviation_series
            .iter()
            .filter(|(t, _)| *t < r.attack_start_secs)
            .map(|(_, d)| *d)
            .fold(0.0, f64::max);
        assert!(pre < 5.0, "pre-attack deviation {pre}");
        assert!(
            r.max_deviation_m > 50.0,
            "unprotected deviation {} must be large",
            r.max_deviation_m
        );
        let latency = r.detection_latency_secs.expect("SESAME must detect");
        assert!(
            latency < 30.0,
            "detection latency {latency}s (paper: immediate)"
        );
        // The protected run ships its observability snapshot: every tick
        // phase timed, the bus counters mirrored.
        assert!(!r.protected_metrics.is_empty());
        assert!(r.protected_metrics.counter("platform.ticks") > 0);
        assert!(r.protected_metrics.counter("bus.published") > 0);
        assert!(r
            .protected_metrics
            .histogram("tick.phase.sim_step")
            .is_some());
        assert!(!r.protected_metrics.render_table().is_empty());
    }

    #[test]
    fn fig7_shape_holds() {
        let r = fig7(42);
        assert!(r.detected_secs.is_some());
        assert!(r.gps_denied, "the spoofed UAV must land GPS-denied");
        let miss = r.landing_miss_m.expect("the landing must complete");
        assert!(miss < 10.0, "landing miss {miss} m");
        assert!(!r.cl_error_series.is_empty());
        assert!(
            r.mean_cl_error_m < 8.0,
            "mean CL error {} m",
            r.mean_cl_error_m
        );
    }
}
