//! Safety–security co-engineering.
//!
//! The paper notes that "to help ensure compatibility and interaction of
//! Safety EDDI and Security EDDIs … a runtime Safety-Security
//! Co-Engineering concept has been proposed in \[36\] … a combined
//! methodology and workflow designed to harmonize the development of the
//! EDDIs and capture system dependability information in a holistic
//! manner." This module is that holistic view at runtime: it folds the
//! Safety EDDI's reliability estimate and the Security EDDI's attack-tree
//! states into one per-UAV [`DependabilityReport`] with a combined verdict
//! and the interaction effects between the two domains made explicit
//! (e.g. an active attack *invalidates* otherwise-healthy sensor
//! evidence; low reliability *amplifies* the urgency of a security
//! response).

use sesame_safedrones::monitor::ReliabilityEstimate;
use sesame_safedrones::ReliabilityLevel;
use sesame_security::attack_tree::TreeStatus;
use sesame_security::eddi::SecurityStatus;
use sesame_types::ids::UavId;
use sesame_types::time::SimTime;

/// The combined dependability verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DependabilityVerdict {
    /// Safe and secure: full mission capability.
    Dependable,
    /// One domain degraded (medium reliability, or attack steps observed
    /// without the goal being reached): continue with heightened caution.
    Degraded,
    /// The security domain is compromised (attack goal reached) while the
    /// platform is otherwise flyable: execute the security mitigation.
    Compromised,
    /// Both domains bad, or safety alone demands abort: the mitigation
    /// must be the most conservative available (immediate landing).
    Unsafe,
}

impl std::fmt::Display for DependabilityVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DependabilityVerdict::Dependable => "dependable",
            DependabilityVerdict::Degraded => "degraded",
            DependabilityVerdict::Compromised => "compromised",
            DependabilityVerdict::Unsafe => "unsafe",
        };
        f.write_str(s)
    }
}

/// The per-UAV holistic report.
#[derive(Debug, Clone)]
pub struct DependabilityReport {
    /// Which UAV.
    pub uav: UavId,
    /// When the report was assembled.
    pub time: SimTime,
    /// The Safety EDDI's reliability estimate.
    pub safety: ReliabilityEstimate,
    /// The Security EDDI statuses (one per monitored attack tree).
    pub security: Vec<SecurityStatus>,
    /// The combined verdict.
    pub verdict: DependabilityVerdict,
    /// Cross-domain interaction notes (why the verdict is what it is).
    pub interactions: Vec<String>,
}

impl DependabilityReport {
    /// Fuses one safety estimate with the security statuses for a UAV.
    pub fn assemble(
        uav: UavId,
        time: SimTime,
        safety: ReliabilityEstimate,
        security: Vec<SecurityStatus>,
    ) -> Self {
        let attack_reached = security.iter().any(|s| s.status == TreeStatus::RootReached);
        let attack_in_progress = security.iter().any(|s| s.status == TreeStatus::InProgress);
        let mut interactions = Vec::new();
        let verdict = match (safety.level, attack_reached) {
            (ReliabilityLevel::Low, true) => {
                interactions.push(
                    "active attack with low reliability: the secure mitigation \
                     (collaborative landing) must not assume healthy propulsion"
                        .into(),
                );
                DependabilityVerdict::Unsafe
            }
            (ReliabilityLevel::Low, false) => {
                interactions
                    .push("reliability alone demands abort; no security interaction".into());
                DependabilityVerdict::Unsafe
            }
            (_, true) => {
                interactions.push(
                    "attack goal reached: position/command evidence is untrusted even \
                     though the sensors report healthy"
                        .into(),
                );
                DependabilityVerdict::Compromised
            }
            (ReliabilityLevel::Medium, false) => {
                if attack_in_progress {
                    interactions.push(
                        "attack steps observed while reliability is already degraded: \
                         tighten monitoring thresholds"
                            .into(),
                    );
                }
                DependabilityVerdict::Degraded
            }
            (ReliabilityLevel::High, false) => {
                if attack_in_progress {
                    interactions
                        .push("attack steps observed: degrade trust in networked evidence".into());
                    DependabilityVerdict::Degraded
                } else {
                    DependabilityVerdict::Dependable
                }
            }
        };
        DependabilityReport {
            uav,
            time,
            safety,
            security,
            verdict,
            interactions,
        }
    }

    /// Renders the report as operator-facing text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "[{}] {} dependability: {} (PoF {:.3}, reliability {})\n",
            self.time, self.uav, self.verdict, self.safety.pof, self.safety.level
        );
        for s in &self.security {
            out.push_str(&format!("  security `{}`: {:?}\n", s.tree, s.status));
            if !s.attack_path.is_empty() {
                out.push_str(&format!("    path: {}\n", s.attack_path.join(" -> ")));
            }
        }
        for i in &self.interactions {
            out.push_str(&format!("  note: {i}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesame_safedrones::monitor::ReliabilityAction;

    fn estimate(pof: f64, level: ReliabilityLevel) -> ReliabilityEstimate {
        ReliabilityEstimate {
            time: SimTime::from_secs(10),
            pof,
            level,
            action: ReliabilityAction::Continue,
            pof_propulsion: 0.0,
            pof_battery: pof,
            pof_energy: 0.0,
            pof_processor: 0.0,
            pof_comms: 0.0,
        }
    }

    fn security(status: TreeStatus) -> SecurityStatus {
        SecurityStatus {
            uav: UavId::new(1),
            tree: "ros message spoofing".into(),
            status,
            attack_path: if status == TreeStatus::RootReached {
                vec!["forge".into(), "goal".into()]
            } else {
                vec![]
            },
            detected_at: None,
        }
    }

    fn report(level: ReliabilityLevel, status: TreeStatus) -> DependabilityReport {
        DependabilityReport::assemble(
            UavId::new(1),
            SimTime::from_secs(10),
            estimate(0.05, level),
            vec![security(status)],
        )
    }

    #[test]
    fn verdict_matrix() {
        use DependabilityVerdict::*;
        assert_eq!(
            report(ReliabilityLevel::High, TreeStatus::Quiet).verdict,
            Dependable
        );
        assert_eq!(
            report(ReliabilityLevel::High, TreeStatus::InProgress).verdict,
            Degraded
        );
        assert_eq!(
            report(ReliabilityLevel::Medium, TreeStatus::Quiet).verdict,
            Degraded
        );
        assert_eq!(
            report(ReliabilityLevel::High, TreeStatus::RootReached).verdict,
            Compromised
        );
        assert_eq!(
            report(ReliabilityLevel::Low, TreeStatus::Quiet).verdict,
            Unsafe
        );
        assert_eq!(
            report(ReliabilityLevel::Low, TreeStatus::RootReached).verdict,
            Unsafe
        );
    }

    #[test]
    fn verdicts_are_ordered_best_first() {
        use DependabilityVerdict::*;
        assert!(Dependable < Degraded && Degraded < Compromised && Compromised < Unsafe);
    }

    #[test]
    fn interactions_explain_cross_domain_effects() {
        let r = report(ReliabilityLevel::Low, TreeStatus::RootReached);
        assert!(r.interactions[0].contains("must not assume healthy propulsion"));
        let r2 = report(ReliabilityLevel::High, TreeStatus::RootReached);
        assert!(r2.interactions[0].contains("untrusted"));
        let calm = report(ReliabilityLevel::High, TreeStatus::Quiet);
        assert!(calm.interactions.is_empty());
    }

    #[test]
    fn render_carries_path_and_notes() {
        let text = report(ReliabilityLevel::High, TreeStatus::RootReached).render();
        assert!(text.contains("compromised"));
        assert!(text.contains("forge -> goal"));
        assert!(text.contains("note:"));
        let quiet = report(ReliabilityLevel::High, TreeStatus::Quiet).render();
        assert!(quiet.contains("dependable"));
        assert!(!quiet.contains("path:"));
    }

    #[test]
    fn multiple_trees_worst_wins() {
        let r = DependabilityReport::assemble(
            UavId::new(2),
            SimTime::from_secs(1),
            estimate(0.01, ReliabilityLevel::High),
            vec![
                security(TreeStatus::Quiet),
                security(TreeStatus::RootReached),
            ],
        );
        assert_eq!(r.verdict, DependabilityVerdict::Compromised);
    }
}
