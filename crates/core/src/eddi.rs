//! The per-UAV executable EDDI runtime.
//!
//! One [`UavEddiRuntime`] per airframe hosts every runtime model the paper
//! distributes "across UAVs and the ground control station" (§III-A):
//! SafeDrones reliability, the SafeML distribution monitor, the
//! DeepKnowledge activation monitor, the SINADRA risk network and the
//! spoofing detector. Each tick it ingests telemetry plus one camera
//! frame's features and produces [`EddiOutputs`] — the runtime evidence
//! the ConSert network consumes.
//!
//! This is the **incremental fast path**: the SafeDrones Markov solver
//! memoizes its rate-matrix profile, the SafeML monitor presorts its
//! reference columns and fuses dissimilarity + verdict into one pass, and
//! the SINADRA network caches reduced factor products and memoizes full
//! assessments. Every layer is bit-identical to the naive computation —
//! [`crate::reference::ReferenceEddiRuntime`] keeps that naive path alive
//! and the conformance suite locksteps the two.

use sesame_conserts::catalog::UavEvidence;
use sesame_deepknowledge::nn::{Activation, Mlp};
use sesame_deepknowledge::transfer::TransferAnalyzer;
use sesame_deepknowledge::uncertainty::UncertaintyMonitor;
use sesame_safedrones::monitor::{
    ReliabilityEstimate, SafeDronesConfig, SafeDronesMonitor, MARKOV_SLOTS,
};
use sesame_safedrones::{ReliabilityLevel, SolveKey};
use sesame_safeml::monitor::{SafeMlConfig, SafeMlMonitor, SafeMlVerdict};
use sesame_security::spoof::{SpoofDetector, SpoofVerdict};
use sesame_sinadra::risk::{RiskAssessment, SarRiskModel, SituationInputs};
use sesame_sinadra::CachedSarRiskModel;
use sesame_types::geo::GeoPoint;
use sesame_types::telemetry::UavTelemetry;
use sesame_types::time::{SimDuration, SimTime};
use sesame_vision::features::{FeatureExtractor, SceneCondition};

/// Aggregated cache counters of one EDDI runtime: the SafeDrones solver
/// profile cache plus both SINADRA layers. The orchestrator folds the
/// per-UAV ConSert fingerprint cache on top and mirrors the totals as the
/// `eddi.cache.hit` / `eddi.cache.miss` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EddiCacheStats {
    /// Evaluations answered from a cache.
    pub hits: u64,
    /// Evaluations that ran the full computation.
    pub misses: u64,
}

/// Everything the EDDI runtime reports per tick.
#[derive(Debug, Clone)]
pub struct EddiOutputs {
    /// SafeDrones reliability report.
    pub reliability: ReliabilityEstimate,
    /// SafeML verdict on the perception stream.
    pub safeml_verdict: SafeMlVerdict,
    /// SafeML dissimilarity in `[0, 1]`.
    pub safeml_uncertainty: f64,
    /// DeepKnowledge runtime uncertainty in `[0, 1]`.
    pub dk_uncertainty: f64,
    /// Combined perception uncertainty (the §V-B quantity: the level "from
    /// the output of SafeML, DeepKnowledge, and SINADRA").
    pub combined_uncertainty: f64,
    /// SINADRA risk assessment.
    pub risk: RiskAssessment,
    /// Spoofing verdict on the current GPS fix.
    pub spoof: SpoofVerdict,
}

/// The intermediate state of a split EDDI tick (see
/// [`UavEddiRuntime::begin_tick`]): the telemetry time step and, when the
/// step is positive, the solve identities of the pending SafeDrones
/// Markov advance.
#[derive(Debug, Clone)]
pub struct TickPlan {
    dt: SimDuration,
    keys: Option<[SolveKey; MARKOV_SLOTS]>,
}

impl TickPlan {
    /// The telemetry time step of this tick.
    pub fn dt(&self) -> SimDuration {
        self.dt
    }

    /// The per-slot solve keys, `None` when `dt == 0` (no advance runs).
    pub fn solve_keys(&self) -> Option<&[SolveKey; MARKOV_SLOTS]> {
        self.keys.as_ref()
    }
}

/// The per-UAV runtime. See the crate docs for the integration loop.
#[derive(Debug)]
pub struct UavEddiRuntime {
    safedrones: SafeDronesMonitor,
    safeml: SafeMlMonitor,
    dk_model: Mlp,
    dk: UncertaintyMonitor,
    sinadra: CachedSarRiskModel,
    spoof: SpoofDetector,
    features: FeatureExtractor,
    /// Reused frame buffer for [`FeatureExtractor::extract_into`], so
    /// steady-state ticks draw the camera frame without heap traffic.
    frame: Vec<f64>,
    last_time: Option<SimTime>,
    last_outputs: Option<EddiOutputs>,
}

impl UavEddiRuntime {
    /// Builds the runtime: draws the SafeML reference set and runs the
    /// DeepKnowledge design-time analysis on a freshly trained network.
    pub fn new(seed: u64, safedrones: SafeDronesConfig, home: GeoPoint) -> Self {
        let mut features = FeatureExtractor::new(8, seed);
        let reference = features.reference_set(200);

        // Train a small detector head on the in-domain features so the
        // DeepKnowledge analysis runs on a genuinely trained model.
        let mut dk_model = Mlp::new(&[8, 12, 1], Activation::Tanh, seed ^ 0xD);
        for epoch in 0..3 {
            for (i, row) in reference.iter().enumerate() {
                if (i + epoch) % 2 == 0 {
                    let label = f64::from(row.iter().sum::<f64>() > 0.0);
                    dk_model.train_step(row, &[label], 0.05);
                }
            }
        }
        // Probe shift for TK selection: the high-altitude condition.
        let mut probe_fx = FeatureExtractor::new(8, seed ^ 0x5117);
        let shifted: Vec<Vec<f64>> = (0..200)
            .map(|_| {
                probe_fx.extract(&SceneCondition {
                    altitude_m: 60.0,
                    visibility: 1.0,
                })
            })
            .collect();
        let analyzer = TransferAnalyzer::analyze(&dk_model, &reference, &shifted, 0.5);
        let dk = UncertaintyMonitor::new(analyzer, 40);

        let safeml = SafeMlMonitor::new(reference, SafeMlConfig::default())
            .expect("generated reference set is well-formed");

        let mut safedrones = SafeDronesMonitor::new(safedrones);
        safedrones.enable_solver_cache();
        UavEddiRuntime {
            safedrones,
            safeml,
            dk_model,
            dk,
            sinadra: CachedSarRiskModel::new(SarRiskModel::new()),
            spoof: SpoofDetector::new(home, 20.0),
            features,
            frame: Vec::new(),
            last_time: None,
            last_outputs: None,
        }
    }

    /// Sets the remaining-mission horizon for the energy-risk term.
    pub fn set_remaining_mission(&mut self, remaining: SimDuration) {
        self.safedrones.set_remaining_mission(remaining);
    }

    /// One runtime tick: ingest telemetry, sample one camera frame under
    /// `scene`, run every monitor.
    ///
    /// Exactly [`UavEddiRuntime::begin_tick`] followed by
    /// [`UavEddiRuntime::finish_tick`] with no primed solves — the split
    /// and the monolith are the same computation.
    pub fn tick(&mut self, telemetry: &UavTelemetry, scene: &SceneCondition) -> EddiOutputs {
        let plan = self.begin_tick(telemetry);
        self.finish_tick(telemetry, scene, plan, [None; MARKOV_SLOTS])
    }

    /// First half of a split tick: computes the telemetry time step,
    /// ingests the snapshot into SafeDrones (rate updates), and derives
    /// the solve identities of the pending Markov advance. A fleet
    /// scheduler batches the keys across UAVs, solves each distinct key
    /// once, and completes every runtime with
    /// [`UavEddiRuntime::finish_tick`].
    pub fn begin_tick(&mut self, telemetry: &UavTelemetry) -> TickPlan {
        let dt = match self.last_time {
            Some(prev) => telemetry.time.since(prev),
            None => SimDuration::ZERO,
        };
        self.last_time = Some(telemetry.time);
        self.safedrones.ingest(telemetry);
        let keys = (dt > SimDuration::ZERO).then(|| self.safedrones.solve_keys(dt));
        TickPlan { dt, keys }
    }

    /// The distribution the given Markov slot would adopt for the pending
    /// advance of step `dt` (see
    /// [`SafeDronesMonitor::solve_dist`]). Pure; used on one
    /// representative runtime per distinct solve key.
    pub fn solve_dist(&self, slot: usize, dt: SimDuration) -> Vec<f64> {
        self.safedrones.solve_dist(slot, dt)
    }

    /// Second half of a split tick: advances SafeDrones (adopting any
    /// primed per-slot distributions) and runs the perception, risk and
    /// security monitors. With `primes = [None; MARKOV_SLOTS]` this is
    /// bit-identical to the tail of [`UavEddiRuntime::tick`].
    pub fn finish_tick(
        &mut self,
        telemetry: &UavTelemetry,
        scene: &SceneCondition,
        plan: TickPlan,
        primes: [Option<&[f64]>; MARKOV_SLOTS],
    ) -> EddiOutputs {
        if plan.dt > SimDuration::ZERO {
            self.safedrones.advance_primed(plan.dt, primes);
        }
        let reliability = self.safedrones.estimate();

        // Perception monitors share one frame. `assessment()` computes the
        // dissimilarity once over presorted reference columns and derives
        // the verdict from it — bit-identical to the naive accessor pair.
        self.features.extract_into(scene, &mut self.frame);
        // Invariant: the monitor was constructed over this extractor's
        // reference set, so widths agree by construction. A violation
        // unwinds into the orchestrator's per-UAV catch and quarantines
        // this engine rather than aborting the fleet tick.
        self.safeml
            .push_sample(&self.frame)
            .expect("extractor and monitor share the feature width");
        let (safeml_uncertainty, safeml_verdict) = self.safeml.assessment();
        let dk_uncertainty = self.dk.assess(&self.dk_model, &self.frame);
        let combined_uncertainty = safeml_uncertainty.max(dk_uncertainty);

        // SINADRA folds the uncertainties into risk.
        let risk = self.sinadra.assess(&SituationInputs {
            detection_uncertainty: combined_uncertainty,
            altitude_high: telemetry.true_position.alt_m > 40.0,
            visibility_poor: scene.visibility < 0.7,
            person_likely: true,
            time_pressure_high: true,
        });

        // Security: innovation check on the reported fix.
        let spoof = self
            .spoof
            .check(&telemetry.gps.position, telemetry.velocity, telemetry.time);

        let outputs = EddiOutputs {
            reliability,
            safeml_verdict,
            safeml_uncertainty,
            dk_uncertainty,
            combined_uncertainty,
            risk,
            spoof,
        };
        self.last_outputs = Some(outputs.clone());
        outputs
    }

    /// The last tick's outputs.
    pub fn last_outputs(&self) -> Option<&EddiOutputs> {
        self.last_outputs.as_ref()
    }

    /// Builds the ConSert evidence snapshot from the latest outputs plus
    /// fleet-level facts the runtime cannot see itself (attack detection
    /// comes from the Security EDDI scripts; neighbour availability from
    /// the platform).
    pub fn evidence(
        &self,
        telemetry: &UavTelemetry,
        attack_detected: bool,
        neighbors_available: bool,
    ) -> UavEvidence {
        let out = self.last_outputs.as_ref();
        let level = out.map(|o| o.reliability.level);
        let safeml_ok = out
            .map(|o| o.safeml_verdict != SafeMlVerdict::Reject)
            .unwrap_or(true);
        let spoofed = out.map(|o| o.spoof.spoofed).unwrap_or(false);
        UavEvidence {
            gps_usable: telemetry.gps.is_usable() && !spoofed,
            no_attack: !attack_detected && !spoofed,
            vision_healthy: telemetry.vision_health > 0.5,
            safeml_ok,
            comm_ok: telemetry.link_quality > 0.4,
            neighbors_available,
            assistant_available: false,
            rel_high: level == Some(ReliabilityLevel::High),
            rel_med: level == Some(ReliabilityLevel::Medium),
            rel_low: level == Some(ReliabilityLevel::Low),
        }
    }

    /// The SafeDrones monitor (for experiment inspection).
    pub fn safedrones(&self) -> &SafeDronesMonitor {
        &self.safedrones
    }

    /// Aggregated cache counters: SafeDrones solver profile cache plus
    /// both SINADRA cache layers.
    pub fn cache_stats(&self) -> EddiCacheStats {
        let solver = self.safedrones.solver_cache_stats();
        let bn = self.sinadra.stats();
        EddiCacheStats {
            hits: solver.hits + bn.hits(),
            misses: solver.misses + bn.misses(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use sesame_types::ids::UavId;

    fn home() -> GeoPoint {
        GeoPoint::new(35.0, 33.0, 0.0)
    }

    fn telemetry(t: u64, alt: f64) -> UavTelemetry {
        let mut tel =
            UavTelemetry::nominal(UavId::new(1), SimTime::from_secs(t), home().with_alt(alt));
        tel.gps.position = tel.true_position;
        tel
    }

    fn runtime() -> UavEddiRuntime {
        UavEddiRuntime::new(7, SafeDronesConfig::default(), home())
    }

    #[test]
    fn nominal_low_altitude_is_calm() {
        let mut rt = runtime();
        rt.set_remaining_mission(SimDuration::from_secs(600));
        let scene = SceneCondition {
            altitude_m: 10.0,
            visibility: 1.0,
        };
        let mut last = None;
        for t in 0..60 {
            last = Some(rt.tick(&telemetry(t, 10.0), &scene));
        }
        let out = last.unwrap();
        assert!(out.reliability.pof < 0.05);
        assert_eq!(out.reliability.level, ReliabilityLevel::High);
        assert!(
            out.combined_uncertainty < 0.5,
            "u = {}",
            out.combined_uncertainty
        );
        assert!(!out.spoof.spoofed);
        assert!(!out.risk.rescan_advised);
    }

    #[test]
    fn high_altitude_exceeds_uncertainty_threshold() {
        // The §V-B condition: scanning from 60 m drives the combined
        // uncertainty above 0.9.
        let mut rt = runtime();
        let scene = SceneCondition {
            altitude_m: 60.0,
            visibility: 1.0,
        };
        let mut out = None;
        for t in 0..60 {
            out = Some(rt.tick(&telemetry(t, 60.0), &scene));
        }
        let out = out.unwrap();
        assert!(
            out.combined_uncertainty > 0.9,
            "u = {}",
            out.combined_uncertainty
        );
        assert!(out.risk.rescan_advised);
    }

    #[test]
    fn descending_lowers_uncertainty_into_the_75_band() {
        let mut rt = runtime();
        let high = SceneCondition {
            altitude_m: 60.0,
            visibility: 1.0,
        };
        for t in 0..60 {
            rt.tick(&telemetry(t, 60.0), &high);
        }
        let low = SceneCondition {
            altitude_m: 25.0,
            visibility: 1.0,
        };
        let mut out = None;
        for t in 60..140 {
            out = Some(rt.tick(&telemetry(t, 25.0), &low));
        }
        let u = out.unwrap().combined_uncertainty;
        assert!((0.55..0.9).contains(&u), "post-descent uncertainty {u}");
    }

    /// The split tick (begin → cross-runtime solve → finish with primes)
    /// tracks the monolithic tick bit for bit, including cache counters.
    #[test]
    fn split_tick_with_priming_matches_monolithic_tick() {
        let mut mono = runtime();
        let mut split = runtime();
        let scene = SceneCondition {
            altitude_m: 30.0,
            visibility: 0.9,
        };
        for t in 0..50u64 {
            let mut tel = telemetry(t, 30.0);
            if t >= 25 {
                tel.battery_soc = 0.4;
                tel.battery_temp_c = 60.0;
            }
            let a = mono.tick(&tel, &scene);
            let plan = split.begin_tick(&tel);
            let primes: Vec<Option<Vec<f64>>> = match plan.solve_keys() {
                // Solve on the *monolithic* runtime's twin state is not
                // available pre-advance, so solve on the split runtime
                // itself — exactly what a fleet scheduler does on the
                // class representative.
                Some(_) => (0..MARKOV_SLOTS)
                    .map(|s| Some(split.solve_dist(s, plan.dt())))
                    .collect(),
                None => vec![None; MARKOV_SLOTS],
            };
            let prime_refs = [
                primes[0].as_deref(),
                primes[1].as_deref(),
                primes[2].as_deref(),
            ];
            let b = split.finish_tick(&tel, &scene, plan, prime_refs);
            assert_eq!(
                a.reliability.pof.to_bits(),
                b.reliability.pof.to_bits(),
                "pof diverged at t={t}"
            );
            assert_eq!(
                a.combined_uncertainty.to_bits(),
                b.combined_uncertainty.to_bits()
            );
            assert_eq!(a.spoof.spoofed, b.spoof.spoofed);
        }
        assert_eq!(mono.cache_stats(), split.cache_stats());
    }

    #[test]
    fn evidence_reflects_attack_and_reliability() {
        let mut rt = runtime();
        let scene = SceneCondition::training();
        let tel = telemetry(1, 10.0);
        rt.tick(&tel, &scene);
        let calm = rt.evidence(&tel, false, true);
        assert!(calm.gps_usable && calm.no_attack && calm.rel_high);
        let attacked = rt.evidence(&tel, true, true);
        assert!(!attacked.no_attack);
        assert!(attacked.gps_usable, "fix itself is still usable");
    }

    #[test]
    fn battery_fault_escalates_reliability() {
        let mut cfg = SafeDronesConfig::default();
        cfg.battery.activation_energy_ev = 1.0;
        let mut rt = UavEddiRuntime::new(7, cfg, home());
        let scene = SceneCondition::training();
        rt.tick(&telemetry(0, 30.0), &scene);
        let mut tel = telemetry(1, 30.0);
        tel.battery_soc = 0.4;
        tel.battery_temp_c = 60.0;
        rt.tick(&tel, &scene);
        let mut level = ReliabilityLevel::High;
        for t in 2..600 {
            let mut tel = telemetry(t, 30.0);
            tel.battery_soc = 0.4;
            tel.battery_temp_c = 60.0;
            level = rt.tick(&tel, &scene).reliability.level;
            if level == ReliabilityLevel::Low {
                break;
            }
        }
        assert_eq!(level, ReliabilityLevel::Low);
    }

    #[test]
    fn spoofed_fix_is_flagged_and_poisons_evidence() {
        let mut rt = runtime();
        let scene = SceneCondition::training();
        rt.tick(&telemetry(0, 30.0), &scene);
        let mut last_tel = telemetry(0, 30.0);
        for t in 1..12 {
            let mut tel = telemetry(t, 30.0);
            // The receiver reports a position dragged 40 m/s north.
            tel.gps.position = home().destination(0.0, 40.0 * t as f64).with_alt(30.0);
            let out = rt.tick(&tel, &scene);
            last_tel = tel;
            if out.spoof.spoofed {
                break;
            }
        }
        let out = rt.last_outputs().unwrap();
        assert!(out.spoof.spoofed, "drag must be detected");
        let ev = rt.evidence(&last_tel, false, true);
        assert!(!ev.gps_usable, "spoofed fix must not count as usable");
        assert!(!ev.no_attack);
    }
}
