//! Fleet composition and shard policy — the `FleetSpec` API.
//!
//! The paper demonstrates three UAVs; the platform is built to fly
//! hundreds. [`FleetSpec`] describes a fleet as an ordered list of
//! [`FleetGroup`]s — each a run of UAVs sharing one [`UavProfile`] — plus
//! a [`ShardPolicy`] that partitions the per-UAV tick work across worker
//! threads. UAVs in a group share airframe parameters and therefore
//! (initially) identical Markov rate matrices, which the fleet-wide
//! batched EDDI solve exploits: one CTMC solve per distinct
//! [`sesame_safedrones::SolveKey`] serves every UAV in the class.
//!
//! Sharding never changes results. Every partition — including
//! [`ShardPolicy::Serial`] — produces bit-identical series, events,
//! decisions and (wall-clock-free) metrics; the policy only chooses how
//! much of the tick runs concurrently.
//!
//! # Examples
//!
//! ```
//! use sesame_core::fleet::{FleetSpec, ShardPolicy, UavProfile};
//!
//! // 3 default quads plus 2 hexacopters tolerating one motor loss,
//! // ticked in 2 shards.
//! let spec = FleetSpec::builder()
//!     .uavs(3)
//!     .group(2, UavProfile::default().motors(6, 1))
//!     .shard_policy(ShardPolicy::Fixed { shards: 2 })
//!     .build();
//! assert_eq!(spec.total(), 5);
//! ```

use std::ops::Range;

/// Per-UAV overrides applied on top of the platform-wide defaults
/// (`motor_count`, `tolerated_motor_failures`, `battery_hover_drain` of
/// [`crate::orchestrator::PlatformConfig`]). `None` inherits the default.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UavProfile {
    /// Motors per airframe (4, 6 or 8); `None` inherits the platform default.
    pub motor_count: Option<usize>,
    /// Motor losses tolerated through reconfiguration.
    pub tolerated_motor_failures: Option<usize>,
    /// Battery hover drain per second.
    pub battery_hover_drain: Option<f64>,
}

impl UavProfile {
    /// Overrides motors per airframe and the tolerated motor losses.
    pub fn motors(mut self, count: usize, tolerated_failures: usize) -> Self {
        self.motor_count = Some(count);
        self.tolerated_motor_failures = Some(tolerated_failures);
        self
    }

    /// Overrides the battery hover drain per second.
    pub fn battery_hover_drain(mut self, drain: f64) -> Self {
        self.battery_hover_drain = Some(drain);
        self
    }

    /// Fills every `None` from the platform-wide defaults.
    pub fn resolve(&self, defaults: &ResolvedUavProfile) -> ResolvedUavProfile {
        ResolvedUavProfile {
            motor_count: self.motor_count.unwrap_or(defaults.motor_count),
            tolerated_motor_failures: self
                .tolerated_motor_failures
                .unwrap_or(defaults.tolerated_motor_failures),
            battery_hover_drain: self
                .battery_hover_drain
                .unwrap_or(defaults.battery_hover_drain),
        }
    }
}

/// A fully-resolved per-UAV profile (no inherited fields left).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedUavProfile {
    /// Motors per airframe.
    pub motor_count: usize,
    /// Motor losses tolerated through reconfiguration.
    pub tolerated_motor_failures: usize,
    /// Battery hover drain per second.
    pub battery_hover_drain: f64,
}

/// A run of `count` consecutive UAVs sharing one profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetGroup {
    /// UAVs in this group.
    pub count: usize,
    /// The shared profile.
    pub profile: UavProfile,
}

/// How the per-UAV tick work is partitioned across worker threads.
///
/// Outputs are invariant under the policy: the shard executor merges
/// per-shard results in fleet order, so any shard count — on any core
/// count — reproduces the serial run bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// Everything on the caller's thread (the reference path).
    Serial,
    /// Exactly `shards` shards. More shards than UAVs leaves the excess
    /// empty; `0` is clamped to `1`.
    Fixed {
        /// Number of shards.
        shards: usize,
    },
    /// Serial below 16 UAVs, then roughly one shard per 32 UAVs, capped
    /// by the machine's available parallelism.
    #[default]
    Auto,
}

impl ShardPolicy {
    /// Resolves the policy to a concrete shard count for `fleet_size`
    /// UAVs. `1` means serial execution.
    pub fn shard_count(&self, fleet_size: usize) -> usize {
        match self {
            ShardPolicy::Serial => 1,
            ShardPolicy::Fixed { shards } => (*shards).max(1),
            ShardPolicy::Auto => {
                if fleet_size < 16 {
                    1
                } else {
                    let cores = std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1);
                    fleet_size.div_ceil(32).clamp(1, cores.max(1))
                }
            }
        }
    }
}

/// Declarative fleet description: ordered profile groups plus the shard
/// policy. Replaces the flat `uav_count` knob of
/// [`crate::orchestrator::PlatformConfig`]; construct via
/// [`FleetSpec::uniform`] or [`FleetSpec::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    groups: Vec<FleetGroup>,
    shard: ShardPolicy,
}

impl Default for FleetSpec {
    /// The paper's three-UAV demonstration fleet.
    fn default() -> Self {
        FleetSpec::uniform(3)
    }
}

impl FleetSpec {
    /// `count` UAVs with the default profile under the [`ShardPolicy::Auto`]
    /// policy — the exact semantics of the retired `uav_count` knob.
    pub fn uniform(count: usize) -> Self {
        FleetSpec {
            groups: vec![FleetGroup {
                count,
                profile: UavProfile::default(),
            }],
            shard: ShardPolicy::Auto,
        }
    }

    /// Starts a fluent builder with no groups and the default policy.
    pub fn builder() -> FleetSpecBuilder {
        FleetSpecBuilder {
            groups: Vec::new(),
            shard: ShardPolicy::default(),
        }
    }

    /// Total fleet size across every group.
    pub fn total(&self) -> usize {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// The profile groups, in fleet order.
    pub fn groups(&self) -> &[FleetGroup] {
        &self.groups
    }

    /// The shard policy.
    pub fn shard_policy(&self) -> ShardPolicy {
        self.shard
    }

    /// Expands the groups into one resolved profile per UAV, in fleet
    /// order, filling inherited fields from `defaults`.
    pub fn resolved(&self, defaults: &ResolvedUavProfile) -> Vec<ResolvedUavProfile> {
        let mut out = Vec::with_capacity(self.total());
        for g in &self.groups {
            let p = g.profile.resolve(defaults);
            out.extend(std::iter::repeat_n(p, g.count));
        }
        out
    }
}

/// Fluent builder for [`FleetSpec`].
#[derive(Debug, Clone)]
pub struct FleetSpecBuilder {
    groups: Vec<FleetGroup>,
    shard: ShardPolicy,
}

impl FleetSpecBuilder {
    /// Appends a group of `count` UAVs sharing `profile`.
    pub fn group(mut self, count: usize, profile: UavProfile) -> Self {
        self.groups.push(FleetGroup { count, profile });
        self
    }

    /// Appends a group of `count` default-profile UAVs.
    pub fn uavs(self, count: usize) -> Self {
        self.group(count, UavProfile::default())
    }

    /// Sets the shard policy.
    pub fn shard_policy(mut self, policy: ShardPolicy) -> Self {
        self.shard = policy;
        self
    }

    /// Finishes the spec. Composition errors (an empty fleet, an invalid
    /// motor count) surface in
    /// [`crate::orchestrator::PlatformConfigBuilder::build`], which sees
    /// the platform-wide defaults needed to resolve the profiles.
    pub fn build(self) -> FleetSpec {
        FleetSpec {
            groups: self.groups,
            shard: self.shard,
        }
    }
}

/// Splits `0..n` into `shards` contiguous ranges whose lengths differ by
/// at most one (the first `n % shards` ranges get the extra element).
/// More shards than elements leaves the tail ranges empty.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.max(1);
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEFAULTS: ResolvedUavProfile = ResolvedUavProfile {
        motor_count: 4,
        tolerated_motor_failures: 0,
        battery_hover_drain: 0.001,
    };

    #[test]
    fn uniform_matches_default() {
        assert_eq!(FleetSpec::default(), FleetSpec::uniform(3));
        assert_eq!(FleetSpec::uniform(7).total(), 7);
        assert_eq!(FleetSpec::uniform(0).total(), 0);
    }

    #[test]
    fn builder_composes_groups_in_order() {
        let spec = FleetSpec::builder()
            .uavs(2)
            .group(3, UavProfile::default().motors(6, 1))
            .shard_policy(ShardPolicy::Fixed { shards: 2 })
            .build();
        assert_eq!(spec.total(), 5);
        assert_eq!(spec.shard_policy(), ShardPolicy::Fixed { shards: 2 });
        let resolved = spec.resolved(&DEFAULTS);
        assert_eq!(resolved.len(), 5);
        assert_eq!(resolved[0].motor_count, 4);
        assert_eq!(resolved[1], DEFAULTS);
        assert_eq!(resolved[2].motor_count, 6);
        assert_eq!(resolved[4].tolerated_motor_failures, 1);
        assert_eq!(
            resolved[4].battery_hover_drain,
            DEFAULTS.battery_hover_drain
        );
    }

    #[test]
    fn profile_overrides_are_selective() {
        let p = UavProfile::default().battery_hover_drain(0.5);
        let r = p.resolve(&DEFAULTS);
        assert_eq!(r.motor_count, 4);
        assert_eq!(r.battery_hover_drain, 0.5);
    }

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for (n, shards) in [(0, 1), (1, 1), (3, 8), (50, 4), (50, 7), (500, 16)] {
            let ranges = shard_ranges(n, shards);
            assert_eq!(ranges.len(), shards);
            let mut seen = 0;
            for r in &ranges {
                assert_eq!(r.start, seen, "contiguous at n={n} shards={shards}");
                seen = r.end;
            }
            assert_eq!(seen, n);
            let (min, max) = ranges.iter().fold((usize::MAX, 0), |(lo, hi), r| {
                (lo.min(r.len()), hi.max(r.len()))
            });
            assert!(max - min <= 1, "balanced at n={n} shards={shards}");
        }
    }

    #[test]
    fn shard_ranges_with_more_shards_than_uavs_leaves_empties() {
        let ranges = shard_ranges(3, 8);
        assert_eq!(ranges.iter().filter(|r| r.is_empty()).count(), 5);
        assert_eq!(ranges.iter().map(Range::len).sum::<usize>(), 3);
    }

    #[test]
    fn shard_policy_resolution() {
        assert_eq!(ShardPolicy::Serial.shard_count(500), 1);
        assert_eq!(ShardPolicy::Fixed { shards: 0 }.shard_count(10), 1);
        assert_eq!(ShardPolicy::Fixed { shards: 9 }.shard_count(3), 9);
        assert_eq!(ShardPolicy::Auto.shard_count(3), 1);
        assert_eq!(ShardPolicy::Auto.shard_count(15), 1);
        assert!(ShardPolicy::Auto.shard_count(64) >= 1);
    }
}
