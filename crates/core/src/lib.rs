//! SESAME integration layer — the multi-UAV control platform with the
//! EDDI runtime.
//!
//! This crate assembles every technology of the paper into the running
//! system of §IV: the simulated fleet (`sesame-uav-sim`), the ROS-like bus
//! and MQTT-like broker (`sesame-middleware`), the Safety EDDI
//! (SafeDrones + SafeML + DeepKnowledge + SINADRA), the Security EDDI
//! (IDS + attack trees), collaborative localization, the SAR mission
//! layer, and the ConSert network that folds all runtime evidence into
//! per-UAV and mission-level decisions.
//!
//! * [`eddi`] — the per-UAV executable EDDI runtime (the incremental
//!   fast path);
//! * [`reference`] — the naive reference runtime the fast path is
//!   lockstep-verified against;
//! * [`platform`] — UAV manager, task manager, database manager, ground
//!   control station (the five-layer architecture of §IV-A, with the GUIs
//!   replaced by headless snapshots — see DESIGN.md);
//! * [`orchestrator`] — the closed loop: simulate → sense → publish →
//!   monitor → certify → decide → actuate;
//! * [`fleet`] — fleet composition ([`fleet::FleetSpec`]: per-profile
//!   UAV groups) and the shard policy that partitions the tick;
//! * [`shard`] — the deterministic std-only worker pool the sharded
//!   tick and the bench sweeps share (merge in item order, never
//!   completion order);
//! * [`scenario`] — declarative scenario construction (SESAME on/off,
//!   fault, communication-fault and attack schedules);
//! * [`supervision`] — the per-UAV health state machine
//!   (`Nominal → Degraded → SafeFallback`, plus the containment layer's
//!   `Quarantined`) fed by the telemetry-staleness watchdog and the GCS
//!   heartbeat monitor;
//! * [`containment`] — crash containment: the `UavFault` vocabulary,
//!   the scheduled compute-fault injector (panics, NaN/Inf telemetry,
//!   solver stalls) and the logical tick watchdog;
//! * [`checkpoint`] — periodic copy-on-write campaign checkpoints and
//!   the digest-verified `recover(checkpoint, log)` replay path;
//! * [`chaos`] — the seeded chaos-campaign runner that sweeps randomized
//!   fault schedules over full scenario runs and checks robustness
//!   invariants;
//! * [`experiments`] — the runners that regenerate every §V result
//!   (Fig. 5, the SAR-accuracy numbers, Fig. 6, Fig. 7).
//!
//! # Examples
//!
//! ```
//! use sesame_core::scenario::ScenarioBuilder;
//!
//! let outcome = ScenarioBuilder::new(42).build().run();
//! assert!(outcome.metrics.mission_completed_fraction > 0.9);
//! ```

pub mod chaos;
pub mod checkpoint;
pub mod coengineering;
pub mod containment;
pub mod eddi;
pub mod experiments;
pub mod fleet;
pub mod orchestrator;
pub mod platform;
pub mod reference;
pub mod scenario;
pub mod shard;
pub mod supervision;

pub use chaos::{CampaignConfig, CampaignReport, ChaosCampaign};
pub use checkpoint::{Checkpoint, RecoverError};
pub use containment::{ComputeFaultKind, ComputeFaultPlane, FaultPhase, UavFault};
pub use eddi::{EddiCacheStats, EddiOutputs, UavEddiRuntime};
pub use fleet::{FleetSpec, ShardPolicy, UavProfile};
pub use orchestrator::{Platform, PlatformConfig};
pub use reference::ReferenceEddiRuntime;
pub use scenario::{Scenario, ScenarioBuilder, ScenarioOutcome};
pub use supervision::{HealthState, SupervisionConfig};
