// Index-based loops are used throughout the tick: they read `telemetries`
// while mutating disjoint `self` fields, which iterator adaptors cannot
// express without splitting borrows.
#![allow(clippy::needless_range_loop)]

//! The platform orchestrator: simulate → sense → publish → monitor →
//! certify → decide → actuate.
//!
//! [`Platform`] wires the simulated fleet to the bus, the IDS/broker
//! pipeline, the per-UAV EDDI runtimes, the ConSert networks and the
//! task manager, and closes the loop every 100 ms tick. With
//! `sesame_enabled = false` it degrades to the paper's baseline: no
//! monitors, no certificates, no IDS — faults are handled by the naive
//! "abort on first symptom" policy of §V-A and attacks are not handled at
//! all.

use crate::containment::{
    panic_message, ComputeFaultPlane, FaultPhase, QuarantineCell, TickWatchdog, UavFault,
};
use crate::eddi::{EddiCacheStats, EddiOutputs, TickPlan, UavEddiRuntime};
use crate::fleet::{shard_ranges, FleetSpec, ResolvedUavProfile};
use crate::platform::database::DatabaseManager;
use crate::platform::gcs::{GroundControlStation, StatusSnapshot, UavStatusLine};
use crate::platform::task_manager::TaskManager;
use crate::platform::uav_manager::UavManager;
use crate::reference::ReferenceEddiRuntime;
use crate::supervision::{HealthState, HealthTransition, SupervisionConfig, UavSupervisor};
use sesame_collab_loc::agent::CollaborativeAgent;
use sesame_collab_loc::session::{CollabSession, LandingGuidance};
use sesame_conserts::catalog::{
    certified_navigation_accuracy_m, decide_mission, evaluate_uav, uav_consert_network,
    MissionDecision, UavAction, UavEvidence,
};
use sesame_conserts::engine::ConsertNetwork;
use sesame_conserts::incremental::{ConsertDecision, IncrementalConsertNetwork};
use sesame_middleware::auth::{AuthKey, MessageAuth};
use sesame_middleware::broker::AlertBroker;
use sesame_middleware::bus::{MessageBus, Subscription};
use sesame_middleware::chaos::CommFaultPlane;
use sesame_middleware::message::{Message, Payload};
use sesame_obs::span::phase;
use sesame_obs::{MetricsRegistry, MetricsSnapshot, TickSpan, TraceEvent, TraceLog};
use sesame_safedrones::markov::{BatchSolveScratch, ProfileKey};
use sesame_safedrones::monitor::SafeDronesConfig;
use sesame_safedrones::monitor::SafeDronesMonitor;
use sesame_safedrones::{SolveKey, MARKOV_SLOTS};
use sesame_sar::accuracy::{AltitudeDecision, AltitudePolicy};
use sesame_security::catalog as attack_catalog;
use sesame_security::eddi::SecurityEddi;
use sesame_security::ids::{Ids, IdsConfig};
use sesame_sinadra::risk::{SeparationInputs, SeparationRiskModel};
use sesame_types::arena::ScratchArena;
use sesame_types::events::{EventLog, Severity, SystemEvent};
use sesame_types::geo::GeoPoint;
use sesame_types::ids::UavId;
use sesame_types::inline::InlineVec;
use sesame_types::telemetry::{FlightMode, UavTelemetry};
use sesame_types::time::{SimDuration, SimTime};
use sesame_uav_sim::autopilot::FlightCommand;
use sesame_uav_sim::geofence::{FenceStatus, Geofence, GeofenceMonitor};
use sesame_uav_sim::sim::{Simulator, UavConfig, UavHandle};
use sesame_uav_sim::world::World;
use sesame_vision::detector::PersonDetector;
use sesame_vision::features::SceneCondition;
use std::collections::{BTreeMap, HashMap};
use std::ops::Range;
use std::sync::Arc;

/// Platform configuration.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Whether the SESAME technologies run (monitors, ConSerts, IDS,
    /// signing, CL). `false` = the paper's baseline.
    pub sesame_enabled: bool,
    /// Fleet composition and shard policy (the paper demonstrates three
    /// uniform UAVs; the platform scales to hundreds — see
    /// [`crate::fleet`]).
    pub fleet: FleetSpec,
    /// Initial scan altitude, metres.
    pub scan_altitude_m: f64,
    /// Whether the §V-B altitude-adaptation policy is active.
    pub altitude_adaptation: bool,
    /// SafeDrones configuration.
    pub safedrones: SafeDronesConfig,
    /// Search-area extent east, metres.
    pub area_width_m: f64,
    /// Search-area extent north, metres.
    pub area_height_m: f64,
    /// Ground-truth persons in the area.
    pub person_count: usize,
    /// Master seed.
    pub seed: u64,
    /// Baseline battery-swap duration at base (§V-A: 60 s).
    pub battery_swap: SimDuration,
    /// Battery hover drain per second (scenario calibration knob).
    pub battery_hover_drain: f64,
    /// World visibility in [0, 1] (1 = clear day).
    pub visibility: f64,
    /// Motors per airframe (4, 6 or 8).
    pub motor_count: usize,
    /// Motor losses each airframe tolerates through reconfiguration.
    pub tolerated_motor_failures: usize,
    /// Degraded-mode supervision: watchdog windows, heartbeat period and
    /// command retry policy (see [`crate::supervision`]).
    pub supervision: SupervisionConfig,
    /// Whether the incremental EDDI fast path runs (solver profile cache,
    /// presorted SafeML, SINADRA factor cache, attack-tree indexing,
    /// fingerprint-gated ConSerts). `false` selects the naive reference
    /// runtimes — bit-identical results, recomputed from scratch each
    /// tick. On by default; the conformance suite flips it off.
    pub eddi_fast_path: bool,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            sesame_enabled: true,
            fleet: FleetSpec::default(),
            scan_altitude_m: 30.0,
            altitude_adaptation: false,
            safedrones: SafeDronesConfig::default(),
            area_width_m: 400.0,
            area_height_m: 250.0,
            person_count: 6,
            seed: 42,
            battery_swap: SimDuration::from_secs(60),
            battery_hover_drain: 0.001,
            visibility: 1.0,
            motor_count: 4,
            tolerated_motor_failures: 0,
            supervision: SupervisionConfig::default(),
            eddi_fast_path: true,
        }
    }
}

impl PlatformConfig {
    /// Starts a fluent, validated builder seeded with the defaults.
    pub fn builder() -> PlatformConfigBuilder {
        PlatformConfigBuilder {
            config: PlatformConfig::default(),
        }
    }

    /// The platform-wide per-UAV defaults a [`crate::fleet::UavProfile`]
    /// inherits where it leaves fields unset.
    pub fn fleet_defaults(&self) -> ResolvedUavProfile {
        ResolvedUavProfile {
            motor_count: self.motor_count,
            tolerated_motor_failures: self.tolerated_motor_failures,
            battery_hover_drain: self.battery_hover_drain,
        }
    }

    /// Checks the configuration describes a buildable platform — the
    /// same rules [`PlatformConfigBuilder::build`] enforces, callable on
    /// a hand- or compiler-assembled config (the scenario DSL validates
    /// every compiled scenario through here before it ever reaches
    /// [`Platform::new`]).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.fleet.total() == 0 {
            return Err(ConfigError::NoUavs);
        }
        if self.scan_altitude_m <= 0.0 || !self.scan_altitude_m.is_finite() {
            return Err(ConfigError::NonPositiveAltitude);
        }
        if self.area_width_m <= 0.0
            || self.area_height_m <= 0.0
            || !self.area_width_m.is_finite()
            || !self.area_height_m.is_finite()
        {
            return Err(ConfigError::EmptyArea);
        }
        if !(0.0..=1.0).contains(&self.visibility) {
            return Err(ConfigError::VisibilityOutOfRange);
        }
        if ![4, 6, 8].contains(&self.motor_count) {
            return Err(ConfigError::UnsupportedMotorCount);
        }
        if self.tolerated_motor_failures >= self.motor_count {
            return Err(ConfigError::TooManyToleratedFailures);
        }
        // Per-group profiles, resolved against the platform defaults
        // validated above, must describe buildable airframes too.
        for group in self.fleet.groups() {
            let p = group.profile.resolve(&self.fleet_defaults());
            if ![4, 6, 8].contains(&p.motor_count) {
                return Err(ConfigError::UnsupportedMotorCount);
            }
            if p.tolerated_motor_failures >= p.motor_count {
                return Err(ConfigError::TooManyToleratedFailures);
            }
        }
        Ok(())
    }
}

/// A [`PlatformConfig`] that failed validation in
/// [`PlatformConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The fleet spec resolved to zero UAVs — the platform needs a fleet.
    NoUavs,
    /// `scan_altitude_m` was not strictly positive.
    NonPositiveAltitude,
    /// The search area had a non-positive width or height.
    EmptyArea,
    /// `visibility` fell outside `[0, 1]`.
    VisibilityOutOfRange,
    /// `motor_count` was not one of the supported airframes (4, 6, 8).
    UnsupportedMotorCount,
    /// `tolerated_motor_failures` was not below `motor_count`.
    TooManyToleratedFailures,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoUavs => write!(f, "the fleet must contain at least 1 UAV"),
            ConfigError::NonPositiveAltitude => {
                write!(f, "scan_altitude_m must be strictly positive")
            }
            ConfigError::EmptyArea => {
                write!(
                    f,
                    "area_width_m and area_height_m must be strictly positive"
                )
            }
            ConfigError::VisibilityOutOfRange => {
                write!(f, "visibility must lie in [0, 1]")
            }
            ConfigError::UnsupportedMotorCount => {
                write!(f, "motor_count must be 4, 6 or 8")
            }
            ConfigError::TooManyToleratedFailures => {
                write!(f, "tolerated_motor_failures must be below motor_count")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fluent builder for [`PlatformConfig`]. Each setter overrides one
/// default; [`PlatformConfigBuilder::build`] validates the combination.
///
/// # Examples
///
/// ```
/// use sesame_core::fleet::FleetSpec;
/// use sesame_core::orchestrator::PlatformConfig;
///
/// let cfg = PlatformConfig::builder()
///     .fleet(FleetSpec::uniform(3))
///     .scan_altitude_m(25.0)
///     .seed(7)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(cfg.fleet.total(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct PlatformConfigBuilder {
    config: PlatformConfig,
}

impl PlatformConfigBuilder {
    /// Enables or disables the SESAME stack (monitors, ConSerts, IDS).
    pub fn sesame_enabled(mut self, on: bool) -> Self {
        self.config.sesame_enabled = on;
        self
    }

    /// Sets the fleet composition and shard policy.
    pub fn fleet(mut self, spec: FleetSpec) -> Self {
        self.config.fleet = spec;
        self
    }

    /// Sets a uniform fleet of `n` default-profile UAVs.
    #[deprecated(since = "0.3.0", note = "use fleet(FleetSpec::uniform(n))")]
    pub fn uav_count(self, n: usize) -> Self {
        self.fleet(FleetSpec::uniform(n))
    }

    /// Sets the initial scan altitude in metres.
    pub fn scan_altitude_m(mut self, alt: f64) -> Self {
        self.config.scan_altitude_m = alt;
        self
    }

    /// Enables the §V-B altitude-adaptation policy.
    pub fn altitude_adaptation(mut self, on: bool) -> Self {
        self.config.altitude_adaptation = on;
        self
    }

    /// Sets the SafeDrones configuration.
    pub fn safedrones(mut self, cfg: SafeDronesConfig) -> Self {
        self.config.safedrones = cfg;
        self
    }

    /// Sets the search-area extent (east × north, metres).
    pub fn area_m(mut self, width: f64, height: f64) -> Self {
        self.config.area_width_m = width;
        self.config.area_height_m = height;
        self
    }

    /// Sets the number of ground-truth persons in the area.
    pub fn person_count(mut self, n: usize) -> Self {
        self.config.person_count = n;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the baseline battery-swap duration.
    pub fn battery_swap(mut self, d: SimDuration) -> Self {
        self.config.battery_swap = d;
        self
    }

    /// Sets the battery hover drain per second.
    pub fn battery_hover_drain(mut self, drain: f64) -> Self {
        self.config.battery_hover_drain = drain;
        self
    }

    /// Sets the world visibility in `[0, 1]`.
    pub fn visibility(mut self, v: f64) -> Self {
        self.config.visibility = v;
        self
    }

    /// Sets motors per airframe and how many losses are tolerated.
    pub fn motors(mut self, count: usize, tolerated_failures: usize) -> Self {
        self.config.motor_count = count;
        self.config.tolerated_motor_failures = tolerated_failures;
        self
    }

    /// Overrides the degraded-mode supervision policy (watchdog windows,
    /// heartbeat period, command retry budget).
    pub fn supervision(mut self, cfg: SupervisionConfig) -> Self {
        self.config.supervision = cfg;
        self
    }

    /// Enables or disables the incremental EDDI fast path (on by
    /// default). Disabling selects the naive reference runtimes.
    pub fn eddi_fast_path(mut self, on: bool) -> Self {
        self.config.eddi_fast_path = on;
        self
    }

    /// Validates the assembled configuration.
    pub fn build(self) -> Result<PlatformConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// The outcome of a CL-guided safe landing (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClLandingOutcome {
    /// Which UAV was landed.
    pub uav: UavId,
    /// Distance between the pad and the true touchdown, metres.
    pub miss_m: f64,
    /// When touchdown happened.
    pub at: SimTime,
}

/// The per-UAV Safety EDDI engine: the incremental fast path (default)
/// or the naive reference runtime, selected by
/// [`PlatformConfig::eddi_fast_path`]. Both produce bit-identical
/// outputs; the reference variant recomputes everything each tick.
enum EddiEngine {
    Fast(UavEddiRuntime),
    Reference(ReferenceEddiRuntime),
}

impl EddiEngine {
    fn set_remaining_mission(&mut self, remaining: SimDuration) {
        match self {
            EddiEngine::Fast(rt) => rt.set_remaining_mission(remaining),
            EddiEngine::Reference(rt) => rt.set_remaining_mission(remaining),
        }
    }

    fn tick(&mut self, telemetry: &UavTelemetry, scene: &SceneCondition) -> EddiOutputs {
        match self {
            EddiEngine::Fast(rt) => rt.tick(telemetry, scene),
            EddiEngine::Reference(rt) => rt.tick(telemetry, scene),
        }
    }

    // The split tick (ingest → batched cross-UAV solve → finish) only
    // exists on the fast path; the shard plan in `Platform::new` never
    // selects sharded execution for reference engines.

    fn begin_tick(&mut self, telemetry: &UavTelemetry) -> TickPlan {
        match self {
            EddiEngine::Fast(rt) => rt.begin_tick(telemetry),
            EddiEngine::Reference(_) => unreachable!("sharded ticks require the fast path"),
        }
    }

    fn finish_tick(
        &mut self,
        telemetry: &UavTelemetry,
        scene: &SceneCondition,
        plan: TickPlan,
        primes: [Option<&[f64]>; MARKOV_SLOTS],
    ) -> EddiOutputs {
        match self {
            EddiEngine::Fast(rt) => rt.finish_tick(telemetry, scene, plan, primes),
            EddiEngine::Reference(_) => unreachable!("sharded ticks require the fast path"),
        }
    }

    fn last_outputs(&self) -> Option<&EddiOutputs> {
        match self {
            EddiEngine::Fast(rt) => rt.last_outputs(),
            EddiEngine::Reference(rt) => rt.last_outputs(),
        }
    }

    fn evidence(
        &self,
        telemetry: &UavTelemetry,
        attack_detected: bool,
        neighbors_available: bool,
    ) -> UavEvidence {
        match self {
            EddiEngine::Fast(rt) => rt.evidence(telemetry, attack_detected, neighbors_available),
            EddiEngine::Reference(rt) => {
                rt.evidence(telemetry, attack_detected, neighbors_available)
            }
        }
    }

    fn safedrones(&self) -> &SafeDronesMonitor {
        match self {
            EddiEngine::Fast(rt) => rt.safedrones(),
            EddiEngine::Reference(rt) => rt.safedrones(),
        }
    }

    fn cache_stats(&self) -> EddiCacheStats {
        match self {
            EddiEngine::Fast(rt) => rt.cache_stats(),
            EddiEngine::Reference(_) => EddiCacheStats::default(),
        }
    }
}

/// The per-UAV ConSert evaluator: fingerprint-gated single evaluation on
/// the fast path, the naive two-evaluation catalog calls on the
/// reference path.
enum ConsertRuntime {
    Fast(IncrementalConsertNetwork),
    Reference(ConsertNetwork),
}

impl ConsertRuntime {
    /// One tick's decision: the UAV action plus the certified navigation
    /// accuracy bound.
    fn decide(&mut self, uav: &str, evidence: &UavEvidence) -> ConsertDecision {
        match self {
            ConsertRuntime::Fast(inc) => inc.decide(evidence),
            ConsertRuntime::Reference(net) => ConsertDecision {
                action: evaluate_uav(net, uav, evidence),
                nav_accuracy_m: certified_navigation_accuracy_m(net, uav, evidence),
            },
        }
    }

    fn cache_stats(&self) -> EddiCacheStats {
        match self {
            ConsertRuntime::Fast(inc) => {
                let s = inc.stats();
                EddiCacheStats {
                    hits: s.hits,
                    misses: s.misses,
                }
            }
            ConsertRuntime::Reference(_) => EddiCacheStats::default(),
        }
    }
}

/// One shard's finish-tick work item: fleet-index offset of the shard,
/// its disjoint `&mut` window of the fleet, and the per-UAV tick plans.
type ShardWork<'a> = (usize, &'a mut [UavRt], Vec<Option<TickPlan>>);

struct UavRt {
    handle: UavHandle,
    eddi: Option<EddiEngine>,
    conserts: Option<ConsertRuntime>,
    detector: PersonDetector,
    route_uploaded: bool,
    attack_detected: bool,
    spoof_alerted: bool,
    cl_landing: bool,
    /// Baseline state machine: time at which the swap completes.
    swap_until: Option<SimTime>,
    baseline_resumed: bool,
    last_nav_accuracy: Option<f64>,
    productive_ticks: u64,
    detection_attempts: u64,
    detection_hits: u64,
    false_positives: u64,
    /// `Some` while the UAV is quarantined after an isolated compute
    /// fault: excised from EDDI evaluation, airspace scan and ConSert
    /// composition until the revival probe re-admits it.
    quarantine: Option<QuarantineCell>,
    /// The revival probe's fresh engine, built on the first probe after
    /// each backoff and promoted to `eddi` on release. The faulted
    /// engine in `eddi` is never ticked again — its internal state is
    /// suspect after an unwind.
    probe_eddi: Option<EddiEngine>,
    /// Outputs of the last clean (finite, non-panicking) EDDI tick.
    last_good_outputs: Option<EddiOutputs>,
    /// The last-known-good outputs frozen at quarantine entry; GCS
    /// snapshots report this instead of the poisoned engine's state.
    frozen_outputs: Option<EddiOutputs>,
}

struct ClState {
    affected: usize,
    session: CollabSession,
    guidance: Option<LandingGuidance>,
    collaborators: Vec<usize>,
}

/// An unacknowledged GCS command awaiting its retry deadline. Keyed in
/// the pending map by `(topic, seq)`; a retry re-publishes the payload
/// under a *fresh* sequence number (re-using the old one would trip the
/// IDS replay detector) and re-inserts under the new key.
struct PendingCommand {
    payload: Payload,
    attempts: u32,
    next_retry_at: SimTime,
}

/// One sampled point of a PoF or trajectory series.
pub type Sample<T> = (f64, T);

/// Read-only view over the time series and milestones a [`Platform`]
/// records during a run. Obtained from [`Platform::series`]; borrows
/// the platform, so take what you need and drop it before stepping.
#[derive(Debug, Clone, Copy)]
pub struct SeriesView<'a> {
    platform: &'a Platform,
}

impl SeriesView<'_> {
    /// PoF samples of UAV 1 (one per second).
    pub fn pof(&self) -> &[Sample<f64>] {
        &self.platform.pof_series
    }

    /// Combined-uncertainty samples of UAV 1 (one per second).
    pub fn uncertainty(&self) -> &[Sample<f64>] {
        &self.platform.uncertainty_series
    }

    /// True-position samples of one UAV (one per second).
    ///
    /// # Panics
    /// Panics if `uav_index` is out of range (see [`Self::uav_count`]).
    pub fn trajectory(&self, uav_index: usize) -> &[Sample<GeoPoint>] {
        &self.platform.trajectories[uav_index]
    }

    /// Number of UAVs with a trajectory series.
    pub fn uav_count(&self) -> usize {
        self.platform.trajectories.len()
    }

    /// When the Security EDDI first reached an attack-tree root.
    pub fn attack_detected_at(&self) -> Option<SimTime> {
        self.platform.attack_detected_at
    }

    /// The CL landing outcome, when one happened.
    pub fn cl_outcome(&self) -> Option<ClLandingOutcome> {
        self.platform.cl_outcome
    }
}

/// Reusable per-tick working storage. Every container here is cleared
/// and refilled each tick, so after the first (warm-up) tick the
/// steady-state pipeline runs without heap traffic from these
/// collections. See DESIGN.md § "Hot-loop memory discipline" for the
/// lifetime rules (lease at phase entry, return before the tick ends;
/// nothing in here carries semantic state across ticks).
///
/// The struct is `mem::take`n at the top of the tick passes and restored
/// at their ends, which sidesteps borrow conflicts between the scratch
/// buffers and the rest of the platform. A panic mid-tick loses the
/// warm buffers (the next tick starts from `Default`) but never loses
/// state — that is the point of keeping scratch and state separate.
#[derive(Debug, Default)]
struct TickScratch {
    /// This tick's fleet telemetry snapshot.
    telemetries: Vec<UavTelemetry>,
    /// Serial path: detection events buffered by the pre-pass.
    det_events: Vec<SystemEvent>,
    /// Sharded path: per-UAV detection-event buffers.
    det_events_per_uav: Vec<Vec<SystemEvent>>,
    /// Sharded classify: per-UAV, per-slot solve-class membership.
    class_of: Vec<[Option<usize>; MARKOV_SLOTS]>,
    /// Sharded classify: one `(representative, slot, dt)` per class.
    classes: Vec<(usize, usize, SimDuration)>,
    /// Sharded classify: solve-class lookup by exact solve identity.
    class_index: HashMap<(usize, SolveKey), usize>,
    /// Sharded solve: batch-group lookup by `(slot, ProfileKey)`.
    group_index: HashMap<(usize, ProfileKey), usize>,
    /// Sharded solve: member classes of each batch group. Groups are
    /// tiny (distinct current distributions within one profile), so the
    /// member lists live inline.
    group_members: Vec<InlineVec<usize, 8>>,
    /// Sharded solve: the `(slot, dt)` shared by each batch group.
    group_meta: Vec<(usize, SimDuration)>,
    /// Sharded solve: per-class result — a `(start, len)` span into the
    /// arena-leased `solved` buffer, or the panic message that excises
    /// the class's members.
    class_span: Vec<Result<(usize, usize), String>>,
    /// Batched-uniformization working buffers.
    batch: BatchSolveScratch,
    /// Bump-style pool for the per-tick f64 buffers (`solved`,
    /// `batch_out`) leased inside the sharded solve.
    arena: ScratchArena,
    /// Airspace passes: quarantine excision mask.
    quarantined: Vec<bool>,
    /// ConSert passes: this tick's per-UAV actions.
    actions: Vec<UavAction>,
    /// Sharded ConSert pass: supervision fallback mask.
    fallback: Vec<bool>,
}

/// The platform. Construct with [`Platform::new`], drive with
/// [`Platform::step`] or [`Platform::run_until_complete`].
pub struct Platform {
    config: PlatformConfig,
    sim: Simulator,
    bus: MessageBus,
    broker: AlertBroker,
    auth: Option<MessageAuth>,
    ids: Option<Ids>,
    ids_tap: Subscription,
    cmd_subs: Vec<Subscription>,
    security_eddis: Vec<SecurityEddi>,
    uavs: Vec<UavRt>,
    tasks: TaskManager,
    manager: UavManager,
    db: DatabaseManager,
    gcs: GroundControlStation,
    events: EventLog,
    seq: HashMap<String, u64>,
    altitude_policy: AltitudePolicy,
    cl: Option<ClState>,
    cl_outcome: Option<ClLandingOutcome>,
    mission_complete_at: Option<SimTime>,
    total_ticks: u64,
    ticks_at_completion: Option<u64>,
    productive_at_completion: Vec<u64>,
    pof_series: Vec<Sample<f64>>,
    uncertainty_series: Vec<Sample<f64>>,
    trajectories: Vec<Vec<Sample<GeoPoint>>>,
    attack_detected_at: Option<SimTime>,
    current_scan_alt: f64,
    geofences: Vec<GeofenceMonitor>,
    separation: SeparationRiskModel,
    separation_hot: Vec<bool>,
    metrics: MetricsRegistry,
    trace: TraceLog,
    supervisors: Vec<UavSupervisor>,
    comm_faults: CommFaultPlane,
    compute_faults: ComputeFaultPlane,
    /// Faults isolated during this tick's UAV pass, drained (in fleet
    /// order) by the containment step after supervision.
    pending_faults: Vec<UavFault>,
    watchdog: TickWatchdog,
    /// `Some(tick)` while the watchdog holds the sharded tick demoted to
    /// the serial reference path; restored to `base_shards` at `tick`.
    demoted_until_tick: Option<u64>,
    // BTreeMap, not HashMap: retries are re-published in iteration order,
    // and bus/RNG state must not depend on hash randomization.
    pending_cmds: BTreeMap<(String, u64), PendingCommand>,
    next_heartbeat_at: SimTime,
    /// Contiguous fleet partition for the sharded tick; a single range
    /// selects the serial path. Resolved once in [`Platform::new`] from
    /// the fleet's shard policy (sharding requires the fast-path EDDI's
    /// split tick, so reference engines always run serial).
    shards: Vec<Range<usize>>,
    /// The shard plan as resolved at construction — what `shards` is
    /// restored to when a watchdog demotion cools down.
    base_shards: Vec<Range<usize>>,
    /// Reusable per-tick working storage (see [`TickScratch`]).
    scratch: TickScratch,
    /// Cached metric keys, indexed by UAV: `eddi.evals.uav{i}`. The
    /// fleet size is fixed at construction, so formatting these once
    /// keeps the hot tick free of `format!` allocations.
    eddi_eval_keys: Vec<String>,
    /// Cached metric keys, indexed by UAV: `supervision.state.uav{i}`.
    supervision_state_keys: Vec<String>,
    /// Cached `UavId` display names, indexed by UAV (the reference
    /// ConSert catalog selects networks by name every tick).
    uav_names: Vec<String>,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("sesame", &self.config.sesame_enabled)
            .field("uavs", &self.uavs.len())
            .field("now", &self.sim.now())
            .finish()
    }
}

impl Platform {
    /// Builds a platform: world, fleet, mission plan, bus wiring, and —
    /// when SESAME is on — the EDDI runtimes, ConSert networks, IDS and
    /// Security EDDI scripts.
    pub fn new(config: PlatformConfig) -> Self {
        let origin = Self::origin();
        let world = World::rectangle(
            origin,
            config.area_width_m,
            config.area_height_m,
            config.person_count,
        );
        let mut sim = Simulator::new(world, config.seed);
        sim.world_mut().set_visibility(config.visibility);
        let mut manager = UavManager::new();
        let n = config.fleet.total();
        let profiles = config.fleet.resolved(&config.fleet_defaults());
        let mut uavs = Vec::with_capacity(n);
        let mut cmd_subs = Vec::with_capacity(n);

        let mut bus = MessageBus::seeded(config.seed ^ 0xB05);
        let ids_tap = bus.subscribe("#");
        let auth = config
            .sesame_enabled
            .then(|| MessageAuth::new(AuthKey::new(0x5E5A_4E5E_C0DEu64 ^ config.seed)));
        let mut broker = AlertBroker::new();
        let mut ids = config
            .sesame_enabled
            .then(|| Ids::new(IdsConfig::default(), auth));
        let security_eddis = if config.sesame_enabled {
            attack_catalog::all_trees()
                .into_iter()
                .map(|t| {
                    let mut eddi = SecurityEddi::attach(t, &mut broker);
                    if config.eddi_fast_path {
                        eddi.enable_fast_path();
                    }
                    eddi
                })
                .collect()
        } else {
            Vec::new()
        };

        for i in 0..n {
            let handle = sim.add_uav(UavConfig {
                hover_drain_per_sec: profiles[i].battery_hover_drain,
                motor_count: profiles[i].motor_count,
                tolerated_motor_failures: profiles[i].tolerated_motor_failures,
                ..UavConfig::default()
            });
            let id = handle.id();
            manager.register(id, handle, "matrice300-sim", &["rgb-camera", "jetson-nx"]);
            cmd_subs.push(bus.subscribe(format!("/{id}/cmd/#")));
            let eddi = config.sesame_enabled.then(|| {
                let seed = config.seed ^ ((i as u64 + 1) << 16);
                if config.eddi_fast_path {
                    EddiEngine::Fast(UavEddiRuntime::new(seed, config.safedrones.clone(), origin))
                } else {
                    EddiEngine::Reference(ReferenceEddiRuntime::new(
                        seed,
                        config.safedrones.clone(),
                        origin,
                    ))
                }
            });
            let conserts = config.sesame_enabled.then(|| {
                if config.eddi_fast_path {
                    ConsertRuntime::Fast(IncrementalConsertNetwork::new(id.to_string()))
                } else {
                    ConsertRuntime::Reference(uav_consert_network(&id.to_string()))
                }
            });
            uavs.push(UavRt {
                handle,
                eddi,
                conserts,
                detector: PersonDetector::new(config.seed ^ ((i as u64 + 1) << 24)),
                route_uploaded: false,
                attack_detected: false,
                spoof_alerted: false,
                cl_landing: false,
                swap_until: None,
                baseline_resumed: false,
                last_nav_accuracy: None,
                productive_ticks: 0,
                detection_attempts: 0,
                detection_hits: 0,
                false_positives: 0,
                quarantine: None,
                probe_eddi: None,
                last_good_outputs: None,
                frozen_outputs: None,
            });
        }

        // Plan the mission: one strip per UAV.
        let footprint_half = config.scan_altitude_m; // 90° FOV: half-width = alt
        let ids_list: Vec<UavId> = uavs.iter().map(|u| u.handle.id()).collect();
        let tasks = TaskManager::plan(
            &origin,
            config.area_width_m,
            config.area_height_m,
            &ids_list,
            config.scan_altitude_m,
            footprint_half,
        );
        if let Some(ids_engine) = ids.as_mut() {
            for id in &ids_list {
                let mut plan = tasks.remaining_route(*id);
                plan.push(origin.with_alt(config.scan_altitude_m));
                ids_engine.register_plan(*id, plan);
            }
        }

        let trajectories = vec![Vec::new(); n];
        let current_scan_alt = config.scan_altitude_m;
        let geofences = (0..n)
            .map(|_| GeofenceMonitor::new(Geofence::around(sim.world(), 40.0, 150.0)))
            .collect();
        let separation_hot = vec![false; n];
        let supervisors = (0..n).map(|_| UavSupervisor::new()).collect();
        // Sharding needs the fast path's split tick (begin → batched
        // solve → finish); any other configuration runs the serial
        // oracle. Either way the outputs are bit-identical.
        let shard_count = if config.sesame_enabled && config.eddi_fast_path {
            config.fleet.shard_policy().shard_count(n)
        } else {
            1
        };
        let shards = shard_ranges(n, shard_count);
        let watchdog = TickWatchdog::new(n, config.supervision.watchdog_trip_after);
        let eddi_eval_keys = (0..n).map(|i| format!("eddi.evals.uav{i}")).collect();
        let supervision_state_keys = (0..n)
            .map(|i| format!("supervision.state.uav{i}"))
            .collect();
        let uav_names = uavs.iter().map(|u| u.handle.id().to_string()).collect();
        Platform {
            config,
            sim,
            bus,
            broker,
            auth,
            ids,
            ids_tap,
            cmd_subs,
            security_eddis,
            uavs,
            tasks,
            manager,
            db: DatabaseManager::new(),
            gcs: GroundControlStation::new(),
            events: EventLog::new(),
            seq: HashMap::new(),
            altitude_policy: AltitudePolicy::paper_defaults(),
            cl: None,
            cl_outcome: None,
            mission_complete_at: None,
            total_ticks: 0,
            ticks_at_completion: None,
            productive_at_completion: Vec::new(),
            pof_series: Vec::new(),
            uncertainty_series: Vec::new(),
            trajectories,
            attack_detected_at: None,
            current_scan_alt,
            geofences,
            separation: SeparationRiskModel::new(),
            separation_hot,
            metrics: MetricsRegistry::new(),
            trace: TraceLog::default(),
            supervisors,
            comm_faults: CommFaultPlane::new(),
            compute_faults: ComputeFaultPlane::new(),
            pending_faults: Vec::new(),
            watchdog,
            demoted_until_tick: None,
            pending_cmds: BTreeMap::new(),
            next_heartbeat_at: SimTime::ZERO,
            base_shards: shards.clone(),
            shards,
            scratch: TickScratch::default(),
            eddi_eval_keys,
            supervision_state_keys,
            uav_names,
        }
    }

    /// The paper's fixed operating-area origin (§IV), shared by
    /// construction and the revival probe's fresh engines.
    fn origin() -> GeoPoint {
        GeoPoint::new(35.05, 33.20, 0.0)
    }

    /// A fresh EDDI engine for UAV `i`, seeded exactly as construction
    /// seeds it. The engine kind follows the configured path: a released
    /// UAV must rejoin the execution plan it left, and only the fast
    /// engine supports the sharded split tick.
    fn fresh_eddi_engine(&self, i: usize) -> EddiEngine {
        let seed = self.config.seed ^ ((i as u64 + 1) << 16);
        if self.config.eddi_fast_path {
            EddiEngine::Fast(UavEddiRuntime::new(
                seed,
                self.config.safedrones.clone(),
                Self::origin(),
            ))
        } else {
            EddiEngine::Reference(ReferenceEddiRuntime::new(
                seed,
                self.config.safedrones.clone(),
                Self::origin(),
            ))
        }
    }

    /// A fresh ConSert runtime for UAV `i`, matching the configured path.
    fn fresh_consert_runtime(&self, i: usize) -> ConsertRuntime {
        let id = self.uavs[i].handle.id();
        if self.config.eddi_fast_path {
            ConsertRuntime::Fast(IncrementalConsertNetwork::new(id.to_string()))
        } else {
            ConsertRuntime::Reference(uav_consert_network(&id.to_string()))
        }
    }

    /// The simulator (fault injection, environment).
    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// The simulator, read-only.
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }

    /// The bus (the attack plane arms itself here).
    pub fn bus_mut(&mut self) -> &mut MessageBus {
        &mut self.bus
    }

    /// The scheduled communication-fault plane (chaos campaigns arm link
    /// blackouts, partitions, broker outages and staleness here).
    pub fn comm_faults_mut(&mut self) -> &mut CommFaultPlane {
        &mut self.comm_faults
    }

    /// The scheduled compute-fault plane (chaos campaigns arm EDDI
    /// panics, NaN/Inf telemetry corruption and solver stalls here).
    pub fn compute_faults_mut(&mut self) -> &mut ComputeFaultPlane {
        &mut self.compute_faults
    }

    /// The supervision health state of UAV `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn health(&self, index: usize) -> HealthState {
        self.supervisors[index].state()
    }

    /// The event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The ground control station log.
    pub fn gcs(&self) -> &GroundControlStation {
        &self.gcs
    }

    /// The task manager.
    pub fn tasks(&self) -> &TaskManager {
        &self.tasks
    }

    /// The database manager.
    pub fn database_mut(&mut self) -> &mut DatabaseManager {
        &mut self.db
    }

    /// Current time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// When the coverage mission completed, if it has.
    pub fn mission_complete_at(&self) -> Option<SimTime> {
        self.mission_complete_at
    }

    /// Read-only view of every per-run series and milestone the
    /// platform records: PoF, uncertainty, trajectories, attack
    /// detection and the CL landing outcome.
    pub fn series(&self) -> SeriesView<'_> {
        SeriesView { platform: self }
    }

    /// The live metrics registry: counters, gauges and the per-phase
    /// tick-timing histograms maintained by [`Platform::step`].
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A cheap, comparable copy of the current metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Closed-loop ticks stepped so far (the checkpoint layer's logical
    /// clock).
    pub fn total_ticks(&self) -> u64 {
        self.total_ticks
    }

    /// Counts a checkpoint capture. The `checkpoint.*` keys are excluded
    /// from state digests, so capturing never perturbs bit-identity.
    pub(crate) fn record_checkpoint_capture(&mut self) {
        self.metrics.inc("checkpoint.captures");
    }

    /// Marks this platform as recovered from a checkpoint after
    /// replaying `replayed_ticks` logged ticks.
    pub(crate) fn record_recovery(&mut self, replayed_ticks: u64) {
        self.metrics.inc("checkpoint.recoveries");
        self.metrics
            .set_counter("checkpoint.replayed_ticks", replayed_ticks);
    }

    /// The platform-wide structured trace: bus drops/tampers absorbed
    /// from the middleware plus IDS, ConSert and attack-goal events.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Commands the whole fleet to take off and begin the survey.
    pub fn launch(&mut self) {
        for i in 0..self.uavs.len() {
            let h = self.uavs[i].handle;
            self.sim.command_takeoff(h, self.config.scan_altitude_m);
        }
    }

    fn publish(&mut self, sender: &str, topic: String, payload: Payload) -> u64 {
        // Lookup before entry: `entry` would clone `sender` into a key
        // on every call, but a sender only needs that once.
        let seq = if let Some(c) = self.seq.get_mut(sender) {
            let s = *c;
            *c += 1;
            s
        } else {
            self.seq.insert(sender.to_string(), 1);
            0
        };
        let mut msg = Message::new(topic, sender, seq, self.sim.now(), payload);
        if let Some(auth) = &self.auth {
            auth.sign(&mut msg);
        }
        self.bus.publish_message(msg);
        seq
    }

    /// Publishes a GCS command with at-least-once delivery: the message
    /// is tracked until the UAV-side drain applies it, and re-published
    /// (under a fresh sequence number, with exponential backoff) up to
    /// `max_command_retries` times if no acknowledgement arrives.
    fn publish_command(&mut self, topic: String, payload: Payload, attempts: u32) {
        let seq = self.publish("node:gcs", topic.clone(), payload.clone());
        if self.config.supervision.enabled {
            let backoff_ms = self
                .config
                .supervision
                .retry_backoff
                .as_millis()
                .saturating_mul(1u64 << attempts.min(16));
            self.pending_cmds.insert(
                (topic, seq),
                PendingCommand {
                    payload,
                    attempts,
                    next_retry_at: self.sim.now() + SimDuration::from_millis(backoff_ms),
                },
            );
        }
    }

    /// Uploads a route to a UAV over the (attackable) command channel.
    fn upload_route(&mut self, index: usize, route: Vec<GeoPoint>) {
        let id = self.uavs[index].handle.id();
        for wp in route {
            self.publish_command(
                format!("/{id}/cmd/waypoint"),
                Payload::WaypointCommand {
                    uav: id,
                    waypoint: wp,
                },
                0,
            );
        }
    }

    /// One closed-loop tick. Returns the new time.
    pub fn step(&mut self) -> SimTime {
        let mut span = TickSpan::start();
        span.enter(phase::SIM_STEP);
        let now = self.sim.step();
        self.total_ticks += 1;
        self.metrics.inc("platform.ticks");
        let second_boundary = now.as_millis().is_multiple_of(1000);
        let visibility = self.sim.world().visibility();

        // ---- Scheduled communication faults ----
        // Applied before this tick's publishes so a blackout starting at
        // `now` already swallows this tick's traffic.
        for tr in self.comm_faults.step(now, &mut self.bus, &mut self.broker) {
            self.metrics.inc("chaos.comm_fault_transitions");
            if tr.activated {
                self.metrics.inc("chaos.comm_faults_activated");
            }
            self.trace.push(
                now.as_millis(),
                TraceEvent::CommFault {
                    label: tr.label.clone(),
                    activated: tr.activated,
                },
            );
            self.events.push(
                now,
                SystemEvent::Note(format!(
                    "comm fault {} {}",
                    tr.label,
                    if tr.activated { "activated" } else { "cleared" }
                )),
            );
        }

        // ---- Scheduled compute faults ----
        // Advanced before sensing so a window opening at `now` already
        // corrupts this tick's telemetry / arms this tick's panic.
        for tr in self.compute_faults.step(now) {
            self.metrics.inc("chaos.compute_fault_transitions");
            if tr.activated {
                self.metrics.inc("chaos.compute_faults_activated");
            }
            self.trace.push(
                now.as_millis(),
                TraceEvent::ComputeFault {
                    label: tr.label.clone(),
                    activated: tr.activated,
                },
            );
            self.events.push(
                now,
                SystemEvent::Note(format!(
                    "compute fault {} {}",
                    tr.label,
                    if tr.activated { "activated" } else { "cleared" }
                )),
            );
        }

        // ---- GCS heartbeat (per-UAV, signed, over the lossy bus) ----
        // Each UAV's supervisor measures uplink liveness from these.
        if self.config.supervision.enabled && now >= self.next_heartbeat_at {
            self.next_heartbeat_at = now + self.config.supervision.heartbeat_period;
            for i in 0..self.uavs.len() {
                let id = self.uavs[i].handle.id();
                self.publish(
                    "node:gcs",
                    format!("/{id}/cmd/heartbeat"),
                    Payload::Text("heartbeat".into()),
                );
                self.metrics.inc("supervision.heartbeats_sent");
            }
        }

        // ---- Per-UAV sensing, mission logic and EDDI ticks ----
        span.enter(phase::SENSE_PUBLISH);
        let n = self.uavs.len();
        // Leased from the tick scratch: after the first tick the buffer
        // holds last tick's fleet snapshot and refreshes in place
        // (including the per-UAV `motors_ok` heap buffers).
        let mut telemetries = std::mem::take(&mut self.scratch.telemetries);
        telemetries.truncate(n);
        for i in 0..n {
            let handle = self.uavs[i].handle;
            if let Some(slot) = telemetries.get_mut(i) {
                self.sim.telemetry_into(handle, slot);
            } else {
                telemetries.push(self.sim.telemetry(handle));
            }
            // An active telemetry-corruption fault poisons the sensor
            // readings *before* anything consumes them, so both
            // execution plans see the same corrupt inputs (the EDDI
            // input guard rejects them instead of solving on NaN).
            if self
                .compute_faults
                .corrupt_telemetry(i, &mut telemetries[i])
            {
                self.metrics.inc("uav.fault.telemetry_corrupted");
            }
        }
        // A multi-shard plan runs the data-parallel tick (serial
        // pre-pass, fleet-wide batched Markov solve, per-shard finish,
        // serial merge); a single shard runs the serial oracle. Both are
        // bit-identical — the fleet_sharding conformance suite holds
        // them together.
        let sharded = self.shards.len() > 1;
        if sharded {
            self.step_uavs_sharded(&telemetries, now, second_boundary, visibility, &mut span);
        } else {
            self.step_uavs_serial(&telemetries, now, second_boundary, visibility, &mut span);
        }

        // ---- Airspace monitors: geofence and separation risk ----
        span.enter(phase::AIRSPACE);
        if sharded {
            self.step_airspace_sharded(&telemetries, now);
        } else {
            self.step_airspace_serial(&telemetries, now);
        }

        // ---- Bus delivery, IDS, command application ----
        span.enter(phase::BUS_STEP);
        self.bus.step(now);
        // The IDS tap is subscribed in `new` and never cancelled, so a
        // drain failure would be a wiring bug — but under chaos testing
        // the platform must degrade, not die: count it, trace it, and
        // run the tick with an empty batch.
        let tapped = self.drain_or_degrade(self.ids_tap, "ids_tap", now);
        // Telemetry-staleness watchdog: any telemetry that actually
        // survived the lossy bus refreshes its UAV's supervisor.
        if self.config.supervision.enabled {
            for msg in &tapped {
                if let Payload::Telemetry(tel) = &msg.payload {
                    if let Some(idx) = self.uavs.iter().position(|u| u.handle.id() == tel.uav) {
                        self.supervisors[idx].record_telemetry(now);
                    }
                }
            }
        }
        if let Some(ids_engine) = self.ids.as_mut() {
            let mut alerts = Vec::new();
            for msg in &tapped {
                alerts.extend(ids_engine.inspect(msg, now));
            }
            for a in alerts {
                self.metrics.inc("ids.alerts");
                self.metrics.inc(&format!("ids.alerts.rule.{}", a.rule));
                self.trace.push(
                    now.as_millis(),
                    TraceEvent::IdsAlert {
                        detector: a.rule.clone(),
                        detail: a.detail.clone(),
                    },
                );
                self.broker.publish(
                    now,
                    "ids",
                    format!("ids/alerts/{}", a.subject),
                    Payload::Alert {
                        rule: a.rule.clone(),
                        subject: a.subject,
                        detail: a.detail.clone(),
                    },
                );
                self.events.push(
                    now,
                    SystemEvent::SecurityAlert {
                        uav: a.subject,
                        rule: a.rule,
                        severity: a.severity,
                    },
                );
            }
        }

        // UAV-side command application: verify signatures when SESAME
        // signs; a stock deployment applies everything (the §V-C hole).
        for i in 0..n {
            let sub = self.cmd_subs[i];
            let msgs = self.drain_or_degrade(sub, &format!("cmd_sub.uav{i}"), now);
            let handle = self.uavs[i].handle;
            for msg in msgs {
                if let Some(auth) = &self.auth {
                    if !auth.verify(&msg) {
                        self.metrics.inc("commands.rejected_auth");
                        continue; // reject unauthenticated commands
                    }
                }
                // GCS heartbeat: refreshes the UAV-side link watchdog,
                // is not a flight command.
                if matches!(&msg.payload, Payload::Text(s) if s == "heartbeat") {
                    self.supervisors[i].record_heartbeat(now);
                    self.metrics.inc("supervision.heartbeats_received");
                    continue;
                }
                self.metrics.inc("commands.applied");
                // Delivery doubles as the acknowledgement for the
                // at-least-once command retry machinery.
                self.pending_cmds.remove(&(msg.topic.clone(), msg.seq));
                match &msg.payload {
                    Payload::WaypointCommand { waypoint, .. } => {
                        self.sim
                            .command(handle, FlightCommand::PushWaypoint(*waypoint));
                    }
                    Payload::ModeCommand { mode, .. } => {
                        let cmd = match mode.as_str() {
                            "hold" => Some(FlightCommand::Hold),
                            "resume" => Some(FlightCommand::Resume),
                            "rtb" => Some(FlightCommand::ReturnToBase),
                            "land" => Some(FlightCommand::Land),
                            "emergency_land" => Some(FlightCommand::EmergencyLand),
                            _ => None,
                        };
                        if let Some(cmd) = cmd {
                            self.sim.command(handle, cmd);
                        }
                    }
                    _ => {}
                }
            }
        }

        // ---- Degraded-mode supervision ----
        if self.config.supervision.enabled {
            self.step_supervision(now);
        }

        // ---- Crash containment ----
        // Always on with SESAME (a panic must never abort the campaign,
        // whatever the supervision config says): quarantine this tick's
        // isolated faults, run the revival probes, feed the watchdog.
        if self.config.sesame_enabled {
            self.step_containment(&telemetries, now);
        }

        // ---- Security EDDI scripts ----
        span.enter(phase::SECURITY);
        let mut newly_attacked: Vec<UavId> = Vec::new();
        for eddi in self.security_eddis.iter_mut() {
            for status in eddi.poll(&mut self.broker, now) {
                self.metrics.inc("security.attack_goals");
                self.trace.push(
                    now.as_millis(),
                    TraceEvent::AttackGoal {
                        description: format!("{}: {}", status.uav, status.tree),
                    },
                );
                self.events.push(
                    now,
                    SystemEvent::AttackGoalDetected {
                        uav: status.uav,
                        tree: status.tree.clone(),
                    },
                );
                newly_attacked.push(status.uav);
            }
        }
        for id in newly_attacked {
            if self.attack_detected_at.is_none() {
                self.attack_detected_at = Some(now);
            }
            if let Some(idx) = self.uavs.iter().position(|u| u.handle.id() == id) {
                if !self.uavs[idx].attack_detected {
                    self.uavs[idx].attack_detected = true;
                    if self.config.sesame_enabled {
                        self.start_cl_landing(idx, now);
                    }
                }
            }
        }

        // ---- CL-guided landing (Fig. 7) ----
        span.enter(phase::CL_LANDING);
        self.step_cl(now);

        // ---- Decisions ----
        if self.config.sesame_enabled {
            span.enter(phase::CONSERT_COMPOSE);
            if sharded {
                self.step_conserts_sharded(&telemetries, now, &mut span);
            } else {
                self.step_conserts(&telemetries, now, &mut span);
            }
        } else {
            span.enter(phase::DECIDE);
            self.step_baseline(&telemetries, now);
        }

        // ---- Mission bookkeeping ----
        span.enter(phase::BOOKKEEPING);
        if self.mission_complete_at.is_none() && self.tasks.is_complete() {
            self.mission_complete_at = Some(now);
            self.ticks_at_completion = Some(self.total_ticks);
            self.productive_at_completion = self.uavs.iter().map(|u| u.productive_ticks).collect();
            self.trace.push(
                now.as_millis(),
                TraceEvent::ModeTransition {
                    from: "survey".into(),
                    to: "return_to_base".into(),
                },
            );
            self.events.push(
                now,
                SystemEvent::MissionComplete {
                    completed_fraction: 1.0,
                },
            );
            // Send everyone home.
            for i in 0..n {
                if !self.uavs[i].cl_landing {
                    let h = self.uavs[i].handle;
                    if self.sim.mode(h).is_airborne() {
                        self.sim.command(h, FlightCommand::ReturnToBase);
                    }
                }
            }
        }

        // Mirror the bus counters into the registry and pull the bus's
        // drop/tamper/overflow trace into the platform-wide log, so one
        // snapshot answers both "how much" and "when". `counters()` is the
        // cheap aggregate view — no per-topic map is rendered every tick.
        let counters = self.bus.counters();
        self.metrics
            .set_counter("bus.published", counters.published);
        self.metrics
            .set_counter("bus.delivered", counters.delivered);
        self.metrics.set_counter("bus.dropped", counters.dropped);
        self.metrics.set_counter("bus.tampered", counters.tampered);
        self.metrics
            .set_counter("bus.overflowed", counters.overflowed);
        self.metrics
            .set_gauge("bus.in_flight", self.bus.in_flight_len() as f64);
        self.trace.absorb(self.bus.trace_mut());

        // EDDI cache counters, mirrored the same way: aggregated hit/miss
        // totals across every UAV's solver, BN and ConSert caches (all
        // zero when the reference path runs).
        if self.config.sesame_enabled {
            let mut cache = EddiCacheStats::default();
            for u in &self.uavs {
                if let Some(e) = &u.eddi {
                    let s = e.cache_stats();
                    cache.hits += s.hits;
                    cache.misses += s.misses;
                }
                if let Some(c) = &u.conserts {
                    let s = c.cache_stats();
                    cache.hits += s.hits;
                    cache.misses += s.misses;
                }
            }
            self.metrics
                .set_cache_counters("eddi.cache", cache.hits, cache.misses);
        }

        let airborne = telemetries.iter().filter(|t| t.mode.is_airborne()).count();
        self.metrics.set_gauge("fleet.airborne", airborne as f64);
        self.metrics
            .set_gauge("mission.completion", self.tasks.completion());

        // GCS snapshot every 5 s.
        if now.as_millis().is_multiple_of(5000) {
            let snap = self.snapshot(&telemetries, now);
            self.gcs.record(snap);
        }
        self.scratch.telemetries = telemetries;
        span.finish(&mut self.metrics);
        now
    }

    /// Drains a subscription, downgrading a [`sesame_middleware::bus::BusError`]
    /// from a panic to a counted, traced degradation with an empty batch.
    fn drain_or_degrade(
        &mut self,
        sub: Subscription,
        context: &str,
        now: SimTime,
    ) -> Vec<Arc<Message>> {
        match self.bus.drain(sub) {
            Ok(msgs) => msgs,
            Err(err) => {
                self.metrics.inc("bus.drain_failures");
                self.metrics.inc(&format!("bus.drain_failures.{context}"));
                self.trace.push(
                    now.as_millis(),
                    TraceEvent::BusDegraded {
                        context: context.to_string(),
                        detail: err.to_string(),
                    },
                );
                Vec::new()
            }
        }
    }

    /// Everything one UAV's tick does *before* the EDDI evaluation:
    /// telemetry publish, database append, battery report, route upload,
    /// coverage progress, person detection and availability accounting.
    /// Called in fleet order on both paths, so the bus sequence (and
    /// with it the loss-RNG stream), the coverage state and the detector
    /// RNGs evolve identically. Person-detection events are buffered
    /// into `det_events` instead of pushed, letting the sharded path
    /// emit them at the exact log position the serial path uses.
    fn uav_pre_pass(
        &mut self,
        i: usize,
        tel: &UavTelemetry,
        now: SimTime,
        visibility: f64,
        det_events: &mut Vec<SystemEvent>,
    ) {
        let id = tel.uav;

        // Telemetry onto the bus and into the database.
        self.publish(
            &format!("node:{id}"),
            format!("/{id}/telemetry"),
            Payload::Telemetry(tel.clone()),
        );
        self.db
            .store_location(id, now, tel.gps.position, tel.battery_soc);
        self.manager.update_battery(id, tel.battery_soc);

        // Route upload once cruising altitude is reached.
        if !self.uavs[i].route_uploaded
            && tel.mode == FlightMode::Mission
            && tel.true_position.alt_m > self.config.scan_altitude_m * 0.9
        {
            self.uavs[i].route_uploaded = true;
            let route = self.tasks.remaining_route(id);
            self.upload_route(i, route);
        }

        // Task progress uses the *reported* position — spoofing
        // corrupts it, which is the point of Fig. 6.
        if tel.mode == FlightMode::Mission {
            self.tasks.record_position(id, &tel.gps.position, 12.0);
        }

        // Person detection while surveying.
        if tel.mode == FlightMode::Mission && tel.true_position.alt_m > 5.0 {
            let people = self.sim.visible_persons(handle_of(&self.uavs, i));
            self.uavs[i].detection_attempts += people.len() as u64;
            let dets = self.uavs[i]
                .detector
                .detect_frame(&tel.true_position, visibility, &people);
            for det in dets {
                if det.true_positive {
                    self.uavs[i].detection_hits += 1;
                } else {
                    self.uavs[i].false_positives += 1;
                }
                let new =
                    self.tasks
                        .mission_mut()
                        .report_person(det.position, id, det.confidence, now);
                if new {
                    det_events.push(SystemEvent::PersonDetected {
                        uav: id,
                        confidence: det.confidence,
                        true_positive: det.true_positive,
                    });
                }
            }
        }

        // Availability accounting.
        if tel.mode.is_productive() && !self.sim.is_crashed(handle_of(&self.uavs, i)) {
            self.uavs[i].productive_ticks += 1;
        }
    }

    /// The serial tail of one UAV's EDDI evaluation: spoofing-alert
    /// fan-out, the per-second PoF/uncertainty series of UAV 1 and the
    /// §V-B altitude adaptation. Runs on the caller's thread in fleet
    /// order on both paths (the adaptation reads *and writes* the shared
    /// scan altitude, so its cross-UAV sequencing is load-bearing).
    fn apply_eddi_outputs(
        &mut self,
        i: usize,
        tel: &UavTelemetry,
        out: &EddiOutputs,
        now: SimTime,
        second_boundary: bool,
    ) {
        let id = tel.uav;
        // The EDDI-side spoofing detector acts as the "additional
        // sensor" of §III-B: its finding feeds the GPS-spoofing
        // attack tree through the alert broker.
        if out.spoof.spoofed && !self.uavs[i].spoof_alerted {
            self.uavs[i].spoof_alerted = true;
            self.metrics.inc("ids.alerts");
            self.metrics.inc("ids.alerts.rule.gps_spoofing_suspected");
            self.trace.push(
                now.as_millis(),
                TraceEvent::IdsAlert {
                    detector: "eddi_spoof".into(),
                    detail: format!(
                        "{id}: innovation {:.1} m exceeds gate {:.1} m",
                        out.spoof.innovation_m, out.spoof.gate_m
                    ),
                },
            );
            for rule in ["gps_anomaly", "position_jump"] {
                self.broker.publish(
                    now,
                    "eddi",
                    format!("ids/alerts/{id}"),
                    Payload::Alert {
                        rule: rule.into(),
                        subject: id,
                        detail: format!(
                            "innovation {:.1} m exceeds gate {:.1} m",
                            out.spoof.innovation_m, out.spoof.gate_m
                        ),
                    },
                );
            }
            self.events.push(
                now,
                SystemEvent::SecurityAlert {
                    uav: id,
                    rule: "gps_spoofing_suspected".into(),
                    severity: Severity::Critical,
                },
            );
        }
        if i == 0 && second_boundary {
            self.pof_series
                .push((now.as_secs_f64(), out.reliability.pof));
            self.uncertainty_series
                .push((now.as_secs_f64(), out.combined_uncertainty));
        }
        // §V-B altitude adaptation.
        if self.config.altitude_adaptation
            && tel.mode == FlightMode::Mission
            && !self.uavs[i].cl_landing
            // Only adapt from a steady scan at the commanded
            // altitude — transients during climb/descent would
            // trigger the policy on mixed-altitude windows.
            && (tel.true_position.alt_m - self.current_scan_alt).abs() < 5.0
        {
            match self
                .altitude_policy
                .decide(tel.true_position.alt_m, out.combined_uncertainty)
            {
                AltitudeDecision::DescendTo(alt) | AltitudeDecision::ClimbTo(alt) => {
                    if (alt - self.current_scan_alt).abs() > 1.0 {
                        self.current_scan_alt = alt;
                        self.events.push(
                            now,
                            SystemEvent::MonitorFinding {
                                uav: id,
                                monitor: "sinadra".into(),
                                severity: Severity::Warning,
                                detail: format!("altitude adaptation -> {alt} m"),
                            },
                        );
                    }
                    self.sim.command(
                        handle_of(&self.uavs, i),
                        FlightCommand::SetMissionAltitude(alt),
                    );
                }
                AltitudeDecision::Maintain => {}
            }
        }
    }

    /// The guard at the head of one UAV's EDDI evaluation, run at the
    /// same position by both execution plans so the fault record — and
    /// everything downstream of it — is bit-identical across shard
    /// policies. Checks, in order: an armed scheduled panic (which is
    /// genuinely raised and caught, exercising the unwind path), then
    /// non-finite telemetry that must not reach the solver.
    fn eval_guard(&self, i: usize, tel: &UavTelemetry, now: SimTime) -> Option<UavFault> {
        let id = tel.uav;
        if self.compute_faults.panic_armed(i) {
            let payload =
                crate::shard::quiet_catch_unwind(|| panic!("chaos: scheduled eddi panic"))
                    .expect_err("the closure unconditionally panics");
            return Some(UavFault {
                uav: i,
                id,
                at: now,
                phase: FaultPhase::Injected,
                message: panic_message(payload.as_ref()),
            });
        }
        for (name, v) in [
            ("battery_soc", tel.battery_soc),
            ("battery_temp_c", tel.battery_temp_c),
            ("vision_health", tel.vision_health),
            ("link_quality", tel.link_quality),
        ] {
            if !v.is_finite() {
                return Some(UavFault {
                    uav: i,
                    id,
                    at: now,
                    phase: FaultPhase::Telemetry,
                    message: format!("non-finite {name} ({v})"),
                });
            }
        }
        None
    }

    /// The guard on one UAV's EDDI outputs: a non-finite
    /// probability-of-failure or combined uncertainty must not feed the
    /// series, the altitude policy or the ConSert evidence. Run at the
    /// merge position on both execution plans.
    fn output_guard(i: usize, id: UavId, out: &EddiOutputs, now: SimTime) -> Option<UavFault> {
        for (name, v) in [
            ("pof", out.reliability.pof),
            ("combined_uncertainty", out.combined_uncertainty),
        ] {
            if !v.is_finite() {
                return Some(UavFault {
                    uav: i,
                    id,
                    at: now,
                    phase: FaultPhase::Output,
                    message: format!("non-finite {name} ({v})"),
                });
            }
        }
        None
    }

    /// The serial per-UAV tick — the oracle every shard plan must
    /// reproduce bit for bit.
    fn step_uavs_serial(
        &mut self,
        telemetries: &[UavTelemetry],
        now: SimTime,
        second_boundary: bool,
        visibility: f64,
        span: &mut TickSpan,
    ) {
        let n = self.uavs.len();
        let mut det_events = std::mem::take(&mut self.scratch.det_events);
        for i in 0..n {
            // `telemetries` is the tick's local snapshot, not a `self`
            // field, so borrowing it alongside `&mut self` is fine — no
            // per-UAV clone needed.
            let tel = &telemetries[i];
            let id = tel.uav;
            self.uav_pre_pass(i, tel, now, visibility, &mut det_events);
            for ev in det_events.drain(..) {
                self.events.push(now, ev);
            }

            // EDDI tick (SESAME only; a quarantined UAV's engine is
            // frozen — the revival probe, not the tick, exercises it).
            if self.uavs[i].eddi.is_some() && self.uavs[i].quarantine.is_none() {
                span.enter(phase::EDDI_EVAL);
                if let Some(fault) = self.eval_guard(i, tel, now) {
                    self.pending_faults.push(fault);
                } else {
                    self.metrics.inc(&self.eddi_eval_keys[i]);
                    let scene = SceneCondition {
                        altitude_m: tel.true_position.alt_m,
                        visibility,
                    };
                    let remaining = self.estimated_remaining_mission(id);
                    // Invariant: `eddi.is_some()` holds — checked by the
                    // enclosing condition.
                    let eddi = self.uavs[i].eddi.as_mut().expect("checked above");
                    eddi.set_remaining_mission(remaining);
                    // Unwind safety: on a panic the engine's internal
                    // state is suspect, so the containment layer
                    // quarantines the UAV and never ticks this engine
                    // again (a release promotes a fresh probe engine).
                    match crate::shard::quiet_catch_unwind(|| eddi.tick(tel, &scene)) {
                        Ok(out) => {
                            if let Some(fault) = Self::output_guard(i, id, &out, now) {
                                self.pending_faults.push(fault);
                            } else {
                                self.uavs[i].last_good_outputs = Some(out.clone());
                                self.apply_eddi_outputs(i, tel, &out, now, second_boundary);
                            }
                        }
                        Err(payload) => self.pending_faults.push(UavFault {
                            uav: i,
                            id,
                            at: now,
                            phase: FaultPhase::EddiTick,
                            message: panic_message(payload.as_ref()),
                        }),
                    }
                }
            }
            span.enter(phase::SENSE_PUBLISH);

            // Trajectory sampling.
            if second_boundary {
                self.trajectories[i].push((now.as_secs_f64(), tel.true_position));
            }
        }
        self.scratch.det_events = det_events;
    }

    /// The sharded per-UAV tick. Five sub-phases:
    ///
    /// 1. **Pre-pass** (serial, fleet order): [`Self::uav_pre_pass`]
    ///    plus the EDDI ingest ([`UavEddiRuntime::begin_tick`]), which
    ///    fixes each UAV's Markov solve keys for this tick.
    /// 2. **Classify** (serial): group the fleet's `3 n` pending CTMC
    ///    solves into classes of identical [`SolveKey`]s, in fleet
    ///    order. UAVs sharing a profile share rate matrices, so a
    ///    500-UAV fleet typically needs a handful of distinct solves.
    /// 3. **Batched solve** (parallel): one pure uniformization solve
    ///    per class.
    /// 4. **Finish** (parallel over disjoint shard slices):
    ///    [`UavEddiRuntime::finish_tick`] adopts the primed
    ///    distributions and runs SafeML / DeepKnowledge / SINADRA / the
    ///    spoof gate — all per-UAV state.
    /// 5. **Merge** (serial, fleet order): buffered detection events,
    ///    spoof alerts, series samples and the altitude adaptation are
    ///    applied in exactly the serial order.
    fn step_uavs_sharded(
        &mut self,
        telemetries: &[UavTelemetry],
        now: SimTime,
        second_boundary: bool,
        visibility: f64,
        span: &mut TickSpan,
    ) {
        let n = self.uavs.len();
        // The tick scratch is taken wholesale for the duration of the
        // pass: every container below is warm from the previous tick.
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut det_events = std::mem::take(&mut scratch.det_events_per_uav);
        det_events.resize_with(n, Vec::new);
        let mut plans: Vec<Option<TickPlan>> = Vec::with_capacity(n);
        for i in 0..n {
            let tel = &telemetries[i];
            self.uav_pre_pass(i, tel, now, visibility, &mut det_events[i]);
            // Same gating and guard as the serial oracle, at the same
            // position — so injected and guard faults are bit-identical
            // across shard policies.
            let plan = if self.uavs[i].eddi.is_some() && self.uavs[i].quarantine.is_none() {
                if let Some(fault) = self.eval_guard(i, tel, now) {
                    self.pending_faults.push(fault);
                    None
                } else {
                    self.metrics.inc(&self.eddi_eval_keys[i]);
                    let remaining = self.estimated_remaining_mission(tel.uav);
                    // Invariant: `eddi.is_some()` holds — checked by the
                    // enclosing condition.
                    let eddi = self.uavs[i].eddi.as_mut().expect("checked above");
                    eddi.set_remaining_mission(remaining);
                    // Unwind safety: a panicking engine is quarantined
                    // and never ticked again (see the serial path).
                    match crate::shard::quiet_catch_unwind(|| eddi.begin_tick(tel)) {
                        Ok(plan) => Some(plan),
                        Err(payload) => {
                            self.pending_faults.push(UavFault {
                                uav: i,
                                id: tel.uav,
                                at: now,
                                phase: FaultPhase::EddiBegin,
                                message: panic_message(payload.as_ref()),
                            });
                            None
                        }
                    }
                }
            } else {
                None
            };
            plans.push(plan);
        }

        span.enter(phase::EDDI_EVAL);
        let mut class_of = std::mem::take(&mut scratch.class_of);
        class_of.clear();
        class_of.resize(n, [None; MARKOV_SLOTS]);
        let mut classes = std::mem::take(&mut scratch.classes);
        classes.clear();
        let mut class_index = std::mem::take(&mut scratch.class_index);
        class_index.clear();
        for i in 0..n {
            let Some(plan) = &plans[i] else { continue };
            let Some(keys) = plan.solve_keys() else {
                continue;
            };
            for slot in 0..MARKOV_SLOTS {
                let cid = *class_index
                    .entry((slot, keys[slot].clone()))
                    .or_insert_with(|| {
                        classes.push((i, slot, plan.dt()));
                        classes.len() - 1
                    });
                class_of[i][slot] = Some(cid);
            }
        }

        // Group the classes by batching identity: classes whose
        // representatives share a (slot, [`ProfileKey`]) differ only in
        // their current distribution, so one SoA uniformization pass
        // ([`CtmcProcess::solve_dists_batch`]) advances all of them with
        // bit-identical results — the Poisson weights depend only on the
        // rates and dt. Groups are solved serially: a fleet has a
        // handful of profiles, and the vectorization lives *inside* the
        // batch kernel, not across groups.
        let mut group_index = std::mem::take(&mut scratch.group_index);
        group_index.clear();
        let mut group_members = std::mem::take(&mut scratch.group_members);
        group_members.clear();
        let mut group_meta = std::mem::take(&mut scratch.group_meta);
        group_meta.clear();
        for (cid, &(rep, slot, dt)) in classes.iter().enumerate() {
            let key = self.uavs[rep]
                .eddi
                .as_ref()
                .expect("class representative has an EDDI")
                .safedrones()
                .markov_process(slot)
                .profile_key(dt.as_secs_f64());
            let gid = *group_index.entry((slot, key)).or_insert_with(|| {
                group_members.push(InlineVec::new());
                group_meta.push((slot, dt));
                group_members.len() - 1
            });
            group_members[gid].push(cid);
        }

        // One batched pure solve per group, results packed into the
        // arena-leased `solved` buffer (`class_span[cid]` is each
        // class's span). A solve that panics faults every member of
        // *every class in its group* — the members would all have hit
        // the same kernel assertion serially, since they share the rate
        // matrix and dt that drive it.
        let jobs = self.shards.len();
        let mut class_span = std::mem::take(&mut scratch.class_span);
        class_span.clear();
        class_span.resize(classes.len(), Err(String::new()));
        let mut solved = scratch.arena.take_f64(classes.len() * 8);
        let mut batch_out = scratch.arena.take_f64(0);
        {
            let uavs = &self.uavs;
            for (members, &(slot, dt)) in group_members.iter().zip(&group_meta) {
                let rep0 = classes[members[0]].0;
                // Invariant: `classes` was built from UAVs that passed
                // the eddi.is_some() gate this tick. If it ever breaks,
                // the catch below faults the group's members instead of
                // aborting the tick.
                let rep_proc = uavs[rep0]
                    .eddi
                    .as_ref()
                    .expect("class representative has an EDDI")
                    .safedrones()
                    .markov_process(slot);
                let state_len = rep_proc.distribution().len();
                let batch = &mut scratch.batch;
                let out = &mut batch_out;
                let solve = crate::shard::quiet_catch_unwind(|| {
                    // The ref list borrows the member processes, so it
                    // cannot outlive the tick — a small per-group alloc
                    // the arena cannot absorb.
                    let dist_refs: Vec<&[f64]> = members
                        .iter()
                        .map(|&cid| {
                            let (rep, s, _) = classes[cid];
                            uavs[rep]
                                .eddi
                                .as_ref()
                                .expect("class representative has an EDDI")
                                .safedrones()
                                .markov_process(s)
                                .distribution()
                        })
                        .collect();
                    rep_proc.solve_dists_batch(&dist_refs, dt.as_secs_f64(), out, batch);
                });
                match solve {
                    Ok(()) => {
                        for (d, &cid) in members.iter().enumerate() {
                            let start = solved.len();
                            solved.extend_from_slice(&batch_out[d * state_len..][..state_len]);
                            class_span[cid] = Ok((start, state_len));
                        }
                    }
                    Err(payload) => {
                        let message = panic_message(payload.as_ref());
                        for &cid in members.iter() {
                            class_span[cid] = Err(message.clone());
                        }
                    }
                }
            }
        }
        for i in 0..n {
            let failed = (0..MARKOV_SLOTS)
                .find_map(|slot| class_of[i][slot].and_then(|cid| class_span[cid].as_ref().err()));
            if let Some(message) = failed {
                plans[i] = None; // skip the finish; the fault quarantines it
                let message = message.clone();
                self.pending_faults.push(UavFault {
                    uav: i,
                    id: telemetries[i].uav,
                    at: now,
                    phase: FaultPhase::EddiSolve,
                    message,
                });
            }
        }

        // Finish each shard's UAVs in parallel: the shard slices are
        // disjoint `&mut` windows of the fleet, so no state is shared.
        let shards = &self.shards;
        let mut plan_chunks: Vec<Vec<Option<TickPlan>>> = Vec::with_capacity(shards.len());
        {
            let mut it = plans.into_iter();
            for r in shards {
                plan_chunks.push(it.by_ref().take(r.len()).collect());
            }
        }
        let mut works: Vec<ShardWork> = Vec::with_capacity(shards.len());
        {
            let mut rest = self.uavs.as_mut_slice();
            for (r, chunk) in shards.iter().zip(plan_chunks) {
                let (head, tail) = rest.split_at_mut(r.len());
                works.push((r.start, head, chunk));
                rest = tail;
            }
        }
        // Each UAV's finish is individually caught, so one panicking
        // engine faults one UAV instead of unwinding the whole shard.
        type FinishResult = Result<Option<EddiOutputs>, String>;
        let outs: Vec<FinishResult> = crate::shard::run_tasks(jobs, works, |_, work| {
            let start = work.0;
            let mut shard_outs = Vec::with_capacity(work.1.len());
            for k in 0..work.1.len() {
                let i = start + k;
                let out: FinishResult = match (work.2[k].take(), work.1[k].eddi.as_mut()) {
                    (Some(plan), Some(eddi)) => {
                        let tel = &telemetries[i];
                        let scene = SceneCondition {
                            altitude_m: tel.true_position.alt_m,
                            visibility,
                        };
                        let mut primes: [Option<&[f64]>; MARKOV_SLOTS] = [None; MARKOV_SLOTS];
                        for slot in 0..MARKOV_SLOTS {
                            if let Some(cid) = class_of[i][slot] {
                                // Invariant: a failed class excised its
                                // members above, so the lookup hits Ok.
                                if let Ok(&(start, len)) = class_span[cid].as_ref() {
                                    primes[slot] = Some(&solved[start..start + len]);
                                }
                            }
                        }
                        // Unwind safety: a panicking engine is
                        // quarantined and never ticked again.
                        crate::shard::quiet_catch_unwind(|| {
                            eddi.finish_tick(tel, &scene, plan, primes)
                        })
                        .map(Some)
                        .map_err(|payload| panic_message(payload.as_ref()))
                    }
                    _ => Ok(None),
                };
                shard_outs.push(out);
            }
            shard_outs
        })
        .into_iter()
        .flatten()
        .collect();

        for i in 0..n {
            let tel = &telemetries[i];
            for ev in det_events[i].drain(..) {
                self.events.push(now, ev);
            }
            match &outs[i] {
                Ok(Some(out)) => {
                    // Output guard at the merge position — exactly where
                    // the serial oracle checks it.
                    if let Some(fault) = Self::output_guard(i, tel.uav, out, now) {
                        self.pending_faults.push(fault);
                    } else {
                        self.uavs[i].last_good_outputs = Some(out.clone());
                        self.apply_eddi_outputs(i, tel, out, now, second_boundary);
                    }
                }
                Ok(None) => {}
                Err(message) => self.pending_faults.push(UavFault {
                    uav: i,
                    id: tel.uav,
                    at: now,
                    phase: FaultPhase::EddiFinish,
                    message: message.clone(),
                }),
            }
            // Trajectory sampling.
            if second_boundary {
                self.trajectories[i].push((now.as_secs_f64(), tel.true_position));
            }
        }
        // Return the leases and the scratch so next tick starts warm.
        scratch.arena.give_f64(batch_out);
        scratch.arena.give_f64(solved);
        scratch.det_events_per_uav = det_events;
        scratch.class_of = class_of;
        scratch.classes = classes;
        scratch.class_index = class_index;
        scratch.group_index = group_index;
        scratch.group_members = group_members;
        scratch.group_meta = group_meta;
        scratch.class_span = class_span;
        self.scratch = scratch;
        span.enter(phase::SENSE_PUBLISH);
    }

    /// The serial airspace pass — geofence updates plus the O(n²)
    /// nearest-teammate separation scan. The oracle for
    /// [`Self::step_airspace_sharded`].
    fn step_airspace_serial(&mut self, telemetries: &[UavTelemetry], now: SimTime) {
        let n = telemetries.len();
        // A quarantined UAV is excised from the separation scan (its
        // telemetry may be the corrupt readings that faulted it); the
        // geofence — which watches true position — keeps running.
        let mut quarantined = std::mem::take(&mut self.scratch.quarantined);
        quarantined.clear();
        quarantined.extend(self.uavs.iter().map(|u| u.quarantine.is_some()));
        for i in 0..n {
            let tel = &telemetries[i];
            if let Some(status) = self.geofences[i].update(&tel.true_position) {
                let severity = match status {
                    FenceStatus::Inside => Severity::Info,
                    FenceStatus::Margin => Severity::Warning,
                    FenceStatus::Breach => Severity::Critical,
                };
                self.events.push(
                    now,
                    SystemEvent::MonitorFinding {
                        uav: tel.uav,
                        monitor: "geofence".into(),
                        severity,
                        detail: format!("fence status -> {status:?}"),
                    },
                );
            }
            if self.config.sesame_enabled && tel.mode == FlightMode::Mission && !quarantined[i] {
                // Nearest airborne teammate and closing geometry.
                let mut nearest = f64::INFINITY;
                let mut converging = false;
                for j in 0..n {
                    if j == i || quarantined[j] || !telemetries[j].mode.is_airborne() {
                        continue;
                    }
                    let d = tel
                        .true_position
                        .distance_3d_m(&telemetries[j].true_position);
                    if d < nearest {
                        nearest = d;
                        // Converging when the relative velocity points at
                        // the teammate.
                        let rel = telemetries[j].true_position.to_enu(&tel.true_position);
                        let rel_v = tel.velocity - telemetries[j].velocity;
                        converging = rel_v.dot(&rel.into()) > 0.0;
                    }
                }
                if nearest.is_finite() {
                    self.assess_separation(i, tel, nearest, converging, now);
                }
            }
        }
        self.scratch.quarantined = quarantined;
    }

    /// The sharded airspace pass: the O(n²) proximity scan is a pure
    /// function of this tick's telemetry, so it fans out over the shard
    /// ranges; geofence updates, risk assessments and their events then
    /// merge serially in fleet order.
    fn step_airspace_sharded(&mut self, telemetries: &[UavTelemetry], now: SimTime) {
        let n = telemetries.len();
        let jobs = self.shards.len();
        let shards = &self.shards;
        let sesame = self.config.sesame_enabled;
        // Same excision as the serial oracle: quarantined UAVs are
        // neither subjects nor teammates of the separation scan.
        let mut quarantined = std::mem::take(&mut self.scratch.quarantined);
        quarantined.clear();
        quarantined.extend(self.uavs.iter().map(|u| u.quarantine.is_some()));
        let prox: Vec<Option<(f64, bool)>> = crate::shard::run_indexed(jobs, shards.len(), |s| {
            shards[s]
                .clone()
                .map(|i| {
                    let tel = &telemetries[i];
                    if !(sesame && tel.mode == FlightMode::Mission) || quarantined[i] {
                        return None;
                    }
                    // Nearest airborne teammate and closing geometry.
                    let mut nearest = f64::INFINITY;
                    let mut converging = false;
                    for j in 0..n {
                        if j == i || quarantined[j] || !telemetries[j].mode.is_airborne() {
                            continue;
                        }
                        let d = tel
                            .true_position
                            .distance_3d_m(&telemetries[j].true_position);
                        if d < nearest {
                            nearest = d;
                            // Converging when the relative velocity
                            // points at the teammate.
                            let rel = telemetries[j].true_position.to_enu(&tel.true_position);
                            let rel_v = tel.velocity - telemetries[j].velocity;
                            converging = rel_v.dot(&rel.into()) > 0.0;
                        }
                    }
                    nearest.is_finite().then_some((nearest, converging))
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        for i in 0..n {
            let tel = &telemetries[i];
            if let Some(status) = self.geofences[i].update(&tel.true_position) {
                let severity = match status {
                    FenceStatus::Inside => Severity::Info,
                    FenceStatus::Margin => Severity::Warning,
                    FenceStatus::Breach => Severity::Critical,
                };
                self.events.push(
                    now,
                    SystemEvent::MonitorFinding {
                        uav: tel.uav,
                        monitor: "geofence".into(),
                        severity,
                        detail: format!("fence status -> {status:?}"),
                    },
                );
            }
            if let Some((nearest, converging)) = prox[i] {
                self.assess_separation(i, tel, nearest, converging, now);
            }
        }
        self.scratch.quarantined = quarantined;
    }

    /// Runs the SINADRA separation assessment for one UAV against its
    /// precomputed nearest-teammate geometry and emits the rising-edge
    /// warning event. Shared verbatim by both airspace passes.
    fn assess_separation(
        &mut self,
        i: usize,
        tel: &UavTelemetry,
        nearest: f64,
        converging: bool,
        now: SimTime,
    ) {
        let assessment = self.separation.assess(&SeparationInputs {
            nearest_range_m: nearest,
            converging,
            detection_confidence: 0.9,
        });
        if assessment.hold_advised && !self.separation_hot[i] {
            self.separation_hot[i] = true;
            self.events.push(
                now,
                SystemEvent::MonitorFinding {
                    uav: tel.uav,
                    monitor: "separation".into(),
                    severity: Severity::Warning,
                    detail: format!(
                        "conflict probability {:.2} at {nearest:.0} m",
                        assessment.conflict_prob
                    ),
                },
            );
        } else if !assessment.hold_advised {
            self.separation_hot[i] = false;
        }
    }

    /// One supervision tick: run each UAV's health watchdog, command the
    /// safe fallback on demotion, and re-publish unacknowledged commands
    /// whose backoff expired.
    fn step_supervision(&mut self, now: SimTime) {
        let cfg = self.config.supervision.clone();
        for i in 0..self.uavs.len() {
            if let Some(tr) = self.supervisors[i].assess(now, &cfg) {
                self.record_health_transition(i, &tr, now);
                // The minimal-risk manoeuvre: a cut-off UAV heads home on
                // its own authority (the CL landing pipeline keeps
                // priority — it already owns the vehicle).
                if tr.to == HealthState::SafeFallback && !self.uavs[i].cl_landing {
                    let h = self.uavs[i].handle;
                    if self.sim.mode(h).is_airborne() {
                        self.sim.command(h, FlightCommand::ReturnToBase);
                    }
                }
            }
            self.metrics.set_gauge(
                &self.supervision_state_keys[i],
                self.supervisors[i].state().as_gauge(),
            );
        }

        // Command retries: collect due keys first (BTreeMap keeps the
        // order deterministic), then re-publish under fresh sequence
        // numbers so the IDS replay detector stays quiet.
        let due: Vec<(String, u64)> = self
            .pending_cmds
            .iter()
            .filter(|(_, pc)| now >= pc.next_retry_at)
            .map(|(k, _)| k.clone())
            .collect();
        for key in due {
            let Some(pc) = self.pending_cmds.remove(&key) else {
                continue;
            };
            if pc.attempts >= cfg.max_command_retries {
                self.metrics.inc("commands.retry_exhausted");
                self.trace.push(
                    now.as_millis(),
                    TraceEvent::BusDegraded {
                        context: "command_retry".into(),
                        detail: format!("{} dropped after {} attempts", key.0, pc.attempts),
                    },
                );
                continue;
            }
            let attempt = pc.attempts + 1;
            self.metrics.inc("commands.retried");
            self.trace.push(
                now.as_millis(),
                TraceEvent::CommandRetry {
                    topic: key.0.clone(),
                    attempt,
                },
            );
            self.publish_command(key.0, pc.payload, attempt);
        }
    }

    /// Records one UAV's health transition: counters, trace and the
    /// supervision event. Shared by the staleness watchdog path and the
    /// containment layer's quarantine/release transitions.
    fn record_health_transition(&mut self, i: usize, tr: &HealthTransition, now: SimTime) {
        let id = self.uavs[i].handle.id();
        self.metrics.inc("supervision.transitions");
        self.metrics
            .inc(&format!("supervision.to_{}", tr.to.as_str()));
        self.trace.push(
            now.as_millis(),
            TraceEvent::HealthTransition {
                uav: id.to_string(),
                from: tr.from.as_str().to_string(),
                to: tr.to.as_str().to_string(),
                reason: tr.reason.clone(),
            },
        );
        let severity = match tr.to {
            HealthState::Nominal => Severity::Info,
            HealthState::Degraded => Severity::Warning,
            HealthState::SafeFallback | HealthState::Quarantined => Severity::Critical,
        };
        self.events.push(
            now,
            SystemEvent::MonitorFinding {
                uav: id,
                monitor: "supervision".into(),
                severity,
                detail: format!("{} -> {}: {}", tr.from, tr.to, tr.reason),
            },
        );
    }

    /// The containment step: quarantine this tick's isolated faults, run
    /// the revival probes, feed the tick watchdog. Serial and in fleet
    /// order on both execution plans — the pending faults are sorted by
    /// fleet index first, so the processing order never depends on which
    /// plan (or which sub-phase of it) isolated them.
    fn step_containment(&mut self, telemetries: &[UavTelemetry], now: SimTime) {
        let n = self.uavs.len();
        let mut faults = std::mem::take(&mut self.pending_faults);
        faults.sort_by_key(|f| f.uav);
        let mut tick_faulted = vec![false; n];
        for f in &faults {
            tick_faulted[f.uav] = true;
        }
        // A solver stall is execution-plane only — outputs are
        // unchanged — but it strikes the watchdog like a fault.
        for (i, flag) in tick_faulted.iter_mut().enumerate() {
            if self.compute_faults.stalled(i) {
                self.metrics.inc("uav.fault.solver_stall_ticks");
                *flag = true;
            }
        }
        for fault in faults {
            self.metrics.inc("uav.fault.isolated");
            self.metrics
                .inc(&format!("uav.fault.phase.{}", fault.phase));
            self.trace.push(
                now.as_millis(),
                TraceEvent::UavFault {
                    uav: fault.id.to_string(),
                    phase: fault.phase.as_str().to_string(),
                    detail: fault.message.clone(),
                },
            );
            self.events.push(
                now,
                SystemEvent::MonitorFinding {
                    uav: fault.id,
                    monitor: "containment".into(),
                    severity: Severity::Critical,
                    detail: fault.describe(),
                },
            );
            if self.uavs[fault.uav].quarantine.is_none() {
                self.enter_quarantine(fault, now);
            }
        }

        self.step_revival_probes(telemetries, now);

        // The logical tick watchdog: a UAV faulting or stalling
        // `watchdog_trip_after` ticks in a row demotes the sharded tick
        // to the serial reference path for a cooldown. The demotion
        // state machine runs on every plan — on an already-serial plan
        // it is vacuous but its counters still tick, keeping the
        // wall-clock-free metrics identical across shard policies.
        let tripped = self.watchdog.observe(&tick_faulted);
        for i in tripped {
            let id = self.uavs[i].handle.id();
            self.metrics.inc("watchdog.trip");
            self.trace.push(
                now.as_millis(),
                TraceEvent::WatchdogTrip {
                    uav: id.to_string(),
                },
            );
            self.events.push(
                now,
                SystemEvent::Note(format!("{id}: tick watchdog tripped, demoting to serial")),
            );
            if self.demoted_until_tick.is_none() {
                self.metrics.inc("watchdog.demotions");
            }
            // A re-trip while demoted extends the cooldown.
            self.demoted_until_tick =
                Some(self.total_ticks + self.config.supervision.watchdog_cooldown_ticks);
            self.shards = shard_ranges(n, 1);
        }
        if let Some(until) = self.demoted_until_tick {
            if self.total_ticks >= until {
                self.demoted_until_tick = None;
                self.shards = self.base_shards.clone();
            } else {
                self.metrics.inc("watchdog.demoted_ticks");
            }
        }

        let active = self.uavs.iter().filter(|u| u.quarantine.is_some()).count();
        self.metrics
            .set_gauge("uav.quarantine.active", active as f64);
    }

    /// Quarantine entry: freeze the last-known-good outputs, mark the
    /// health state machine, and command RTB over the at-least-once GCS
    /// channel. The faulted engine stays in place but is never ticked
    /// again — a release promotes a fresh probe engine over it.
    fn enter_quarantine(&mut self, fault: UavFault, now: SimTime) {
        let i = fault.uav;
        let id = fault.id;
        self.metrics.inc("uav.quarantine.entered");
        self.uavs[i].frozen_outputs = self.uavs[i].last_good_outputs.clone();
        self.uavs[i].probe_eddi = None;
        let reason = fault.describe();
        let cell = QuarantineCell::new(
            fault,
            self.total_ticks,
            self.config.supervision.revival_backoff_ticks,
        );
        self.uavs[i].quarantine = Some(cell);
        if let Some(tr) = self.supervisors[i].quarantine(reason) {
            self.record_health_transition(i, &tr, now);
        }
        // The minimal-risk manoeuvre, over the retrying command channel
        // (the CL landing pipeline keeps priority — it owns the vehicle).
        if !self.uavs[i].cl_landing && self.sim.mode(self.uavs[i].handle).is_airborne() {
            self.publish_command(
                format!("/{id}/cmd/mode"),
                Payload::ModeCommand {
                    uav: id,
                    mode: "rtb".into(),
                },
                0,
            );
        }
    }

    /// The bounded-backoff revival probes: a quarantined UAV is probed
    /// on a *fresh* engine (the faulted one is suspect after its unwind)
    /// and released once `revival_clean_ticks` consecutive probes come
    /// back clean — no armed panic, finite inputs, a tick that neither
    /// panics nor produces non-finite outputs.
    fn step_revival_probes(&mut self, telemetries: &[UavTelemetry], now: SimTime) {
        if !self.config.supervision.quarantine_enabled {
            return; // retire mode: quarantined UAVs stay out for the run
        }
        let cfg = self.config.supervision.clone();
        let visibility = self.sim.world().visibility();
        for i in 0..self.uavs.len() {
            let due = self.uavs[i]
                .quarantine
                .as_ref()
                .is_some_and(|cell| self.total_ticks >= cell.next_probe_tick);
            if !due {
                continue;
            }
            self.metrics.inc("uav.quarantine.probes");
            let tel = &telemetries[i];
            // A probe can only be clean when the environment is: an
            // armed panic window or corrupt telemetry fails it up front
            // (without burning a tick on the probe engine).
            let mut clean = !self.compute_faults.panic_armed(i)
                && [
                    tel.battery_soc,
                    tel.battery_temp_c,
                    tel.vision_health,
                    tel.link_quality,
                ]
                .iter()
                .all(|v| v.is_finite());
            if clean {
                if self.uavs[i].probe_eddi.is_none() {
                    let fresh = self.fresh_eddi_engine(i);
                    self.uavs[i].probe_eddi = Some(fresh);
                }
                let remaining = self.estimated_remaining_mission(tel.uav);
                let scene = SceneCondition {
                    altitude_m: tel.true_position.alt_m,
                    visibility,
                };
                // Invariant: built two statements above when absent.
                let eddi = self.uavs[i].probe_eddi.as_mut().expect("built above");
                eddi.set_remaining_mission(remaining);
                // Unwind safety: a panicking probe engine is dropped and
                // rebuilt fresh at the next attempt.
                clean = match crate::shard::quiet_catch_unwind(|| eddi.tick(tel, &scene)) {
                    Ok(out) => {
                        out.reliability.pof.is_finite() && out.combined_uncertainty.is_finite()
                    }
                    Err(_) => false,
                };
            }
            let tick = self.total_ticks;
            if clean {
                // Invariant: `due` above proved the cell exists.
                let cell = self.uavs[i].quarantine.as_mut().expect("checked above");
                cell.probe_clean(tick);
                if cell.clean_ticks >= cfg.revival_clean_ticks {
                    self.release_from_quarantine(i, now);
                }
            } else {
                self.metrics.inc("uav.quarantine.probe_failures");
                // The probe engine's state is suspect after a failed
                // probe — rebuild fresh at the next attempt.
                self.uavs[i].probe_eddi = None;
                // Invariant: `due` above proved the cell exists.
                let cell = self.uavs[i].quarantine.as_mut().expect("checked above");
                cell.probe_failed(tick, cfg.revival_backoff_ticks, cfg.revival_backoff_cap);
            }
        }
    }

    /// Re-admission after a clean probe streak: the probe engine — whose
    /// state now reflects the recent telemetry — is promoted over the
    /// faulted one, the ConSert runtime is rebuilt fresh, and the health
    /// state machine returns to Nominal with fresh link signals.
    fn release_from_quarantine(&mut self, i: usize, now: SimTime) {
        let id = self.uavs[i].handle.id();
        self.metrics.inc("uav.quarantine.released");
        let promoted = self.uavs[i].probe_eddi.take();
        // Invariant: a release follows `revival_clean_ticks` clean
        // probes, each of which ticked the probe engine.
        self.uavs[i].eddi = Some(promoted.expect("release follows a clean probe streak"));
        if self.uavs[i].conserts.is_some() {
            let fresh = self.fresh_consert_runtime(i);
            self.uavs[i].conserts = Some(fresh);
        }
        self.uavs[i].quarantine = None;
        self.uavs[i].frozen_outputs = None;
        self.uavs[i].last_good_outputs = None;
        if let Some(tr) = self.supervisors[i].release(now, "revival probe streak clean") {
            self.record_health_transition(i, &tr, now);
        }
        self.events.push(
            now,
            SystemEvent::Note(format!("{id}: released from quarantine")),
        );
    }

    fn estimated_remaining_mission(&self, uav: UavId) -> SimDuration {
        // This UAV's remaining route at cruise speed, floor 30 s.
        let route = self.tasks.remaining_route(uav);
        let remaining_m = sesame_sar::coverage::path_length_m(&route);
        let secs = (remaining_m / 8.0).max(30.0);
        SimDuration::from_secs_f64(secs)
    }

    fn start_cl_landing(&mut self, affected: usize, now: SimTime) {
        if self.cl.is_some() || self.uavs[affected].cl_landing {
            return;
        }
        self.uavs[affected].cl_landing = true;
        let affected_handle = self.uavs[affected].handle;
        // The paper's mitigation flies the UAV GPS-denied: the operator
        // discards the captured receiver.
        self.sim.faults_mut().add(
            now + SimDuration::from_millis(100),
            affected_handle.id(),
            sesame_uav_sim::faults::FaultKind::GpsLoss,
        );
        self.sim.command(affected_handle, FlightCommand::Hold);
        // Collaborators: the other airborne UAVs approach the affected one.
        let affected_pos = self.sim.true_position(affected_handle);
        let mut collaborators = Vec::new();
        for (j, u) in self.uavs.iter().enumerate() {
            if j != affected && self.sim.mode(u.handle).is_airborne() {
                collaborators.push(j);
            }
        }
        for (k, &j) in collaborators.iter().enumerate() {
            let h = self.uavs[j].handle;
            let stand_off = affected_pos
                .destination(90.0 + 180.0 * k as f64, 30.0)
                .with_alt(affected_pos.alt_m + 5.0);
            self.sim
                .command(h, FlightCommand::SetMission(vec![stand_off]));
        }
        let agents: Vec<CollaborativeAgent> = collaborators
            .iter()
            .map(|j| {
                CollaborativeAgent::new(
                    format!("collab-{}", self.uavs[*j].handle.id()),
                    self.config.seed ^ ((*j as u64 + 7) << 32),
                )
            })
            .collect();
        if agents.is_empty() {
            return; // nobody can assist; the UAV holds position
        }
        self.cl = Some(ClState {
            affected,
            session: CollabSession::new(agents, affected_pos.with_alt(0.0)),
            guidance: None,
            collaborators,
        });
    }

    fn step_cl(&mut self, now: SimTime) {
        let Some(cl) = self.cl.as_mut() else { return };
        let affected_handle = self.uavs[cl.affected].handle;
        if self.sim.mode(affected_handle) == FlightMode::Grounded {
            // Touched down: score the landing.
            if self.cl_outcome.is_none() {
                let pad = cl
                    .guidance
                    .as_ref()
                    .map(|g| g.target())
                    .unwrap_or_else(|| self.sim.true_position(affected_handle));
                let miss = self
                    .sim
                    .true_position(affected_handle)
                    .haversine_distance_m(&pad);
                let outcome = ClLandingOutcome {
                    uav: affected_handle.id(),
                    miss_m: miss,
                    at: now,
                };
                self.cl_outcome = Some(outcome);
                self.events.push(
                    now,
                    SystemEvent::Landed(affected_handle.id(), "cl_safe_landing".into()),
                );
            }
            self.cl = None;
            return;
        }
        let affected_true = self.sim.true_position(affected_handle);
        let observer_positions: Vec<GeoPoint> = cl
            .collaborators
            .iter()
            .map(|j| self.sim.true_position(self.uavs[*j].handle))
            .collect();
        if let Some(fix) = cl.session.step(now, &observer_positions, &affected_true) {
            self.events.push(
                now,
                SystemEvent::CollabFix {
                    uav: affected_handle.id(),
                    error_m: fix.position.distance_3d_m(&affected_true),
                },
            );
            let guidance = cl.guidance.get_or_insert_with(|| {
                // First fix: land directly below the estimated position.
                LandingGuidance::new(fix.position.with_alt(0.0))
            });
            let v = guidance.velocity_command(&fix.position);
            self.sim.command_velocity(affected_handle, Some(v));
        }
    }

    fn step_conserts(&mut self, telemetries: &[UavTelemetry], now: SimTime, span: &mut TickSpan) {
        let n = self.uavs.len();
        let airborne: usize = telemetries.iter().filter(|t| t.mode.is_airborne()).count();
        let mut actions = std::mem::take(&mut self.scratch.actions);
        actions.clear();
        for i in 0..n {
            let tel = &telemetries[i];
            let id = tel.uav;
            if self.uavs[i].cl_landing {
                actions.push(UavAction::EmergencyLand); // under CL control
                continue;
            }
            // A quarantined UAV is excised from the composition: its
            // engine state is suspect and containment already commanded
            // RTB; declaring it aborting redistributes its tasks.
            if self.uavs[i].quarantine.is_some() {
                actions.push(UavAction::ReturnToBase);
                continue;
            }
            // A cut-off UAV is already flying home under supervision
            // authority; declaring it aborting here lets the mission
            // decider redistribute its remaining tasks.
            if self.config.supervision.enabled
                && self.supervisors[i].state() == HealthState::SafeFallback
            {
                actions.push(UavAction::ReturnToBase);
                continue;
            }
            let neighbors_available = airborne >= 3 && tel.link_quality > 0.4;
            let Some(eddi) = &self.uavs[i].eddi else {
                actions.push(UavAction::ContinueMission);
                continue;
            };
            let evidence = eddi.evidence(tel, self.uavs[i].attack_detected, neighbors_available);
            let Some(conserts) = self.uavs[i].conserts.as_mut() else {
                actions.push(UavAction::ContinueMission);
                continue;
            };
            // One call answers both the action and the accuracy bound —
            // the fast path evaluates the network at most once per tick.
            // The UAV name is cached at construction; the reference
            // catalog keys its network lookup on it every tick.
            let decision = conserts.decide(&self.uav_names[i], &evidence);
            let action = decision.action.unwrap_or(UavAction::EmergencyLand);
            self.uavs[i].last_nav_accuracy = decision.nav_accuracy_m;
            actions.push(action);
            let prev = self.manager.last_action(id);
            if let Some(cmd) = self.manager.translate_action(id, action) {
                self.sim.command(self.uavs[i].handle, cmd);
            }
            if prev != Some(action) {
                self.metrics.inc("consert.decisions");
                self.trace.push(
                    now.as_millis(),
                    TraceEvent::GuaranteeChanged {
                        uav: i,
                        from: prev.map_or_else(|| "none".to_string(), |a| a.to_string()),
                        to: action.to_string(),
                    },
                );
                self.events.push(
                    now,
                    SystemEvent::ConsertDecision {
                        uav: id,
                        guarantee: action.to_string(),
                    },
                );
            }
        }
        // Mission-level decider.
        span.enter(phase::DECIDE);
        let decision = decide_mission(&actions);
        if decision == MissionDecision::RedistributeTasks {
            // Redistribute the tasks of every aborting UAV once.
            for i in 0..n {
                let id = self.uavs[i].handle.id();
                if matches!(
                    actions[i],
                    UavAction::ReturnToBase | UavAction::EmergencyLand
                ) {
                    let capable: Vec<UavId> = (0..n)
                        .filter(|j| actions[*j].is_mission_capable())
                        .map(|j| self.uavs[j].handle.id())
                        .collect();
                    let moves = self.tasks.redistribute(id, &capable);
                    for (task, from, to) in moves {
                        self.events
                            .push(now, SystemEvent::TaskReallocated { task, from, to });
                        // Upload the inherited route to the new owner.
                        if let Some(j) = self.uavs.iter().position(|u| u.handle.id() == to) {
                            let route = self.tasks.remaining_route(to);
                            self.upload_route(j, route);
                        }
                    }
                }
            }
        }
        self.scratch.actions = actions;
    }

    /// The sharded ConSert pass. Each UAV's decision depends only on its
    /// own evidence, ConSert cache and telemetry, so the `decide` calls
    /// fan out over the disjoint shard slices; actuation, metrics,
    /// traces and events then merge serially in fleet order, replaying
    /// the serial tail exactly (the UAV manager's `last_action` edge
    /// detection is per-UAV, so the merge order preserves its stream).
    fn step_conserts_sharded(
        &mut self,
        telemetries: &[UavTelemetry],
        now: SimTime,
        span: &mut TickSpan,
    ) {
        let n = self.uavs.len();
        let airborne: usize = telemetries.iter().filter(|t| t.mode.is_airborne()).count();
        let mut fallback = std::mem::take(&mut self.scratch.fallback);
        fallback.clear();
        fallback.extend((0..n).map(|i| {
            self.config.supervision.enabled
                && self.supervisors[i].state() == HealthState::SafeFallback
        }));
        let fallback = fallback; // shared by the worker closures below
                                 // `Some(action)` iff the serial path would have evaluated this
                                 // UAV's ConSert; the merge distinguishes that from the static
                                 // CL-landing / fallback / no-runtime actions below.
        let jobs = self.shards.len();
        let shards = &self.shards;
        let uav_names = &self.uav_names;
        let mut works: Vec<(usize, &mut [UavRt])> = Vec::with_capacity(shards.len());
        {
            let mut rest = self.uavs.as_mut_slice();
            for r in shards {
                let (head, tail) = rest.split_at_mut(r.len());
                works.push((r.start, head));
                rest = tail;
            }
        }
        let decided: Vec<Option<UavAction>> = crate::shard::run_tasks(jobs, works, |_, work| {
            let start = work.0;
            let mut shard_actions = Vec::with_capacity(work.1.len());
            for (k, rt) in work.1.iter_mut().enumerate() {
                let i = start + k;
                let tel = &telemetries[i];
                if rt.cl_landing || rt.quarantine.is_some() || fallback[i] {
                    shard_actions.push(None);
                    continue;
                }
                let neighbors_available = airborne >= 3 && tel.link_quality > 0.4;
                let Some(eddi) = &rt.eddi else {
                    shard_actions.push(None);
                    continue;
                };
                let evidence = eddi.evidence(tel, rt.attack_detected, neighbors_available);
                let Some(conserts) = rt.conserts.as_mut() else {
                    shard_actions.push(None);
                    continue;
                };
                // One call answers both the action and the accuracy
                // bound — evaluated at most once per tick.
                let decision = conserts.decide(&uav_names[i], &evidence);
                rt.last_nav_accuracy = decision.nav_accuracy_m;
                shard_actions.push(Some(decision.action.unwrap_or(UavAction::EmergencyLand)));
            }
            shard_actions
        })
        .into_iter()
        .flatten()
        .collect();
        let mut actions = std::mem::take(&mut self.scratch.actions);
        actions.clear();
        for i in 0..n {
            let tel = &telemetries[i];
            let id = tel.uav;
            if self.uavs[i].cl_landing {
                actions.push(UavAction::EmergencyLand); // under CL control
                continue;
            }
            // Same order as the serial pass: CL → quarantine → fallback.
            if self.uavs[i].quarantine.is_some() {
                actions.push(UavAction::ReturnToBase);
                continue;
            }
            if fallback[i] {
                actions.push(UavAction::ReturnToBase);
                continue;
            }
            let Some(action) = decided[i] else {
                actions.push(UavAction::ContinueMission);
                continue;
            };
            actions.push(action);
            let prev = self.manager.last_action(id);
            if let Some(cmd) = self.manager.translate_action(id, action) {
                self.sim.command(self.uavs[i].handle, cmd);
            }
            if prev != Some(action) {
                self.metrics.inc("consert.decisions");
                self.trace.push(
                    now.as_millis(),
                    TraceEvent::GuaranteeChanged {
                        uav: i,
                        from: prev.map_or_else(|| "none".to_string(), |a| a.to_string()),
                        to: action.to_string(),
                    },
                );
                self.events.push(
                    now,
                    SystemEvent::ConsertDecision {
                        uav: id,
                        guarantee: action.to_string(),
                    },
                );
            }
        }
        // Mission-level decider.
        span.enter(phase::DECIDE);
        let decision = decide_mission(&actions);
        if decision == MissionDecision::RedistributeTasks {
            // Redistribute the tasks of every aborting UAV once.
            for i in 0..n {
                let id = self.uavs[i].handle.id();
                if matches!(
                    actions[i],
                    UavAction::ReturnToBase | UavAction::EmergencyLand
                ) {
                    let capable: Vec<UavId> = (0..n)
                        .filter(|j| actions[*j].is_mission_capable())
                        .map(|j| self.uavs[j].handle.id())
                        .collect();
                    let moves = self.tasks.redistribute(id, &capable);
                    for (task, from, to) in moves {
                        self.events
                            .push(now, SystemEvent::TaskReallocated { task, from, to });
                        // Upload the inherited route to the new owner.
                        if let Some(j) = self.uavs.iter().position(|u| u.handle.id() == to) {
                            let route = self.tasks.remaining_route(to);
                            self.upload_route(j, route);
                        }
                    }
                }
            }
        }
        self.scratch.actions = actions;
        self.scratch.fallback = fallback;
    }

    /// The baseline policy of §V-A: at the first battery symptom (sharp
    /// SoC drop), abort immediately, swap the battery at base
    /// (`battery_swap` long), then resume the remaining mission.
    fn step_baseline(&mut self, telemetries: &[UavTelemetry], now: SimTime) {
        for i in 0..self.uavs.len() {
            let tel = &telemetries[i];
            let handle = self.uavs[i].handle;
            // Symptom: battery temperature ≥ 45 °C or a drop below 50 %
            // while flying — the stock firmware aborts.
            let symptomatic = tel.battery_temp_c >= 45.0 || tel.battery_soc < 0.45;
            if symptomatic && tel.mode == FlightMode::Mission && self.uavs[i].swap_until.is_none() {
                self.sim.command(handle, FlightCommand::ReturnToBase);
                self.events.push(
                    now,
                    SystemEvent::Note(format!("{}: baseline abort on battery symptom", tel.uav)),
                );
            }
            // Grounded at base with a symptom history: swap.
            if tel.mode == FlightMode::Grounded && !self.uavs[i].baseline_resumed {
                match self.uavs[i].swap_until {
                    None => {
                        if tel.battery_temp_c >= 40.0 || tel.battery_soc < 0.45 {
                            self.uavs[i].swap_until = Some(now + self.config.battery_swap);
                        }
                    }
                    Some(t) if now >= t => {
                        self.sim.swap_battery(handle);
                        self.uavs[i].baseline_resumed = true;
                        self.uavs[i].swap_until = None;
                        // Relaunch and re-upload the remaining route.
                        self.sim
                            .command_takeoff(handle, self.config.scan_altitude_m);
                        self.uavs[i].route_uploaded = false;
                        self.events.push(
                            now,
                            SystemEvent::Note(format!("{}: battery swapped, resuming", tel.uav)),
                        );
                    }
                    Some(_) => {}
                }
            }
        }
    }

    fn snapshot(&self, telemetries: &[UavTelemetry], now: SimTime) -> StatusSnapshot {
        let uavs = telemetries
            .iter()
            .enumerate()
            .map(|(i, tel)| UavStatusLine {
                uav: tel.uav,
                position: tel.true_position,
                battery_soc: tel.battery_soc,
                mode: tel.mode,
                consert_action: self.manager.last_action(tel.uav),
                // A quarantined engine's state is suspect: report the
                // last-known-good outputs frozen at entry instead.
                pof: if self.uavs[i].quarantine.is_some() {
                    self.uavs[i]
                        .frozen_outputs
                        .as_ref()
                        .map(|o| o.reliability.pof)
                } else {
                    self.uavs[i]
                        .eddi
                        .as_ref()
                        .and_then(|e| e.last_outputs().map(|o| o.reliability.pof))
                },
            })
            .collect();
        StatusSnapshot {
            time: now,
            uavs,
            mission_decision: None,
            completion: self.tasks.completion(),
            persons_found: self.tasks.mission().findings().len(),
            metrics: self.metrics.snapshot(),
        }
    }

    /// Runs until the coverage completes and every UAV is grounded, or
    /// `deadline` passes.
    pub fn run_until_complete(&mut self, deadline: SimTime) {
        while self.now() < deadline {
            self.step();
            if self.mission_complete_at.is_some() {
                let all_down = self
                    .uavs
                    .iter()
                    .all(|u| !self.sim.mode(u.handle).is_airborne());
                if all_down {
                    break;
                }
            }
        }
    }

    /// Availability of one UAV: productive ticks over the mission window
    /// (up to coverage completion; the whole run if coverage never
    /// completed).
    pub fn availability(&self, index: usize) -> f64 {
        let (productive, window) = match self.ticks_at_completion {
            Some(ticks) => (self.productive_at_completion[index], ticks),
            None => (self.uavs[index].productive_ticks, self.total_ticks),
        };
        if window == 0 {
            return 0.0;
        }
        productive as f64 / window as f64
    }

    /// The certified navigation accuracy (metres) of one UAV from the
    /// latest ConSert evaluation; `None` before the first evaluation, when
    /// SESAME is off, or when only the emergency level holds.
    pub fn certified_nav_accuracy_m(&self, index: usize) -> Option<f64> {
        self.uavs[index].last_nav_accuracy
    }

    /// Detection statistics of one UAV: `(attempts, hits, false_positives)`.
    pub fn detection_stats(&self, index: usize) -> (u64, u64, u64) {
        let u = &self.uavs[index];
        (u.detection_attempts, u.detection_hits, u.false_positives)
    }

    /// Mission completion fraction.
    pub fn completion(&self) -> f64 {
        self.tasks.completion()
    }

    /// Assembles the holistic safety–security co-engineering report for
    /// one UAV (see [`crate::coengineering`]). Returns `None` when SESAME
    /// is disabled (there are no EDDIs to fuse).
    pub fn dependability_report(
        &self,
        index: usize,
    ) -> Option<crate::coengineering::DependabilityReport> {
        let eddi = self.uavs[index].eddi.as_ref()?;
        let id = self.uavs[index].handle.id();
        let security = self
            .security_eddis
            .iter()
            .map(|e| e.status_for(id))
            .collect();
        Some(crate::coengineering::DependabilityReport::assemble(
            id,
            self.sim.now(),
            eddi.safedrones().estimate(),
            security,
        ))
    }

    /// Number of UAVs.
    pub fn uav_count(&self) -> usize {
        self.uavs.len()
    }

    /// How many shards the tick actually runs in (`1` = the serial
    /// oracle). Resolved once from the fleet's [`crate::fleet::ShardPolicy`]
    /// at construction; sharding additionally requires the SESAME stack
    /// and the EDDI fast path.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The handle of UAV `index`.
    pub fn handle(&self, index: usize) -> UavHandle {
        self.uavs[index].handle
    }
}

fn handle_of(uavs: &[UavRt], i: usize) -> UavHandle {
    uavs[i].handle
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> PlatformConfig {
        PlatformConfig {
            area_width_m: 150.0,
            area_height_m: 100.0,
            person_count: 3,
            ..PlatformConfig::default()
        }
    }

    #[test]
    fn nominal_mission_completes_with_sesame() {
        let mut p = Platform::new(quick_config());
        p.launch();
        p.run_until_complete(SimTime::from_secs(600));
        assert!(p.mission_complete_at().is_some(), "completion by 600 s");
        assert!(p.completion() >= 1.0 - 1e-9);
        assert!(p.availability(0) > 0.5);
        assert!(!p.gcs().log().is_empty());
        assert!(p.series().attack_detected_at().is_none());
    }

    #[test]
    fn nominal_mission_completes_without_sesame() {
        let mut cfg = quick_config();
        cfg.sesame_enabled = false;
        let mut p = Platform::new(cfg);
        p.launch();
        p.run_until_complete(SimTime::from_secs(600));
        assert!(p.mission_complete_at().is_some());
        // No SESAME artefacts in the baseline run.
        assert!(p.series().pof().is_empty());
        assert!(p
            .events()
            .iter()
            .all(|e| !matches!(e.event, SystemEvent::ConsertDecision { .. })));
    }

    #[test]
    fn persons_are_found_during_survey() {
        let mut p = Platform::new(quick_config());
        p.launch();
        p.run_until_complete(SimTime::from_secs(600));
        assert!(
            !p.tasks().mission().findings().is_empty(),
            "3 persons in a small area must be seen"
        );
        let (attempts, hits, _) = p.detection_stats(0);
        let _ = (attempts, hits);
    }

    #[test]
    fn pof_series_is_sampled_per_second() {
        let mut p = Platform::new(quick_config());
        p.launch();
        for _ in 0..100 {
            p.step();
        }
        assert_eq!(p.series().pof().len(), 10);
        assert_eq!(p.series().trajectory(0).len(), 10);
        assert_eq!(p.series().uav_count(), 3);
    }

    #[test]
    fn dependability_report_reflects_live_state() {
        let mut p = Platform::new(quick_config());
        p.launch();
        for _ in 0..100 {
            p.step();
        }
        let report = p.dependability_report(0).expect("SESAME is on");
        assert_eq!(
            report.verdict,
            crate::coengineering::DependabilityVerdict::Dependable
        );
        assert!(report.render().contains("dependable"));
        // Baseline has no EDDIs to fuse.
        let mut cfg = quick_config();
        cfg.sesame_enabled = false;
        let baseline = Platform::new(cfg);
        assert!(baseline.dependability_report(0).is_none());
    }

    #[test]
    fn builder_validates_and_builds() {
        let cfg = PlatformConfig::builder()
            .fleet(FleetSpec::uniform(2))
            .scan_altitude_m(25.0)
            .area_m(200.0, 100.0)
            .person_count(4)
            .seed(9)
            .visibility(0.8)
            .motors(6, 1)
            .build()
            .expect("valid config");
        assert_eq!(cfg.fleet.total(), 2);
        assert_eq!(cfg.motor_count, 6);
        assert_eq!(cfg.tolerated_motor_failures, 1);

        // The deprecated shim produces an identical config.
        #[allow(deprecated)]
        let shimmed = PlatformConfig::builder().uav_count(2).build().unwrap();
        assert_eq!(shimmed.fleet, FleetSpec::uniform(2));

        assert_eq!(
            PlatformConfig::builder()
                .fleet(FleetSpec::uniform(0))
                .build()
                .unwrap_err(),
            ConfigError::NoUavs
        );
        // Per-group profile validation resolves against the defaults.
        assert_eq!(
            PlatformConfig::builder()
                .fleet(
                    FleetSpec::builder()
                        .group(2, crate::fleet::UavProfile::default().motors(5, 0))
                        .build()
                )
                .build()
                .unwrap_err(),
            ConfigError::UnsupportedMotorCount
        );
        assert_eq!(
            PlatformConfig::builder()
                .scan_altitude_m(0.0)
                .build()
                .unwrap_err(),
            ConfigError::NonPositiveAltitude
        );
        assert_eq!(
            PlatformConfig::builder()
                .area_m(0.0, 100.0)
                .build()
                .unwrap_err(),
            ConfigError::EmptyArea
        );
        assert_eq!(
            PlatformConfig::builder()
                .visibility(1.5)
                .build()
                .unwrap_err(),
            ConfigError::VisibilityOutOfRange
        );
        assert_eq!(
            PlatformConfig::builder().motors(5, 0).build().unwrap_err(),
            ConfigError::UnsupportedMotorCount
        );
        assert_eq!(
            PlatformConfig::builder().motors(4, 4).build().unwrap_err(),
            ConfigError::TooManyToleratedFailures
        );
        assert!(!ConfigError::NoUavs.to_string().is_empty());
    }

    #[test]
    fn step_populates_metrics_and_snapshot() {
        let mut p = Platform::new(quick_config());
        p.launch();
        for _ in 0..100 {
            p.step();
        }
        let m = p.metrics();
        assert_eq!(m.counter("platform.ticks"), 100);
        assert_eq!(m.counter("eddi.evals.uav0"), 100);
        assert!(m.histogram("tick.total").is_some());
        for name in phase::ALL {
            let hist = m.histogram(&sesame_obs::span::phase_metric(name));
            assert!(hist.is_some(), "phase {name} must be timed");
        }
        assert!(m.gauge("fleet.airborne").is_some());
        assert!(m.counter("bus.published") > 0);

        // The GCS snapshot carries the same registry, condensed.
        let snap = p.gcs().latest().expect("5 s boundary passed");
        assert!(snap.metrics.counter("platform.ticks") > 0);
        assert_eq!(
            p.metrics_snapshot().counter("platform.ticks"),
            m.counter("platform.ticks")
        );
    }

    #[test]
    fn gcs_link_blackout_degrades_then_falls_back_then_recovers() {
        use sesame_middleware::chaos::CommFaultKind;

        let mut p = Platform::new(quick_config());
        p.launch();
        for _ in 0..50 {
            p.step();
        }
        assert_eq!(p.health(0), HealthState::Nominal);

        // Cut uav1 off completely for 10 s.
        let now = p.now();
        p.comm_faults_mut().schedule(
            now,
            SimDuration::from_secs(10),
            CommFaultKind::LinkBlackout { uav: UavId::new(1) },
        );

        // Inside the degraded window (staleness ≥ 2 s, < 6 s).
        for _ in 0..30 {
            p.step();
        }
        assert_eq!(p.health(0), HealthState::Degraded);
        assert_eq!(p.health(1), HealthState::Nominal, "only uav1 is cut off");

        // Past the fallback window.
        for _ in 0..40 {
            p.step();
        }
        assert_eq!(p.health(0), HealthState::SafeFallback);
        let m = p.metrics();
        assert!(m.counter("supervision.to_degraded") >= 1);
        assert!(m.counter("supervision.to_safe_fallback") >= 1);
        assert_eq!(m.gauge("supervision.state.uav0"), Some(2.0));
        assert!(p.trace().count_kind("health_transition") >= 2);
        assert!(p.trace().count_kind("comm_fault") >= 1);

        // Blackout expires; fresh traffic restores Nominal.
        for _ in 0..80 {
            p.step();
        }
        assert_eq!(p.health(0), HealthState::Nominal);
        assert!(p.metrics().counter("supervision.to_nominal") >= 1);
    }

    #[test]
    fn dead_subscription_degrades_instead_of_panicking() {
        let mut p = Platform::new(quick_config());
        p.launch();
        p.step();
        let tap = p.ids_tap;
        p.bus
            .unsubscribe(tap)
            .expect("tap is live before the test kills it");
        for _ in 0..5 {
            p.step(); // must not panic
        }
        assert!(p.metrics().counter("bus.drain_failures") >= 5);
        assert!(p.metrics().counter("bus.drain_failures.ids_tap") >= 5);
        assert!(p.trace().count_kind("bus_degraded") >= 1);
    }

    #[test]
    fn commands_exhaust_their_retry_budget_over_a_dead_uplink() {
        use sesame_middleware::chaos::{CommFaultKind, LinkDirection};

        let mut p = Platform::new(quick_config());
        p.launch();
        for _ in 0..50 {
            p.step();
        }
        // Uplink dies for longer than the whole backoff ladder
        // (0.4 + 0.8 + 1.6 + 3.2 s), so every retry is swallowed too.
        let now = p.now();
        p.comm_faults_mut().schedule(
            now,
            SimDuration::from_secs(10),
            CommFaultKind::AsymmetricPartition {
                uav: UavId::new(1),
                direction: LinkDirection::Uplink,
            },
        );
        p.step();
        let wp = p.sim.true_position(p.uavs[0].handle).destination(0.0, 50.0);
        p.upload_route(0, vec![wp]);
        for _ in 0..110 {
            p.step();
        }
        let m = p.metrics();
        assert!(m.counter("commands.retried") >= 3, "full ladder walked");
        assert!(m.counter("commands.retry_exhausted") >= 1, "then gave up");
        assert!(p.trace().count_kind("command_retry") >= 3);
        assert!(p.pending_cmds.is_empty(), "nothing left pending");
        // Heartbeats died with the uplink: uav1 was demoted too.
        assert!(m.counter("supervision.to_degraded") >= 1);
    }

    #[test]
    fn retried_command_is_delivered_once_the_uplink_recovers() {
        use sesame_middleware::chaos::{CommFaultKind, LinkDirection};

        let mut p = Platform::new(quick_config());
        p.launch();
        for _ in 0..50 {
            p.step();
        }
        // A short 1 s outage: the initial publish and possibly the first
        // retry are lost, a later retry lands.
        let now = p.now();
        p.comm_faults_mut().schedule(
            now,
            SimDuration::from_secs(1),
            CommFaultKind::AsymmetricPartition {
                uav: UavId::new(1),
                direction: LinkDirection::Uplink,
            },
        );
        p.step();
        let applied_before = p.metrics.counter("commands.applied");
        let wp = p.sim.true_position(p.uavs[0].handle).destination(0.0, 50.0);
        p.upload_route(0, vec![wp]);
        for _ in 0..40 {
            p.step();
        }
        let m = p.metrics();
        assert!(m.counter("commands.retried") >= 1, "a retry fired");
        assert!(
            m.counter("commands.applied") > applied_before,
            "the retried waypoint was applied"
        );
        assert!(p.pending_cmds.is_empty(), "delivery acknowledged");
        assert_eq!(m.counter("commands.retry_exhausted"), 0);
    }

    /// A fast-path platform and a reference-path platform stepped in
    /// lockstep from the same seed agree bit for bit on every recorded
    /// series and decision — only the cache counters differ.
    #[test]
    fn eddi_fast_path_matches_reference_run() {
        let mut fast = Platform::new(quick_config());
        let mut cfg = quick_config();
        cfg.eddi_fast_path = false;
        let mut reference = Platform::new(cfg);
        fast.launch();
        reference.launch();
        for _ in 0..80 {
            fast.step();
            reference.step();
        }
        let (f, r) = (fast.series(), reference.series());
        assert_eq!(f.pof().len(), r.pof().len());
        for (a, b) in f.pof().iter().zip(r.pof()) {
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "pof diverged at t={}", a.0);
        }
        for (a, b) in f.uncertainty().iter().zip(r.uncertainty()) {
            assert_eq!(
                a.1.to_bits(),
                b.1.to_bits(),
                "uncertainty diverged at t={}",
                a.0
            );
        }
        for i in 0..fast.uav_count() {
            assert_eq!(
                fast.certified_nav_accuracy_m(i),
                reference.certified_nav_accuracy_m(i),
                "nav accuracy diverged for uav{i}"
            );
        }
        assert_eq!(
            fast.events().iter().count(),
            reference.events().iter().count()
        );
        // The fast path actually cached; the reference path reports zero.
        assert!(fast.metrics().counter("eddi.cache.hit") > 0);
        assert_eq!(reference.metrics().counter("eddi.cache.hit"), 0);
        assert_eq!(reference.metrics().counter("eddi.cache.miss"), 0);
    }

    #[test]
    fn builder_sets_eddi_fast_path() {
        let cfg = PlatformConfig::builder()
            .eddi_fast_path(false)
            .build()
            .expect("valid config");
        assert!(!cfg.eddi_fast_path);
        assert!(PlatformConfig::default().eddi_fast_path, "fast by default");
    }

    #[test]
    fn database_collects_fleet_history() {
        let mut p = Platform::new(quick_config());
        p.launch();
        for _ in 0..50 {
            p.step();
        }
        let id = p.handle(0).id();
        let history = p.database_mut().history("net:gcs", id).unwrap();
        assert_eq!(history.len(), 50);
    }
}
