//! Crash containment: the compute-plane fault vocabulary, the scheduled
//! compute-fault injector, and the tick watchdog.
//!
//! PR 6's sharded tick made one UAV's panic everyone's problem: an
//! unwound worker tore down the whole campaign. This module supplies the
//! pieces the orchestrator threads through the tick to contain that
//! blast radius:
//!
//! * [`UavFault`] / [`FaultPhase`] — the structured record a caught
//!   panic (or a non-finite EDDI output) is converted into, in place of
//!   a process abort;
//! * [`ComputeFaultPlane`] — scheduled compute faults (EDDI panics,
//!   NaN/Inf telemetry corruption, solver stalls) with the same
//!   schedule / activate / expire lifecycle as the middleware's
//!   `CommFaultPlane`, driven once per tick from `Platform::step`;
//! * [`TickWatchdog`] — a logical (tick-count based, so determinism
//!   holds) deadline monitor that demotes the sharded tick to the serial
//!   reference path while a UAV keeps faulting or stalling;
//! * [`QuarantineCell`] — the per-UAV bookkeeping of the
//!   Quarantined state: entry fault, clean-probe streak and the bounded
//!   exponential backoff of the revival probe.
//!
//! Everything here is plain data plus pure bookkeeping; the actual
//! `catch_unwind` sites, excision from solve-class dedup / airspace /
//! ConSert composition, and the revival probe's reference-engine ticks
//! live in `core::orchestrator`, where the state they guard lives.

use sesame_types::ids::UavId;
use sesame_types::telemetry::UavTelemetry;
use sesame_types::time::{SimDuration, SimTime};

pub use crate::shard::{panic_message, TaskPanic};

/// Where in the per-UAV tick a fault was isolated.
///
/// Injected faults ([`ComputeFaultKind::EddiPanic`]) and the input /
/// output validation guards fire at the same point of the serial and the
/// sharded tick, so their fault records are bit-identical across shard
/// policies. The organic phases (`EddiBegin`/`EddiSolve`/`EddiFinish`
/// vs. `EddiTick`) name where the respective execution plan actually
/// caught an unexpected unwind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPhase {
    /// A scheduled [`ComputeFaultKind::EddiPanic`] fired at the head of
    /// the UAV's EDDI evaluation (identical on both execution plans).
    Injected,
    /// Non-finite telemetry rejected by the input guard at the head of
    /// the EDDI evaluation (identical on both execution plans).
    Telemetry,
    /// The EDDI produced a non-finite probability-of-failure or
    /// combined uncertainty (identical on both execution plans).
    Output,
    /// Organic panic inside the serial whole-tick EDDI evaluation.
    EddiTick,
    /// Organic panic inside the sharded tick's `begin_tick` pre-pass.
    EddiBegin,
    /// Organic panic inside a batched solve-class Markov solve; faults
    /// every UAV of the class (they share the solve bit-for-bit).
    EddiSolve,
    /// Organic panic inside the sharded tick's `finish_tick`.
    EddiFinish,
    /// Organic panic inside the UAV's ConSert decision.
    ConsertDecide,
}

impl FaultPhase {
    /// Stable snake_case label for traces and events.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultPhase::Injected => "injected",
            FaultPhase::Telemetry => "telemetry",
            FaultPhase::Output => "output",
            FaultPhase::EddiTick => "eddi_tick",
            FaultPhase::EddiBegin => "eddi_begin",
            FaultPhase::EddiSolve => "eddi_solve",
            FaultPhase::EddiFinish => "eddi_finish",
            FaultPhase::ConsertDecide => "consert_decide",
        }
    }
}

impl std::fmt::Display for FaultPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A contained per-UAV compute fault: what a panic or a validation-guard
/// hit becomes instead of a campaign abort.
#[derive(Debug, Clone, PartialEq)]
pub struct UavFault {
    /// Fleet index of the faulted UAV.
    pub uav: usize,
    /// Its id (for logs; `uav{n}`).
    pub id: UavId,
    /// Sim time of the tick that isolated the fault.
    pub at: SimTime,
    /// Where in the tick it was caught.
    pub phase: FaultPhase,
    /// The panic payload (or guard description) as text.
    pub message: String,
}

impl UavFault {
    /// One-line rendering for events: `uav1 faulted at output: pof is NaN`.
    pub fn describe(&self) -> String {
        format!("{} faulted at {}: {}", self.id, self.phase, self.message)
    }
}

/// The scheduled compute-plane fault kinds, targeting one UAV by fleet
/// index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeFaultKind {
    /// The UAV's EDDI evaluation panics at its head while the window is
    /// active (the poisoned-index / solver-crash stand-in).
    EddiPanic {
        /// Target fleet index.
        uav: usize,
    },
    /// The UAV's battery / vision / link telemetry fields read NaN.
    TelemetryNan {
        /// Target fleet index.
        uav: usize,
    },
    /// The UAV's battery / vision / link telemetry fields read +inf.
    TelemetryInf {
        /// Target fleet index.
        uav: usize,
    },
    /// The UAV's solver blows its logical tick deadline. Execution-plane
    /// only: outputs are unchanged, but the [`TickWatchdog`] counts the
    /// stall and eventually demotes the sharded tick to serial.
    SolverStall {
        /// Target fleet index.
        uav: usize,
    },
}

impl ComputeFaultKind {
    /// Stable label for traces, reports and schedules.
    pub fn label(&self) -> String {
        match self {
            ComputeFaultKind::EddiPanic { uav } => format!("eddi_panic(uav{uav})"),
            ComputeFaultKind::TelemetryNan { uav } => format!("telemetry_nan(uav{uav})"),
            ComputeFaultKind::TelemetryInf { uav } => format!("telemetry_inf(uav{uav})"),
            ComputeFaultKind::SolverStall { uav } => format!("solver_stall(uav{uav})"),
        }
    }

    /// The targeted fleet index.
    pub fn uav(&self) -> usize {
        match self {
            ComputeFaultKind::EddiPanic { uav }
            | ComputeFaultKind::TelemetryNan { uav }
            | ComputeFaultKind::TelemetryInf { uav }
            | ComputeFaultKind::SolverStall { uav } => *uav,
        }
    }
}

/// A scheduled compute fault: a kind plus its active window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeFault {
    /// Activation time.
    pub at: SimTime,
    /// Expiry time (exclusive).
    pub until: SimTime,
    /// What misbehaves while active.
    pub kind: ComputeFaultKind,
}

/// Lifecycle of one scheduled compute fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Window {
    Pending,
    Active,
    Done,
}

/// An activation or expiry reported by [`ComputeFaultPlane::step`].
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeFaultTransition {
    /// The fault's stable label.
    pub label: String,
    /// `true` on activation, `false` on expiry.
    pub activated: bool,
    /// The transitioning fault.
    pub fault: ComputeFault,
}

/// The scheduled compute-fault injector — `CommFaultPlane`'s sibling for
/// the compute plane. Faults are scheduled up front, stepped once per
/// tick, and queried by the orchestrator at the points of the tick they
/// corrupt.
#[derive(Debug, Clone, Default)]
pub struct ComputeFaultPlane {
    entries: Vec<(ComputeFault, Window)>,
}

impl ComputeFaultPlane {
    /// An empty plane (no scheduled faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to hold from `at` for `duration`.
    pub fn schedule(&mut self, at: SimTime, duration: SimDuration, kind: ComputeFaultKind) {
        self.entries.push((
            ComputeFault {
                at,
                until: at + duration,
                kind,
            },
            Window::Pending,
        ));
    }

    /// Advances the schedule to `now`, returning every activation and
    /// expiry that occurred (in schedule order).
    pub fn step(&mut self, now: SimTime) -> Vec<ComputeFaultTransition> {
        let mut out = Vec::new();
        for (fault, window) in &mut self.entries {
            match window {
                Window::Pending if now >= fault.at => {
                    *window = if now >= fault.until {
                        // Zero-length or already-expired window: never active.
                        Window::Done
                    } else {
                        Window::Active
                    };
                    if *window == Window::Active {
                        out.push(ComputeFaultTransition {
                            label: fault.kind.label(),
                            activated: true,
                            fault: *fault,
                        });
                    }
                }
                Window::Active if now >= fault.until => {
                    *window = Window::Done;
                    out.push(ComputeFaultTransition {
                        label: fault.kind.label(),
                        activated: false,
                        fault: *fault,
                    });
                }
                _ => {}
            }
        }
        out
    }

    /// Currently-active faults.
    pub fn active(&self) -> Vec<ComputeFault> {
        self.entries
            .iter()
            .filter(|(_, w)| *w == Window::Active)
            .map(|(f, _)| *f)
            .collect()
    }

    /// Faults not yet activated.
    pub fn pending(&self) -> Vec<ComputeFault> {
        self.entries
            .iter()
            .filter(|(_, w)| *w == Window::Pending)
            .map(|(f, _)| *f)
            .collect()
    }

    /// Every scheduled fault regardless of lifecycle state.
    pub fn scheduled(&self) -> Vec<ComputeFault> {
        self.entries.iter().map(|(f, _)| *f).collect()
    }

    /// Whether an [`ComputeFaultKind::EddiPanic`] window is active for
    /// the UAV at fleet index `uav`.
    pub fn panic_armed(&self, uav: usize) -> bool {
        self.is_active(|k| matches!(k, ComputeFaultKind::EddiPanic { uav: u } if *u == uav))
    }

    /// Whether a [`ComputeFaultKind::SolverStall`] window is active for
    /// the UAV at fleet index `uav`.
    pub fn stalled(&self, uav: usize) -> bool {
        self.is_active(|k| matches!(k, ComputeFaultKind::SolverStall { uav: u } if *u == uav))
    }

    /// Applies any active telemetry-corruption fault for fleet index
    /// `uav` to `t`, returning `true` if fields were corrupted. Position
    /// and GPS are left intact — the corruption models failed sensor
    /// *readings*, not a teleporting airframe.
    pub fn corrupt_telemetry(&self, uav: usize, t: &mut UavTelemetry) -> bool {
        let value = if self
            .is_active(|k| matches!(k, ComputeFaultKind::TelemetryNan { uav: u } if *u == uav))
        {
            f64::NAN
        } else if self
            .is_active(|k| matches!(k, ComputeFaultKind::TelemetryInf { uav: u } if *u == uav))
        {
            f64::INFINITY
        } else {
            return false;
        };
        t.battery_soc = value;
        t.battery_temp_c = value;
        t.vision_health = value;
        t.link_quality = value;
        true
    }

    fn is_active(&self, pred: impl Fn(&ComputeFaultKind) -> bool) -> bool {
        self.entries
            .iter()
            .any(|(f, w)| *w == Window::Active && pred(&f.kind))
    }
}

/// Logical tick-deadline watchdog: counts, per UAV, consecutive ticks in
/// which the UAV faulted or its solver stalled, and trips once the
/// streak reaches `trip_after`. The platform reacts to a trip by
/// demoting the sharded tick to the serial reference path for a
/// cooldown.
///
/// Strikes are per *UAV*, not per shard, so the trip schedule — and the
/// `watchdog.trip` counter it drives — is identical under every
/// [`crate::fleet::ShardPolicy`] (a shard-keyed count would depend on
/// the partition layout and break bit-identity across shard counts).
#[derive(Debug, Clone)]
pub struct TickWatchdog {
    strikes: Vec<u64>,
    trip_after: u64,
}

impl TickWatchdog {
    /// A watchdog over `fleet` UAVs tripping after `trip_after`
    /// consecutive faulty ticks (clamped to at least 1).
    pub fn new(fleet: usize, trip_after: u64) -> Self {
        TickWatchdog {
            strikes: vec![0; fleet],
            trip_after: trip_after.max(1),
        }
    }

    /// Feeds one tick's per-UAV fault/stall flags; returns the fleet
    /// indices that tripped this tick (streak reached `trip_after`), in
    /// fleet order. A tripped UAV's streak restarts, so a persistent
    /// stall re-trips every `trip_after` ticks, extending the demotion.
    pub fn observe(&mut self, faulted: &[bool]) -> Vec<usize> {
        let mut tripped = Vec::new();
        for (i, strikes) in self.strikes.iter_mut().enumerate() {
            if faulted.get(i).copied().unwrap_or(false) {
                *strikes += 1;
                if *strikes >= self.trip_after {
                    *strikes = 0;
                    tripped.push(i);
                }
            } else {
                *strikes = 0;
            }
        }
        tripped
    }

    /// Current streak of the UAV at fleet index `uav`.
    pub fn strikes(&self, uav: usize) -> u64 {
        self.strikes.get(uav).copied().unwrap_or(0)
    }
}

/// Per-UAV quarantine bookkeeping: the fault that triggered entry and
/// the revival probe's streak / backoff state. The probe engine itself
/// (a fresh reference EDDI) lives in the orchestrator's `UavRt`.
#[derive(Debug, Clone)]
pub struct QuarantineCell {
    /// The fault that put the UAV here.
    pub fault: UavFault,
    /// Tick index at quarantine entry.
    pub entered_tick: u64,
    /// Consecutive clean probe ticks so far.
    pub clean_ticks: u64,
    /// Failed-probe count, bounded by the backoff cap.
    pub backoff_exp: u32,
    /// Next tick index at which the revival probe runs.
    pub next_probe_tick: u64,
}

impl QuarantineCell {
    /// Opens a cell at `tick` for `fault`; the first probe runs
    /// `backoff_base` ticks later.
    pub fn new(fault: UavFault, tick: u64, backoff_base: u64) -> Self {
        QuarantineCell {
            fault,
            entered_tick: tick,
            clean_ticks: 0,
            backoff_exp: 0,
            next_probe_tick: tick.saturating_add(backoff_base.max(1)),
        }
    }

    /// Records a clean probe tick at `tick`: the streak advances and the
    /// probe re-runs next tick (a revival candidate is probed every tick
    /// until it either completes the streak or faults again).
    pub fn probe_clean(&mut self, tick: u64) {
        self.clean_ticks += 1;
        self.next_probe_tick = tick + 1;
    }

    /// Records a failed probe at `tick`: the streak resets and the next
    /// probe backs off exponentially, bounded by `cap`.
    pub fn probe_failed(&mut self, tick: u64, backoff_base: u64, cap: u32) {
        self.clean_ticks = 0;
        self.backoff_exp = (self.backoff_exp + 1).min(cap);
        let spacing = backoff_base.max(1).saturating_shl(self.backoff_exp);
        self.next_probe_tick = tick.saturating_add(spacing);
    }
}

/// `u64::checked_shl` that saturates instead of wrapping — backoff
/// spacings stay monotone even at absurd exponents.
trait SaturatingShl {
    fn saturating_shl(self, exp: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, exp: u32) -> u64 {
        self.checked_shl(exp).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesame_types::geo::GeoPoint;
    use sesame_types::telemetry::UavTelemetry;

    fn telemetry() -> UavTelemetry {
        UavTelemetry::nominal(UavId::new(1), SimTime::ZERO, GeoPoint::default())
    }

    #[test]
    fn plane_walks_pending_active_done() {
        let mut plane = ComputeFaultPlane::new();
        plane.schedule(
            SimTime::from_secs(5),
            SimDuration::from_secs(3),
            ComputeFaultKind::EddiPanic { uav: 1 },
        );
        assert_eq!(plane.pending().len(), 1);
        assert!(plane.step(SimTime::from_secs(4)).is_empty());
        assert!(!plane.panic_armed(1));
        let tr = plane.step(SimTime::from_secs(5));
        assert_eq!(tr.len(), 1);
        assert!(tr[0].activated);
        assert_eq!(tr[0].label, "eddi_panic(uav1)");
        assert!(plane.panic_armed(1));
        assert!(!plane.panic_armed(0));
        let tr = plane.step(SimTime::from_secs(8));
        assert_eq!(tr.len(), 1);
        assert!(!tr[0].activated);
        assert!(!plane.panic_armed(1));
        assert!(plane.active().is_empty());
    }

    #[test]
    fn corruption_targets_sensor_fields_only() {
        let mut plane = ComputeFaultPlane::new();
        plane.schedule(
            SimTime::ZERO,
            SimDuration::from_secs(1),
            ComputeFaultKind::TelemetryNan { uav: 2 },
        );
        plane.step(SimTime::ZERO);
        let mut t = telemetry();
        assert!(!plane.corrupt_telemetry(0, &mut t), "wrong uav untouched");
        assert!(plane.corrupt_telemetry(2, &mut t));
        assert!(t.battery_soc.is_nan());
        assert!(t.vision_health.is_nan());
        assert!(t.link_quality.is_nan());
        // Position stays sane: the fault models bad sensor readings.
        assert!(t.true_position.lat_deg.is_finite());
    }

    #[test]
    fn inf_corruption_uses_infinity() {
        let mut plane = ComputeFaultPlane::new();
        plane.schedule(
            SimTime::ZERO,
            SimDuration::from_secs(1),
            ComputeFaultKind::TelemetryInf { uav: 0 },
        );
        plane.step(SimTime::ZERO);
        let mut t = telemetry();
        assert!(plane.corrupt_telemetry(0, &mut t));
        assert_eq!(t.battery_soc, f64::INFINITY);
    }

    #[test]
    fn watchdog_trips_on_consecutive_strikes_only() {
        let mut wd = TickWatchdog::new(3, 3);
        assert!(wd.observe(&[false, true, false]).is_empty());
        assert!(wd.observe(&[false, true, false]).is_empty());
        // A clean tick resets the streak.
        assert!(wd.observe(&[false, false, false]).is_empty());
        assert!(wd.observe(&[false, true, true]).is_empty());
        assert!(wd.observe(&[false, true, true]).is_empty());
        assert_eq!(wd.observe(&[false, true, true]), vec![1, 2]);
        // The streak restarts after a trip.
        assert_eq!(wd.strikes(1), 0);
        assert!(wd.observe(&[false, true, false]).is_empty());
    }

    #[test]
    fn quarantine_cell_backoff_is_bounded() {
        let fault = UavFault {
            uav: 0,
            id: UavId::new(0),
            at: SimTime::ZERO,
            phase: FaultPhase::Injected,
            message: "chaos".into(),
        };
        let mut cell = QuarantineCell::new(fault, 100, 16);
        assert_eq!(cell.next_probe_tick, 116);
        cell.probe_failed(116, 16, 3);
        assert_eq!(cell.next_probe_tick, 116 + 32);
        cell.probe_failed(148, 16, 3);
        assert_eq!(cell.next_probe_tick, 148 + 64);
        cell.probe_failed(212, 16, 3);
        cell.probe_failed(340, 16, 3);
        // Exponent saturates at the cap.
        assert_eq!(cell.backoff_exp, 3);
        assert_eq!(cell.next_probe_tick, 340 + 128);
        cell.probe_clean(468);
        assert_eq!(cell.clean_ticks, 1);
        assert_eq!(cell.next_probe_tick, 469);
    }

    #[test]
    fn fault_describe_is_stable() {
        let fault = UavFault {
            uav: 2,
            id: UavId::new(2),
            at: SimTime::from_secs(9),
            phase: FaultPhase::Output,
            message: "pof is NaN".into(),
        };
        assert_eq!(fault.describe(), "uav2 faulted at output: pof is NaN");
    }
}
