//! The ground control station.
//!
//! "Automates the logging, management, and monitoring of UAV operations"
//! (§IV-A). The two GUIs of the paper are presentation layers over the
//! same state; headless, that state is the [`StatusSnapshot`] — the blue
//! status boxes and the red SESAME-output box of Fig. 4 as plain data.

use sesame_conserts::catalog::{MissionDecision, UavAction};
use sesame_obs::MetricsSnapshot;
use sesame_types::geo::GeoPoint;
use sesame_types::ids::UavId;
use sesame_types::telemetry::FlightMode;
use sesame_types::time::SimTime;

/// One UAV's line in the status display.
#[derive(Debug, Clone, PartialEq)]
pub struct UavStatusLine {
    /// Which UAV.
    pub uav: UavId,
    /// Position shown to the operator.
    pub position: GeoPoint,
    /// Battery level.
    pub battery_soc: f64,
    /// Flight mode.
    pub mode: FlightMode,
    /// Latest ConSert action (None when SESAME is disabled).
    pub consert_action: Option<UavAction>,
    /// Latest probability of failure (None when SESAME is disabled).
    pub pof: Option<f64>,
}

/// The full monitoring snapshot at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusSnapshot {
    /// Snapshot time.
    pub time: SimTime,
    /// Per-UAV lines.
    pub uavs: Vec<UavStatusLine>,
    /// Mission-level decision (None when SESAME is disabled).
    pub mission_decision: Option<MissionDecision>,
    /// Mission completion fraction.
    pub completion: f64,
    /// De-duplicated person findings so far.
    pub persons_found: usize,
    /// Platform metrics at the instant of the snapshot.
    pub metrics: MetricsSnapshot,
}

impl StatusSnapshot {
    /// Renders the snapshot as the multi-line operator text of Fig. 4.
    pub fn render(&self) -> String {
        let mut out = format!(
            "[{}] mission {:.1}% complete, {} person(s) found\n",
            self.time,
            self.completion * 100.0,
            self.persons_found
        );
        if let Some(d) = self.mission_decision {
            out.push_str(&format!("decider: {d}\n"));
        }
        for line in &self.uavs {
            out.push_str(&format!(
                "  {}: {} soc={:.0}% mode={:?}",
                line.uav,
                line.position,
                line.battery_soc * 100.0,
                line.mode
            ));
            if let Some(a) = line.consert_action {
                out.push_str(&format!(" consert={a}"));
            }
            if let Some(p) = line.pof {
                out.push_str(&format!(" pof={p:.3}"));
            }
            out.push('\n');
        }
        out
    }
}

/// The logging GCS: keeps every snapshot.
#[derive(Debug, Clone, Default)]
pub struct GroundControlStation {
    log: Vec<StatusSnapshot>,
}

impl GroundControlStation {
    /// An empty station.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a snapshot.
    pub fn record(&mut self, snapshot: StatusSnapshot) {
        self.log.push(snapshot);
    }

    /// The recorded history.
    pub fn log(&self) -> &[StatusSnapshot] {
        &self.log
    }

    /// The latest snapshot.
    pub fn latest(&self) -> Option<&StatusSnapshot> {
        self.log.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(t: u64) -> StatusSnapshot {
        StatusSnapshot {
            time: SimTime::from_secs(t),
            uavs: vec![UavStatusLine {
                uav: UavId::new(1),
                position: GeoPoint::new(35.0, 33.0, 30.0),
                battery_soc: 0.8,
                mode: FlightMode::Mission,
                consert_action: Some(UavAction::ContinueMission),
                pof: Some(0.012),
            }],
            mission_decision: Some(MissionDecision::CompleteAsPlanned),
            completion: 0.42,
            persons_found: 2,
            metrics: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn log_accumulates_in_order() {
        let mut gcs = GroundControlStation::new();
        gcs.record(snapshot(1));
        gcs.record(snapshot(2));
        assert_eq!(gcs.log().len(), 2);
        assert_eq!(gcs.latest().unwrap().time, SimTime::from_secs(2));
    }

    #[test]
    fn render_contains_the_operator_facts() {
        let text = snapshot(5).render();
        assert!(text.contains("42.0% complete"));
        assert!(text.contains("2 person(s) found"));
        assert!(text.contains("uav1"));
        assert!(text.contains("pof=0.012"));
        assert!(text.contains("continue mission"));
        assert!(text.contains("as planned"));
    }

    #[test]
    fn render_without_sesame_omits_consert_fields() {
        let mut s = snapshot(1);
        s.uavs[0].consert_action = None;
        s.uavs[0].pof = None;
        s.mission_decision = None;
        let text = s.render();
        assert!(!text.contains("consert="));
        assert!(!text.contains("pof="));
        assert!(!text.contains("decider:"));
    }
}
