//! The task manager.
//!
//! "Located at the ground control station, makes UAV and multi-UAV
//! cooperation algorithms accessible … provides algorithms as services"
//! (§IV-A). Its service here is the SAR coverage algorithm: decompose the
//! area, generate per-UAV boustrophedon paths, track progress, and
//! redistribute strips when the mission decider demands it.

use sesame_sar::allocation::Allocation;
use sesame_sar::area::split_strips;
use sesame_sar::coverage::{boustrophedon_path, path_length_m};
use sesame_sar::mission::SarMission;
use sesame_types::geo::GeoPoint;
use sesame_types::ids::{TaskId, UavId};

/// The task manager: SAR mission + allocation state.
#[derive(Debug, Clone)]
pub struct TaskManager {
    mission: SarMission,
    allocation: Allocation,
    total_work_m: f64,
}

impl TaskManager {
    /// Plans a SAR mission over a rectangular AOI for the given UAVs: one
    /// strip each, lawnmower paths at `alt_m` with the camera footprint
    /// `footprint_half_m`.
    ///
    /// # Panics
    ///
    /// Panics if `uavs` is empty.
    pub fn plan(
        origin: &GeoPoint,
        width_m: f64,
        height_m: f64,
        uavs: &[UavId],
        alt_m: f64,
        footprint_half_m: f64,
    ) -> Self {
        assert!(!uavs.is_empty(), "need at least one UAV");
        let strips = split_strips(uavs.len());
        let mut mission = SarMission::new();
        let mut allocation = Allocation::new();
        let mut total = 0.0;
        for (i, (strip, uav)) in strips.iter().zip(uavs.iter()).enumerate() {
            let path =
                boustrophedon_path(origin, width_m, height_m, strip, alt_m, footprint_half_m);
            let len = path_length_m(&path);
            let task = TaskId::new(i as u32);
            allocation.assign(task, *uav, len);
            mission.add_task(task, *uav, path);
            total += len;
        }
        TaskManager {
            mission,
            allocation,
            total_work_m: total,
        }
    }

    /// The SAR mission state.
    pub fn mission(&self) -> &SarMission {
        &self.mission
    }

    /// Mutable mission state.
    pub fn mission_mut(&mut self) -> &mut SarMission {
        &mut self.mission
    }

    /// The waypoints of the task currently owned by `uav` that are still
    /// to fly (concatenated over its tasks).
    pub fn remaining_route(&self, uav: UavId) -> Vec<GeoPoint> {
        let mut route = Vec::new();
        for task in self.allocation.tasks_of(uav) {
            if let Some(t) = self.mission.task(task) {
                route.extend_from_slice(t.remaining());
            }
        }
        route
    }

    /// Records that `uav` reached `position`: advances waypoint progress
    /// of its tasks and mirrors the flown distance into the allocation.
    pub fn record_position(&mut self, uav: UavId, position: &GeoPoint, acceptance_m: f64) {
        for task in self.allocation.tasks_of(uav) {
            let before = self
                .mission
                .task(task)
                .map(|t| t.next_waypoint)
                .unwrap_or(0);
            let visited = self.mission.visit(task, position, acceptance_m);
            if visited > 0 {
                // Approximate flown distance by the consumed leg lengths.
                if let Some(t) = self.mission.task(task) {
                    let wps = &t.waypoints;
                    let mut flown = 0.0;
                    for k in before..before + visited {
                        if k > 0 {
                            flown += wps[k - 1].distance_3d_m(&wps[k]);
                        }
                    }
                    self.allocation.record_progress(task, flown);
                }
            }
        }
    }

    /// Redistributes the unfinished work of `lost` to `capable` UAVs,
    /// updating both the allocation and the mission owners. Returns the
    /// reassignments.
    pub fn redistribute(&mut self, lost: UavId, capable: &[UavId]) -> Vec<(TaskId, UavId, UavId)> {
        let moves = self.allocation.redistribute_from(lost, capable);
        for (task, _, to) in &moves {
            self.mission.reassign(*task, *to);
        }
        moves
    }

    /// Overall completion fraction (waypoint-weighted).
    pub fn completion(&self) -> f64 {
        self.mission.completion()
    }

    /// Whether the whole area has been covered.
    pub fn is_complete(&self) -> bool {
        self.mission.is_complete()
    }

    /// Total planned work in metres.
    pub fn total_work_m(&self) -> f64 {
        self.total_work_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan3() -> TaskManager {
        TaskManager::plan(
            &GeoPoint::new(35.0, 33.0, 0.0),
            300.0,
            200.0,
            &[UavId::new(1), UavId::new(2), UavId::new(3)],
            30.0,
            25.0,
        )
    }

    #[test]
    fn plan_assigns_one_strip_each() {
        let tm = plan3();
        assert_eq!(tm.mission().tasks().len(), 3);
        for (i, uav) in [1u32, 2, 3].iter().enumerate() {
            assert_eq!(tm.mission().tasks()[i].owner, UavId::new(*uav));
        }
        assert!(tm.total_work_m() > 500.0);
        assert!(!tm.is_complete());
        assert_eq!(tm.completion(), 0.0);
    }

    #[test]
    fn flying_the_route_completes_the_task() {
        let mut tm = plan3();
        let route = tm.remaining_route(UavId::new(1));
        assert!(!route.is_empty());
        for wp in &route {
            tm.record_position(UavId::new(1), wp, 5.0);
        }
        assert!(tm.remaining_route(UavId::new(1)).is_empty());
        assert!((tm.completion() - 1.0 / 3.0).abs() < 0.05);
    }

    #[test]
    fn redistribution_hands_over_remaining_route() {
        let mut tm = plan3();
        // UAV 3 flies half its route, then drops out.
        let route = tm.remaining_route(UavId::new(3));
        for wp in route.iter().take(route.len() / 2) {
            tm.record_position(UavId::new(3), wp, 5.0);
        }
        let moves = tm.redistribute(UavId::new(3), &[UavId::new(1), UavId::new(2)]);
        assert_eq!(moves.len(), 1);
        let (_, _, to) = moves[0];
        assert!(tm.remaining_route(UavId::new(3)).is_empty());
        let inherited = tm.remaining_route(to);
        assert!(!inherited.is_empty(), "new owner sees the leftover route");
    }

    #[test]
    fn completion_reaches_one_when_all_fly() {
        let mut tm = plan3();
        for uav in [1u32, 2, 3] {
            let route = tm.remaining_route(UavId::new(uav));
            for wp in &route {
                tm.record_position(UavId::new(uav), wp, 5.0);
            }
        }
        assert!(tm.is_complete());
        assert_eq!(tm.completion(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one UAV")]
    fn empty_fleet_panics() {
        let _ = TaskManager::plan(&GeoPoint::default(), 100.0, 100.0, &[], 30.0, 25.0);
    }
}
