//! The multi-UAV control platform layers (§IV-A).
//!
//! The paper's architecture has five layers: two GUIs (web + control),
//! the UAV ground control stations, the database manager, the UAV manager
//! and the task manager. The GUIs are presentation-only and are replaced
//! here by the headless [`gcs::StatusSnapshot`]; the other layers are
//! implemented directly.

pub mod database;
pub mod gcs;
pub mod map_view;
pub mod task_manager;
pub mod uav_manager;

pub use database::{DatabaseManager, DbError, DbRecord};
pub use gcs::{GroundControlStation, StatusSnapshot, UavStatusLine};
pub use task_manager::TaskManager;
pub use uav_manager::{UavManager, UavRegistration};
