//! The database manager.
//!
//! "Provides an API for database access, allowing UAVs and software
//! clients to make asynchronous data requests. It verifies that requests
//! come from within the network to prevent external access. For instance,
//! UAVs report their location data to the database manager, which
//! processes and saves it" (§IV-A).

use sesame_types::geo::GeoPoint;
use sesame_types::ids::UavId;
use sesame_types::time::SimTime;
use std::collections::HashMap;

/// One stored location report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbRecord {
    /// Report time.
    pub time: SimTime,
    /// Reported position.
    pub position: GeoPoint,
    /// Battery state of charge at report time.
    pub battery_soc: f64,
}

/// Errors from database requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// The request origin is not an in-network client.
    ExternalOrigin(String),
    /// No data stored for the UAV.
    NoData(UavId),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::ExternalOrigin(o) => write!(f, "request from outside the network: `{o}`"),
            DbError::NoData(u) => write!(f, "no records for {u}"),
        }
    }
}

impl std::error::Error for DbError {}

/// In-memory store with the paper's network-origin check: only clients
/// whose origin starts with `"net:"` may read.
///
/// # Examples
///
/// ```
/// use sesame_core::platform::database::DatabaseManager;
/// use sesame_types::geo::GeoPoint;
/// use sesame_types::ids::UavId;
/// use sesame_types::time::SimTime;
///
/// let mut db = DatabaseManager::new();
/// db.store_location(UavId::new(1), SimTime::ZERO, GeoPoint::default(), 0.9);
/// assert!(db.latest("net:gcs", UavId::new(1)).is_ok());
/// assert!(db.latest("wan:attacker", UavId::new(1)).is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct DatabaseManager {
    locations: HashMap<UavId, Vec<DbRecord>>,
    writes: u64,
    rejected: u64,
}

impl DatabaseManager {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a location report (writes come from the UAV link and are
    /// always in-network).
    pub fn store_location(&mut self, uav: UavId, time: SimTime, position: GeoPoint, soc: f64) {
        self.writes += 1;
        self.locations.entry(uav).or_default().push(DbRecord {
            time,
            position,
            battery_soc: soc,
        });
    }

    fn check_origin(&mut self, origin: &str) -> Result<(), DbError> {
        if origin.starts_with("net:") {
            Ok(())
        } else {
            self.rejected += 1;
            Err(DbError::ExternalOrigin(origin.to_string()))
        }
    }

    /// The latest record of a UAV.
    ///
    /// # Errors
    ///
    /// Rejects external origins and unknown UAVs.
    pub fn latest(&mut self, origin: &str, uav: UavId) -> Result<DbRecord, DbError> {
        self.check_origin(origin)?;
        self.locations
            .get(&uav)
            .and_then(|v| v.last())
            .copied()
            .ok_or(DbError::NoData(uav))
    }

    /// Full history of a UAV.
    ///
    /// # Errors
    ///
    /// Rejects external origins and unknown UAVs.
    pub fn history(&mut self, origin: &str, uav: UavId) -> Result<Vec<DbRecord>, DbError> {
        self.check_origin(origin)?;
        self.locations
            .get(&uav)
            .cloned()
            .ok_or(DbError::NoData(uav))
    }

    /// Total accepted writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total rejected external requests.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(db: &mut DatabaseManager, uav: u32, t: u64) {
        db.store_location(
            UavId::new(uav),
            SimTime::from_secs(t),
            GeoPoint::new(35.0, 33.0, 30.0),
            0.8,
        );
    }

    #[test]
    fn stores_and_returns_latest() {
        let mut db = DatabaseManager::new();
        record(&mut db, 1, 1);
        record(&mut db, 1, 2);
        let latest = db.latest("net:gcs", UavId::new(1)).unwrap();
        assert_eq!(latest.time, SimTime::from_secs(2));
        assert_eq!(db.history("net:gcs", UavId::new(1)).unwrap().len(), 2);
        assert_eq!(db.writes(), 2);
    }

    #[test]
    fn external_origin_rejected() {
        let mut db = DatabaseManager::new();
        record(&mut db, 1, 1);
        let err = db.latest("wan:attacker", UavId::new(1)).unwrap_err();
        assert!(matches!(err, DbError::ExternalOrigin(_)));
        assert_eq!(db.rejected(), 1);
        assert!(err.to_string().contains("attacker"));
    }

    #[test]
    fn unknown_uav_reports_no_data() {
        let mut db = DatabaseManager::new();
        assert_eq!(
            db.latest("net:gcs", UavId::new(9)).unwrap_err(),
            DbError::NoData(UavId::new(9))
        );
    }
}
