//! The UAV manager.
//!
//! "Manages connections to UAVs, identifying each by type, ID, equipment,
//! and battery level. It handles UAV operations, translating user
//! commands into UAV-compatible instructions" (§IV-A). Here the
//! translation target is the simulator's
//! [`sesame_uav_sim::autopilot::FlightCommand`], and the key runtime
//! translation is from the UAV ConSert's [`UavAction`] to the commands
//! that implement it.

use sesame_conserts::catalog::UavAction;
use sesame_types::ids::UavId;
use sesame_uav_sim::autopilot::FlightCommand;
use sesame_uav_sim::sim::UavHandle;
use std::collections::HashMap;

/// Registration entry for one connected UAV.
#[derive(Debug, Clone, PartialEq)]
pub struct UavRegistration {
    /// Platform-wide id.
    pub id: UavId,
    /// Simulator handle.
    pub handle: UavHandle,
    /// Airframe type string (e.g. "matrice300-sim").
    pub uav_type: String,
    /// Equipment list.
    pub equipment: Vec<String>,
    /// Last reported battery level.
    pub battery_soc: f64,
}

/// The connection registry + command translator.
#[derive(Debug, Clone, Default)]
pub struct UavManager {
    uavs: HashMap<UavId, UavRegistration>,
    last_action: HashMap<UavId, UavAction>,
}

impl UavManager {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a UAV connection.
    pub fn register(&mut self, id: UavId, handle: UavHandle, uav_type: &str, equipment: &[&str]) {
        self.uavs.insert(
            id,
            UavRegistration {
                id,
                handle,
                uav_type: uav_type.to_string(),
                equipment: equipment.iter().map(|s| s.to_string()).collect(),
                battery_soc: 1.0,
            },
        );
    }

    /// Updates the cached battery level.
    pub fn update_battery(&mut self, id: UavId, soc: f64) {
        if let Some(r) = self.uavs.get_mut(&id) {
            r.battery_soc = soc;
        }
    }

    /// A registration by id.
    pub fn registration(&self, id: UavId) -> Option<&UavRegistration> {
        self.uavs.get(&id)
    }

    /// All registered ids, sorted.
    pub fn ids(&self) -> Vec<UavId> {
        let mut v: Vec<UavId> = self.uavs.keys().copied().collect();
        v.sort();
        v
    }

    /// Number of connected UAVs.
    pub fn len(&self) -> usize {
        self.uavs.len()
    }

    /// Whether no UAVs are connected.
    pub fn is_empty(&self) -> bool {
        self.uavs.is_empty()
    }

    /// Translates a ConSert action into the flight command that implements
    /// it — only when the action *changed* since the last tick (sending
    /// `Hold` every tick would keep resetting the autopilot). `Continue*`
    /// after a hold translates to `Resume`; steady `Continue*` needs no
    /// command.
    pub fn translate_action(&mut self, id: UavId, action: UavAction) -> Option<FlightCommand> {
        let prev = self.last_action.insert(id, action);
        if prev == Some(action) {
            return None;
        }
        match action {
            UavAction::ContinueCanTakeMore | UavAction::ContinueMission => match prev {
                Some(UavAction::HoldPosition) => Some(FlightCommand::Resume),
                _ => None,
            },
            UavAction::HoldPosition => Some(FlightCommand::Hold),
            UavAction::ReturnToBase => Some(FlightCommand::ReturnToBase),
            UavAction::EmergencyLand => Some(FlightCommand::EmergencyLand),
        }
    }

    /// The last action seen for a UAV.
    pub fn last_action(&self, id: UavId) -> Option<UavAction> {
        self.last_action.get(&id).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager_with_one() -> (UavManager, UavId) {
        let mut m = UavManager::new();
        let id = UavId::new(1);
        // A handle cannot be constructed outside the simulator; build one
        // through a real sim.
        let world = sesame_uav_sim::world::World::rectangle(
            sesame_types::geo::GeoPoint::new(35.0, 33.0, 0.0),
            100.0,
            100.0,
            0,
        );
        let mut sim = sesame_uav_sim::sim::Simulator::new(world, 1);
        let h = sim.add_uav(sesame_uav_sim::sim::UavConfig::default());
        m.register(id, h, "matrice300-sim", &["rgb-camera", "jetson-nx"]);
        (m, id)
    }

    #[test]
    fn registration_round_trip() {
        let (mut m, id) = manager_with_one();
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
        assert_eq!(m.ids(), vec![id]);
        m.update_battery(id, 0.7);
        let r = m.registration(id).unwrap();
        assert_eq!(r.battery_soc, 0.7);
        assert_eq!(r.uav_type, "matrice300-sim");
        assert_eq!(r.equipment.len(), 2);
    }

    #[test]
    fn steady_continue_needs_no_command() {
        let (mut m, id) = manager_with_one();
        assert_eq!(m.translate_action(id, UavAction::ContinueMission), None);
        assert_eq!(m.translate_action(id, UavAction::ContinueMission), None);
    }

    #[test]
    fn transitions_translate_once() {
        let (mut m, id) = manager_with_one();
        let _ = m.translate_action(id, UavAction::ContinueMission);
        assert_eq!(
            m.translate_action(id, UavAction::HoldPosition),
            Some(FlightCommand::Hold)
        );
        assert_eq!(m.translate_action(id, UavAction::HoldPosition), None);
        assert_eq!(
            m.translate_action(id, UavAction::ContinueMission),
            Some(FlightCommand::Resume),
            "continue after hold resumes"
        );
        assert_eq!(
            m.translate_action(id, UavAction::EmergencyLand),
            Some(FlightCommand::EmergencyLand)
        );
        assert_eq!(m.last_action(id), Some(UavAction::EmergencyLand));
    }

    #[test]
    fn rtb_translates() {
        let (mut m, id) = manager_with_one();
        assert_eq!(
            m.translate_action(id, UavAction::ReturnToBase),
            Some(FlightCommand::ReturnToBase)
        );
    }
}
