//! ASCII map rendering — the headless stand-in for the Fig. 4 map pane.
//!
//! Renders the search area with the UAVs' coverage tracks (one glyph per
//! UAV, matching the paper's red / light-red / green lanes), the
//! ground-truth persons (`o`) and confirmed findings (`*`).

use sesame_types::geo::GeoPoint;

/// Inputs for one rendered frame.
#[derive(Debug, Clone, Default)]
pub struct MapScene {
    /// South-west corner of the area.
    pub origin: GeoPoint,
    /// East extent, metres.
    pub width_m: f64,
    /// North extent, metres.
    pub height_m: f64,
    /// Per-UAV flown tracks (position samples).
    pub tracks: Vec<Vec<GeoPoint>>,
    /// Ground-truth persons.
    pub persons: Vec<GeoPoint>,
    /// Confirmed findings.
    pub findings: Vec<GeoPoint>,
}

/// Renders the scene onto a `cols × rows` character grid. UAV tracks use
/// `1`, `2`, `3`, … (last writer wins per cell); persons are `o`,
/// findings `*`, empty area `·`. The top row is the north edge.
///
/// # Panics
///
/// Panics if `cols`/`rows` are zero or the extents are not positive.
///
/// # Examples
///
/// ```
/// use sesame_core::platform::map_view::{render_map, MapScene};
/// use sesame_types::geo::GeoPoint;
///
/// let origin = GeoPoint::new(35.0, 33.0, 0.0);
/// let scene = MapScene {
///     origin,
///     width_m: 100.0,
///     height_m: 100.0,
///     tracks: vec![vec![origin.destination(45.0, 30.0)]],
///     persons: vec![origin.destination(45.0, 70.0)],
///     findings: vec![],
/// };
/// let map = render_map(&scene, 20, 10);
/// assert!(map.contains('1'));
/// assert!(map.contains('o'));
/// ```
pub fn render_map(scene: &MapScene, cols: usize, rows: usize) -> String {
    assert!(cols > 0 && rows > 0, "grid must be non-empty");
    assert!(
        scene.width_m > 0.0 && scene.height_m > 0.0,
        "area extents must be positive"
    );
    let mut grid = vec![vec!['·'; cols]; rows];
    let plot = |p: &GeoPoint, glyph: char, grid: &mut Vec<Vec<char>>| {
        let enu = p.to_enu(&scene.origin);
        // Small tolerance: a great-circle leg along the area edge dips a
        // fraction of a metre outside the rectangle.
        const TOL: f64 = 0.005;
        let fx = (enu.east_m / scene.width_m).clamp(-TOL, 1.0 + TOL);
        let fy = (enu.north_m / scene.height_m).clamp(-TOL, 1.0 + TOL);
        if !(-TOL..=1.0 + TOL).contains(&(enu.east_m / scene.width_m))
            || !(-TOL..=1.0 + TOL).contains(&(enu.north_m / scene.height_m))
        {
            return;
        }
        let fx = fx.clamp(0.0, 1.0);
        let fy = fy.clamp(0.0, 1.0);
        let col = ((fx * (cols - 1) as f64).round() as usize).min(cols - 1);
        // Row 0 is the north edge.
        let row = rows - 1 - ((fy * (rows - 1) as f64).round() as usize).min(rows - 1);
        grid[row][col] = glyph;
    };
    for (i, track) in scene.tracks.iter().enumerate() {
        let glyph = char::from_digit((i as u32 + 1) % 10, 10).unwrap_or('?');
        for p in track {
            plot(p, glyph, &mut grid);
        }
    }
    for p in &scene.persons {
        plot(p, 'o', &mut grid);
    }
    for p in &scene.findings {
        plot(p, '*', &mut grid);
    }
    let mut out = String::with_capacity(rows * (cols + 1));
    for row in grid {
        out.extend(row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin() -> GeoPoint {
        GeoPoint::new(35.0, 33.0, 0.0)
    }

    fn scene() -> MapScene {
        MapScene {
            origin: origin(),
            width_m: 200.0,
            height_m: 100.0,
            tracks: vec![
                vec![origin().destination(90.0, 10.0)],
                vec![origin().destination(90.0, 100.0)],
            ],
            persons: vec![origin().destination(45.0, 60.0)],
            findings: vec![origin().destination(45.0, 60.0)],
        }
    }

    #[test]
    fn grid_shape_and_glyphs() {
        let map = render_map(&scene(), 40, 10);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.chars().count() == 40));
        assert!(map.contains('1'));
        assert!(map.contains('2'));
        // The finding overwrote the person at the same cell.
        assert!(map.contains('*'));
    }

    #[test]
    fn south_west_track_lands_bottom_left() {
        let mut s = scene();
        s.tracks = vec![vec![origin()]];
        s.persons.clear();
        s.findings.clear();
        let map = render_map(&s, 20, 5);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines[4].chars().next(), Some('1'), "{map}");
    }

    #[test]
    fn north_edge_is_top_row() {
        let mut s = scene();
        s.tracks = vec![vec![origin().destination(0.0, 100.0)]];
        s.persons.clear();
        s.findings.clear();
        let map = render_map(&s, 20, 5);
        assert_eq!(map.lines().next().unwrap().chars().next(), Some('1'));
    }

    #[test]
    fn out_of_area_points_are_dropped() {
        let mut s = scene();
        s.tracks = vec![vec![origin().destination(270.0, 500.0)]];
        s.persons.clear();
        s.findings.clear();
        let map = render_map(&s, 20, 5);
        assert!(!map.contains('1'));
    }

    #[test]
    #[should_panic(expected = "grid")]
    fn empty_grid_panics() {
        let _ = render_map(&scene(), 0, 5);
    }
}
