//! Declarative scenario construction and execution.
//!
//! A [`ScenarioBuilder`] describes *what happens* — fleet size, faults,
//! attacks, SESAME on/off — and [`Scenario::run`] executes the platform
//! loop to completion, collecting a [`ScenarioOutcome`] with the metrics
//! every §V experiment reports.

use crate::checkpoint::Checkpoint;
use crate::containment::ComputeFaultKind;
use crate::orchestrator::{ClLandingOutcome, Platform, PlatformConfig, Sample};
use sesame_middleware::attack::{AttackInjector, AttackKind};
use sesame_middleware::chaos::CommFaultKind;
use sesame_obs::MetricsSnapshot;
use sesame_types::events::EventLog;
use sesame_types::geo::{GeoPoint, Vec3};
use sesame_types::ids::UavId;
use sesame_types::time::{SimDuration, SimTime};
use sesame_uav_sim::faults::FaultKind;
use std::sync::Arc;

/// A scheduled fault entry.
#[derive(Debug, Clone)]
pub struct FaultEntry {
    /// When to fire.
    pub at: SimTime,
    /// Which UAV (fleet index, 0-based).
    pub uav_index: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A spoofing attack specification (the §V-C adversary).
#[derive(Debug, Clone)]
pub struct SpoofAttack {
    /// When the attack starts.
    pub start: SimTime,
    /// The targeted UAV (fleet index).
    pub uav_index: usize,
    /// GPS-feedback drag velocity (ENU m/s) — bends the true trajectory.
    pub gps_drift: Vec3,
    /// Whether the adversary also injects forged waypoint messages on the
    /// command topic (exercises the ROS-message-spoofing tree via the
    /// IDS).
    pub forge_waypoints: bool,
}

/// A scheduled communication fault entry (see
/// [`sesame_middleware::chaos`]).
#[derive(Debug, Clone)]
pub struct CommFaultEntry {
    /// When the fault activates.
    pub at: SimTime,
    /// How long it stays active.
    pub duration: SimDuration,
    /// What breaks.
    pub kind: CommFaultKind,
}

/// A scheduled compute-plane fault entry (see [`crate::containment`]).
#[derive(Debug, Clone)]
pub struct ComputeFaultEntry {
    /// When the fault activates.
    pub at: SimTime,
    /// How long it stays active.
    pub duration: SimDuration,
    /// What breaks.
    pub kind: ComputeFaultKind,
}

/// The declarative description.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    config: PlatformConfig,
    faults: Vec<FaultEntry>,
    comm_faults: Vec<CommFaultEntry>,
    compute_faults: Vec<ComputeFaultEntry>,
    attack: Option<SpoofAttack>,
    deadline: SimTime,
}

/// Why a [`ScenarioBuilder`] failed validation in
/// [`ScenarioBuilder::try_build`]. Every variant is a description error:
/// the schedule or configuration cannot describe a runnable scenario,
/// and building it anyway would surface as a panic deep inside the tick
/// loop instead of here.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The platform configuration failed
    /// [`PlatformConfig::validate`].
    Config(crate::orchestrator::ConfigError),
    /// A scheduled vehicle fault targeted a fleet index that does not
    /// exist.
    FaultUavOutOfRange {
        /// When the entry fires.
        at: SimTime,
        /// The out-of-range fleet index.
        uav_index: usize,
        /// The actual fleet size.
        fleet: usize,
    },
    /// A scheduled compute-plane fault targeted a fleet index that does
    /// not exist (the containment plane indexes per-UAV state with it).
    ComputeFaultUavOutOfRange {
        /// When the window opens.
        at: SimTime,
        /// The out-of-range fleet index.
        uav_index: usize,
        /// The actual fleet size.
        fleet: usize,
    },
    /// The spoofing attack targeted a fleet index that does not exist.
    AttackUavOutOfRange {
        /// The out-of-range fleet index.
        uav_index: usize,
        /// The actual fleet size.
        fleet: usize,
    },
    /// The deadline was zero — the run loop would stop before its first
    /// tick completed anything observable.
    ZeroDeadline,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Config(e) => write!(f, "invalid platform configuration: {e}"),
            ScenarioError::FaultUavOutOfRange {
                at,
                uav_index,
                fleet,
            } => write!(
                f,
                "fault at t={}s targets uav index {uav_index}, but the fleet has {fleet} UAV(s)",
                at.as_millis() / 1000
            ),
            ScenarioError::ComputeFaultUavOutOfRange {
                at,
                uav_index,
                fleet,
            } => write!(
                f,
                "compute fault at t={}s targets uav index {uav_index}, but the fleet has \
                 {fleet} UAV(s)",
                at.as_millis() / 1000
            ),
            ScenarioError::AttackUavOutOfRange { uav_index, fleet } => write!(
                f,
                "spoof attack targets uav index {uav_index}, but the fleet has {fleet} UAV(s)"
            ),
            ScenarioError::ZeroDeadline => write!(f, "the scenario deadline must be positive"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<crate::orchestrator::ConfigError> for ScenarioError {
    fn from(e: crate::orchestrator::ConfigError) -> Self {
        ScenarioError::Config(e)
    }
}

impl ScenarioBuilder {
    /// The platform configuration every scenario description starts
    /// from: the paper's three-UAV SAR demonstration (150 m × 100 m
    /// area, three persons) with the given master seed. Both
    /// [`ScenarioBuilder::new`] and the scenario-DSL compiler build on
    /// exactly this baseline, which is what keeps a DSL-compiled
    /// scenario field-for-field identical to a hand-written one.
    pub fn base_config(seed: u64) -> PlatformConfig {
        PlatformConfig {
            seed,
            area_width_m: 150.0,
            area_height_m: 100.0,
            person_count: 3,
            ..PlatformConfig::default()
        }
    }

    /// A nominal three-UAV SAR scenario with SESAME enabled.
    pub fn new(seed: u64) -> Self {
        ScenarioBuilder {
            config: Self::base_config(seed),
            faults: Vec::new(),
            comm_faults: Vec::new(),
            compute_faults: Vec::new(),
            attack: None,
            deadline: SimTime::from_secs(900),
        }
    }

    /// Replaces the platform configuration wholesale.
    pub fn with_config(mut self, config: PlatformConfig) -> Self {
        self.config = config;
        self
    }

    /// Turns the SESAME technologies on or off.
    pub fn sesame(mut self, enabled: bool) -> Self {
        self.config.sesame_enabled = enabled;
        self
    }

    /// Enables the §V-B altitude-adaptation policy.
    pub fn altitude_adaptation(mut self, enabled: bool) -> Self {
        self.config.altitude_adaptation = enabled;
        self
    }

    /// Schedules a fault.
    pub fn fault(mut self, at: SimTime, uav_index: usize, kind: FaultKind) -> Self {
        self.faults.push(FaultEntry {
            at,
            uav_index,
            kind,
        });
        self
    }

    /// Schedules a communication fault (link blackout, asymmetric
    /// partition, broker outage, telemetry staleness) active for
    /// `duration` from `at`.
    pub fn comm_fault(mut self, at: SimTime, duration: SimDuration, kind: CommFaultKind) -> Self {
        self.comm_faults.push(CommFaultEntry { at, duration, kind });
        self
    }

    /// Schedules a compute-plane fault (scheduled EDDI panic, NaN/Inf
    /// telemetry corruption, solver stall) active for `duration` from
    /// `at`.
    pub fn compute_fault(
        mut self,
        at: SimTime,
        duration: SimDuration,
        kind: ComputeFaultKind,
    ) -> Self {
        self.compute_faults
            .push(ComputeFaultEntry { at, duration, kind });
        self
    }

    /// Arms the spoofing attack.
    pub fn spoof_attack(mut self, attack: SpoofAttack) -> Self {
        self.attack = Some(attack);
        self
    }

    /// Sets the wall-clock deadline for the run.
    pub fn deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = deadline;
        self
    }

    /// Mutable access to the configuration for fine-tuning.
    pub fn config_mut(&mut self) -> &mut PlatformConfig {
        &mut self.config
    }

    /// The platform configuration, read-only.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// The scheduled vehicle faults, in declaration order.
    pub fn fault_entries(&self) -> &[FaultEntry] {
        &self.faults
    }

    /// The scheduled communication faults, in declaration order.
    pub fn comm_fault_entries(&self) -> &[CommFaultEntry] {
        &self.comm_faults
    }

    /// The scheduled compute-plane faults, in declaration order.
    pub fn compute_fault_entries(&self) -> &[ComputeFaultEntry] {
        &self.compute_faults
    }

    /// The armed spoofing attack, if any.
    pub fn attack_entry(&self) -> Option<&SpoofAttack> {
        self.attack.as_ref()
    }

    /// The scheduled run deadline.
    pub fn run_deadline(&self) -> SimTime {
        self.deadline
    }

    /// Checks the description is buildable without building it: the
    /// platform configuration must validate, every scheduled fault and
    /// the attack must target a UAV the fleet actually has, and the
    /// deadline must be positive. [`ScenarioBuilder::build`] panics on
    /// exactly these conditions (out-of-range indices used to surface as
    /// index panics deep inside the tick loop); compiler front ends (the
    /// scenario DSL) call this to turn them into typed, span-attributable
    /// errors instead.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.config.validate()?;
        let fleet = self.config.fleet.total();
        if let Some(f) = self.faults.iter().find(|f| f.uav_index >= fleet) {
            return Err(ScenarioError::FaultUavOutOfRange {
                at: f.at,
                uav_index: f.uav_index,
                fleet,
            });
        }
        if let Some(cf) = self.compute_faults.iter().find(|cf| cf.kind.uav() >= fleet) {
            return Err(ScenarioError::ComputeFaultUavOutOfRange {
                at: cf.at,
                uav_index: cf.kind.uav(),
                fleet,
            });
        }
        if let Some(a) = &self.attack {
            if a.uav_index >= fleet {
                return Err(ScenarioError::AttackUavOutOfRange {
                    uav_index: a.uav_index,
                    fleet,
                });
            }
        }
        if self.deadline == SimTime::ZERO {
            return Err(ScenarioError::ZeroDeadline);
        }
        Ok(())
    }

    /// [`ScenarioBuilder::build`] with the validation surfaced as a
    /// typed error instead of a panic.
    pub fn try_build(self) -> Result<Scenario, ScenarioError> {
        self.validate()?;
        Ok(self.build_unchecked())
    }

    /// Builds the runnable scenario. The builder itself is retained
    /// behind an [`Arc`] as the run's *log*: checkpoints share it
    /// copy-on-write, and [`Checkpoint::recover`] replays it.
    ///
    /// # Panics
    ///
    /// Panics when the description fails [`ScenarioBuilder::validate`]
    /// (an unbuildable configuration or an out-of-range fault/attack
    /// target). Use [`ScenarioBuilder::try_build`] to handle those as
    /// values.
    pub fn build(self) -> Scenario {
        if let Err(e) = self.validate() {
            panic!("unbuildable scenario: {e}");
        }
        self.build_unchecked()
    }

    fn build_unchecked(self) -> Scenario {
        let log = Arc::new(self.clone());
        let mut platform = Platform::new(self.config.clone());
        for f in &self.faults {
            let id = UavId::new(f.uav_index as u32 + 1);
            platform
                .sim_mut()
                .faults_mut()
                .add(f.at, id, f.kind.clone());
        }
        for cf in &self.comm_faults {
            platform
                .comm_faults_mut()
                .schedule(cf.at, cf.duration, cf.kind.clone());
        }
        for cf in &self.compute_faults {
            platform
                .compute_faults_mut()
                .schedule(cf.at, cf.duration, cf.kind);
        }
        let injector = self.attack.as_ref().and_then(|a| {
            a.forge_waypoints.then(|| {
                let id = UavId::new(a.uav_index as u32 + 1);
                AttackInjector::arm(
                    platform.bus_mut(),
                    AttackKind::Spoof {
                        impersonate: "node:gcs".into(),
                        topic: format!("/{id}/cmd/waypoint"),
                    },
                )
            })
        });
        if let Some(a) = &self.attack {
            let id = UavId::new(a.uav_index as u32 + 1);
            platform.sim_mut().faults_mut().add(
                a.start,
                id,
                FaultKind::GpsSpoof { drift: a.gps_drift },
            );
        }
        Scenario {
            platform,
            attack: self.attack,
            injector,
            deadline: self.deadline,
            last_forge_sec: 0,
            log,
        }
    }
}

/// An immutable, shareable scenario prototype for seed sweeps.
///
/// Campaigns that run the same scenario shape across many seeds (chaos
/// sweeps, robustness tables) build the prototype once, share it across
/// worker threads behind an [`Arc`], and stamp out one cheap per-seed
/// clone per run with [`ScenarioTemplate::instantiate`]. The prototype
/// itself is never mutated, so any number of workers can instantiate
/// concurrently, and a template-instantiated builder is field-for-field
/// identical to one built from scratch with the same seed — determinism
/// does not depend on which path constructed the run.
#[derive(Debug, Clone)]
pub struct ScenarioTemplate {
    proto: Arc<ScenarioBuilder>,
}

impl ScenarioTemplate {
    /// Freezes `prototype` as the shared template. The prototype's own
    /// seed is irrelevant; every instantiation overrides it.
    pub fn new(prototype: ScenarioBuilder) -> Self {
        ScenarioTemplate {
            proto: Arc::new(prototype),
        }
    }

    /// Clones the prototype and re-seeds it. Every scenario RNG stream
    /// (world, bus, detectors, fault sampling) derives from this seed,
    /// so instantiations with distinct seeds are independent streams.
    pub fn instantiate(&self, seed: u64) -> ScenarioBuilder {
        let mut builder = (*self.proto).clone();
        builder.config.seed = seed;
        builder
    }

    /// The shared platform configuration of the prototype.
    pub fn config(&self) -> &PlatformConfig {
        &self.proto.config
    }

    /// The prototype's run deadline (shared by every instantiation).
    pub fn deadline(&self) -> SimTime {
        self.proto.deadline
    }

    /// The frozen prototype description itself.
    pub fn prototype(&self) -> &ScenarioBuilder {
        &self.proto
    }
}

/// A runnable scenario.
pub struct Scenario {
    platform: Platform,
    attack: Option<SpoofAttack>,
    injector: Option<AttackInjector>,
    deadline: SimTime,
    last_forge_sec: u64,
    /// The declarative description this scenario was built from, shared
    /// copy-on-write with every checkpoint captured during the run.
    log: Arc<ScenarioBuilder>,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("deadline", &self.deadline)
            .field("attack", &self.attack.is_some())
            .finish()
    }
}

/// Headline metrics of one run.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Coverage completion fraction at the end of the run.
    pub mission_completed_fraction: f64,
    /// Seconds at which the coverage completed, if it did.
    pub mission_complete_secs: Option<f64>,
    /// Per-UAV availability (productive fraction of the run).
    pub availability: Vec<f64>,
    /// Fleet-mean availability.
    pub mean_availability: f64,
    /// De-duplicated persons found.
    pub persons_found: usize,
    /// Fleet detection accuracy: hits / opportunities.
    pub detection_accuracy: f64,
    /// Seconds at which the Security EDDI first detected an attack.
    pub attack_detected_secs: Option<f64>,
    /// The CL landing outcome, if one happened.
    pub cl_landing: Option<ClLandingOutcome>,
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Headline metrics.
    pub metrics: Metrics,
    /// PoF samples of UAV 1, one per second (empty without SESAME).
    pub pof_series: Vec<Sample<f64>>,
    /// Combined-uncertainty samples of UAV 1 (empty without SESAME).
    pub uncertainty_series: Vec<Sample<f64>>,
    /// True-position samples per UAV.
    pub trajectories: Vec<Vec<Sample<GeoPoint>>>,
    /// The event history.
    pub events: EventLog,
    /// Search-area south-west corner.
    pub area_origin: GeoPoint,
    /// Search-area extents, metres (east, north).
    pub area_extent_m: (f64, f64),
    /// Ground-truth persons.
    pub persons: Vec<GeoPoint>,
    /// Confirmed finding positions.
    pub findings: Vec<GeoPoint>,
    /// Observability snapshot: tick-phase timings, bus counters, IDS
    /// and ConSert activity (see `sesame-obs`).
    pub obs_metrics: MetricsSnapshot,
}

impl Scenario {
    /// The platform, for pre-run adjustments.
    pub fn platform_mut(&mut self) -> &mut Platform {
        &mut self.platform
    }

    /// The platform, read-only (checkpoint digests read state here).
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Commands the fleet airborne. [`Self::run`] calls this itself;
    /// step-wise drivers (checkpointing, benches) call it once before
    /// their [`Self::step_once`] loop.
    pub fn launch(&mut self) {
        self.platform.launch();
    }

    /// One tick of the full run loop — the platform step plus the
    /// scripted attack driver — exactly as [`Self::run`] executes it, so
    /// a step-wise replay reproduces a `run` bit for bit.
    pub fn step_once(&mut self) -> SimTime {
        let now = self.platform.step();
        self.drive_attack(now);
        now
    }

    /// Whether the run loop stops after the tick that returned `now`.
    pub fn should_stop(&self, now: SimTime) -> bool {
        if now >= self.deadline {
            return true;
        }
        if self.platform.mission_complete_at().is_some() {
            return (0..self.platform.uav_count()).all(|i| {
                let h = self.platform.handle(i);
                !self.platform.sim().mode(h).is_airborne()
            });
        }
        false
    }

    /// Captures a checkpoint of the run at the current tick: the logical
    /// clock, a digest of the observable state, and a copy-on-write
    /// reference to the scenario log (no platform state is copied).
    pub fn checkpoint(&mut self) -> Checkpoint {
        self.platform.record_checkpoint_capture();
        Checkpoint::capture(&self.platform, Arc::clone(&self.log))
    }

    /// Runs to completion (or the deadline) and collects the outcome.
    pub fn run(mut self) -> ScenarioOutcome {
        self.launch();
        loop {
            let now = self.step_once();
            if self.should_stop(now) {
                break;
            }
        }
        self.collect()
    }

    /// [`Self::run`], capturing a checkpoint every `every_ticks` ticks.
    /// The returned outcome is bit-identical to `run`'s (capturing only
    /// reads state, apart from the digest-excluded `checkpoint.*`
    /// counters).
    pub fn run_with_checkpoints(mut self, every_ticks: u64) -> (ScenarioOutcome, Vec<Checkpoint>) {
        let every = every_ticks.max(1);
        let mut checkpoints = Vec::new();
        self.launch();
        loop {
            let now = self.step_once();
            if self.should_stop(now) {
                break;
            }
            if self.platform.total_ticks().is_multiple_of(every) {
                checkpoints.push(self.checkpoint());
            }
        }
        (self.collect(), checkpoints)
    }

    /// Runs the remainder of a (typically recovered) scenario to
    /// completion and collects the outcome.
    pub fn resume(mut self) -> ScenarioOutcome {
        loop {
            let now = self.step_once();
            if self.should_stop(now) {
                break;
            }
        }
        self.collect()
    }

    fn drive_attack(&mut self, now: SimTime) {
        let Some(attack) = &self.attack else { return };
        let Some(injector) = self.injector.as_mut() else {
            return;
        };
        if now < attack.start {
            return;
        }
        let sec = now.as_millis() / 1000;
        if sec > self.last_forge_sec && now.as_millis().is_multiple_of(1000) {
            self.last_forge_sec = sec;
            let id = UavId::new(attack.uav_index as u32 + 1);
            // Forge a waypoint well off the registered plan, dragging the
            // mapping pattern sideways.
            let h = self.platform.handle(attack.uav_index);
            let here = self.platform.sim().true_position(h);
            let off_plan = here.destination(90.0, 400.0 + (sec % 5) as f64 * 40.0);
            injector.spoof_waypoint(self.platform.bus_mut(), now, id, off_plan);
        }
    }

    fn collect(self) -> ScenarioOutcome {
        let n = self.platform.uav_count();
        let availability: Vec<f64> = (0..n).map(|i| self.platform.availability(i)).collect();
        let mean_availability = availability.iter().sum::<f64>() / n as f64;
        let (mut attempts, mut hits) = (0u64, 0u64);
        for i in 0..n {
            let (a, h, _) = self.platform.detection_stats(i);
            attempts += a;
            hits += h;
        }
        let detection_accuracy = if attempts == 0 {
            0.0
        } else {
            hits as f64 / attempts as f64
        };
        let metrics = Metrics {
            mission_completed_fraction: self.platform.completion(),
            mission_complete_secs: self.platform.mission_complete_at().map(|t| t.as_secs_f64()),
            availability,
            mean_availability,
            persons_found: self.platform.tasks().mission().findings().len(),
            detection_accuracy,
            attack_detected_secs: self
                .platform
                .series()
                .attack_detected_at()
                .map(|t| t.as_secs_f64()),
            cl_landing: self.platform.series().cl_outcome(),
        };
        let trajectories = (0..n)
            .map(|i| self.platform.series().trajectory(i).to_vec())
            .collect();
        // Merge the platform's and the simulator's event histories into
        // one time-ordered log.
        let mut merged = EventLog::new();
        let plat: Vec<_> = self.platform.events().iter().cloned().collect();
        let sim: Vec<_> = self.platform.sim().events().iter().cloned().collect();
        let (mut i, mut j) = (0usize, 0usize);
        while i < plat.len() || j < sim.len() {
            let take_plat = match (plat.get(i), sim.get(j)) {
                (Some(a), Some(b)) => a.time <= b.time,
                (Some(_), None) => true,
                _ => false,
            };
            if take_plat {
                merged.push(plat[i].time, plat[i].event.clone());
                i += 1;
            } else {
                merged.push(sim[j].time, sim[j].event.clone());
                j += 1;
            }
        }
        let area_origin = self.platform.sim().world().base();
        let area_extent_m = (
            self.platform.sim().world().width_m(),
            self.platform.sim().world().height_m(),
        );
        let persons = self.platform.sim().world().persons().to_vec();
        let findings = self
            .platform
            .tasks()
            .mission()
            .findings()
            .iter()
            .map(|f| f.position)
            .collect();
        ScenarioOutcome {
            metrics,
            pof_series: self.platform.series().pof().to_vec(),
            uncertainty_series: self.platform.series().uncertainty().to_vec(),
            trajectories,
            events: merged,
            area_origin,
            area_extent_m,
            persons,
            findings,
            obs_metrics: self.platform.metrics_snapshot(),
        }
    }

    /// Remaining deadline.
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }
}

/// Convenience: the §V-A battery-fault timing on a fleet sized so the
/// nominal mission ends near the paper's 510 s.
pub fn fig5_like_config(seed: u64, sesame: bool) -> ScenarioBuilder {
    let mut config = PlatformConfig {
        sesame_enabled: sesame,
        area_width_m: 1080.0,
        area_height_m: 324.0,
        person_count: 6,
        seed,
        battery_hover_drain: 0.0006,
        ..PlatformConfig::default()
    };
    // Fig. 5 calibration: reliability degrades against the 0.9 abort
    // threshold, crossing ≈260 s after the fault (see DESIGN.md).
    config.safedrones.battery.activation_energy_ev = 1.0;
    config.safedrones.battery.lambda_base = 3.0e-6;
    config.safedrones.medium_max = 0.89;
    ScenarioBuilder::new(seed)
        .with_config(config)
        .fault(
            SimTime::from_secs(250),
            0,
            FaultKind::BatteryOverTemp { soc_drop: 0.4 },
        )
        .deadline(SimTime::from_secs(1200))
}

/// One-second-resolution helper: the duration between two optional times.
pub fn secs_between(from: Option<f64>, to: Option<f64>) -> Option<f64> {
    match (from, to) {
        (Some(a), Some(b)) => Some(b - a),
        _ => None,
    }
}

// The parallel campaign executor moves scenario descriptions and run
// outcomes across worker threads; losing `Send + Sync` here (e.g. by
// introducing an `Rc`) must fail at compile time, not in a sweep.
sesame_types::assert_send_sync!(
    PlatformConfig,
    ScenarioBuilder,
    ScenarioTemplate,
    ScenarioOutcome,
    Metrics,
    FaultEntry,
    CommFaultEntry,
    ComputeFaultEntry,
    SpoofAttack,
    ScenarioError,
);

// A built scenario (platform, bus, fleet state) is owned by exactly one
// worker at a time but must still be movable onto it.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Scenario>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_scenario_completes() {
        let outcome = ScenarioBuilder::new(7).build().run();
        assert!(outcome.metrics.mission_completed_fraction > 0.99);
        assert!(outcome.metrics.mission_complete_secs.is_some());
        assert!(outcome.metrics.mean_availability > 0.5);
        assert!(outcome.metrics.attack_detected_secs.is_none());
        assert_eq!(outcome.trajectories.len(), 3);
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let a = ScenarioBuilder::new(11).build().run();
        let b = ScenarioBuilder::new(11).build().run();
        assert_eq!(
            a.metrics.mission_complete_secs,
            b.metrics.mission_complete_secs
        );
        assert_eq!(a.pof_series, b.pof_series);
        assert_eq!(a.trajectories[0], b.trajectories[0]);
    }

    #[test]
    fn different_seed_differs() {
        let a = ScenarioBuilder::new(1).build().run();
        let b = ScenarioBuilder::new(2).build().run();
        assert_ne!(a.trajectories[0], b.trajectories[0]);
    }

    #[test]
    fn template_instantiation_matches_from_scratch() {
        let template =
            ScenarioTemplate::new(ScenarioBuilder::new(0).deadline(SimTime::from_secs(60)));
        let a = template.instantiate(11).build().run();
        let b = ScenarioBuilder::new(11)
            .deadline(SimTime::from_secs(60))
            .build()
            .run();
        assert_eq!(a.trajectories, b.trajectories);
        assert_eq!(
            a.metrics.mission_complete_secs,
            b.metrics.mission_complete_secs
        );
        assert_eq!(a.obs_metrics.counters, b.obs_metrics.counters);
        // Two instantiations of different seeds are independent streams.
        let c = template.instantiate(12).build().run();
        assert_ne!(a.trajectories[0], c.trajectories[0]);
    }

    #[test]
    fn secs_between_handles_missing() {
        assert_eq!(secs_between(Some(1.0), Some(5.0)), Some(4.0));
        assert_eq!(secs_between(None, Some(5.0)), None);
        assert_eq!(secs_between(Some(5.0), None), None);
    }
}
