//! Deterministic sharded execution — the std-only worker pool behind
//! both the fleet-sharded tick ([`crate::orchestrator::Platform::step`])
//! and the `sesame-bench` campaign sweeps.
//!
//! The contract is the one the whole reproduction stands on: results
//! are **merged in item order, never completion order**, so any worker
//! count produces byte-identical output. Each item's result is written
//! into its own pre-allocated slot by workers that pull indices from a
//! shared atomic cursor (work stealing with a one-item grain), and
//! reduction happens after every participant has drained the cursor.
//!
//! Workers are **persistent**: the first parallel call spawns a
//! process-wide pool of daemon threads, and every later call hands its
//! fan-out to the same threads (see [`pool`]). A 100 ms platform tick
//! makes three fan-out calls; spawning and joining OS threads for each
//! (the previous `std::thread::scope` design) cost more than the work
//! being parallelized and made the sharded tick *slower* than serial on
//! small fleets. The pool replaces the per-call spawn/join with one
//! condvar wake and one completion wait.
//!
//! Two entry points, each in an infallible and a panic-catching flavor:
//!
//! * [`run_indexed`] / [`try_run_indexed`] — read-only fan-out: `f(i)`
//!   for `i in 0..count`.
//! * [`run_tasks`] / [`try_run_tasks`] — owned work items: each `W`
//!   (e.g. a disjoint `&mut [UavRt]` shard carved out of the fleet with
//!   `split_at_mut`) is handed to exactly one worker, satisfying the
//!   aliasing rules without any unsafe code.
//!
//! A panic inside `f` never crosses a thread boundary raw: the worker
//! catches it at the task that raised it, so no slot mutex is ever
//! poisoned and the scoped join always succeeds. The `try_` variants
//! surface the panic as a structured per-task [`TaskPanic`] (task
//! index plus payload message) in item order; the infallible variants
//! re-raise the first (lowest-index) panic on the caller's thread with
//! the task index prepended — same abort semantics as before the
//! catch, minus the poisoned join.
//!
//! ```
//! use sesame_core::shard;
//!
//! let squares = shard::run_indexed(4, 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! let mut data = vec![1, 2, 3, 4];
//! let (a, b) = data.split_at_mut(2);
//! let sums = shard::run_tasks(2, vec![a, b], |_, shard| {
//!     shard.iter_mut().for_each(|x| *x *= 10);
//!     shard.iter().sum::<i32>()
//! });
//! assert_eq!(sums, vec![30, 70]);
//! assert_eq!(data, vec![10, 20, 30, 40]);
//!
//! let caught = shard::try_run_indexed(2, 3, |i| {
//!     if i == 1 {
//!         panic!("boom");
//!     }
//!     i
//! });
//! assert_eq!(caught[0], Ok(0));
//! assert_eq!(caught[1].as_ref().unwrap_err().message, "boom");
//! assert_eq!(caught[2], Ok(2));
//! ```

use std::any::Any;
use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once};

/// The persistent worker pool behind [`try_run_indexed`] and
/// [`try_run_tasks`].
///
/// One process-wide set of daemon threads executes every fan-out. A
/// call *submits* a job — a borrowed `&(dyn Fn() + Sync)` worker body
/// that each participant runs exactly once (the body is the atomic
/// cursor drain, so any number of participants is correct) — then runs
/// the body itself and blocks until every helper that entered the job
/// has left it.
///
/// # Safety architecture
///
/// The worker body borrows the caller's stack (the result slots, the
/// user closure, the work items), but a persistent thread needs a
/// `'static` reference — so submission erases the lifetime with one
/// `transmute`. The erasure is sound because the borrow is bounded by a
/// completion barrier on *every* exit path:
///
/// * [`Pool::run`] only returns once `running == 0` and the job is
///   retired, so no helper can still be inside (or about to enter) the
///   body when the caller's frame unwinds or returns.
/// * The barrier wait lives in a drop guard, so a panic escaping the
///   caller's own body run still waits for the helpers before the
///   frame dies.
/// * Helpers only enter a job while it is installed (`entries > 0`,
///   checked under the state lock), and the job is uninstalled before
///   the barrier opens.
///
/// A nested fan-out from inside a worker (the body of one job calling
/// [`run_indexed`] again) runs inline on that worker instead of
/// submitting — the pool is draining the outer job, and waiting on it
/// from one of its own workers would deadlock.
mod pool {
    use std::cell::Cell;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Condvar, Mutex, OnceLock};

    /// One submitted fan-out: the lifetime-erased worker body, how many
    /// helper entries remain, and which submission it belongs to.
    #[derive(Clone, Copy)]
    struct Job {
        /// The worker body. Points into the submitting call's stack;
        /// valid until that call's completion barrier opens (see the
        /// module docs).
        body: &'static (dyn Fn() + Sync),
        /// Helper entries not yet claimed. Each helper decrements once
        /// per job; at zero the job stops admitting.
        entries: usize,
        /// Submission number, used by the barrier wait.
        epoch: u64,
    }

    #[derive(Default)]
    struct State {
        job: Option<Job>,
        /// Helpers currently inside `job.body`.
        running: usize,
        /// Persistent worker threads spawned so far.
        threads: usize,
        /// Submission counter.
        epoch: u64,
        /// Highest epoch whose job has fully retired (all entries
        /// claimed or withdrawn, no helper still inside).
        completed: u64,
    }

    struct Pool {
        state: Mutex<State>,
        /// Signalled when a job is installed.
        work: Condvar,
        /// Signalled when a job retires.
        done: Condvar,
    }

    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        })
    }

    thread_local! {
        /// Whether this thread is a pool worker (nested fan-outs run
        /// inline, see the module docs).
        static IS_WORKER: Cell<bool> = const { Cell::new(false) };
    }

    /// Waits for `epoch` to retire when dropped — the completion
    /// barrier, panic-proof by living in `Drop`.
    struct Barrier {
        epoch: u64,
    }

    impl Drop for Barrier {
        fn drop(&mut self) {
            let pool = global();
            let mut st = pool.state.lock().expect("pool state never poisoned");
            while st.completed < self.epoch {
                st = pool.done.wait(st).expect("pool state never poisoned");
            }
        }
    }

    /// The persistent helper thread: claim an entry of the installed
    /// job, run its body once, retire the job when the last entry
    /// leaves, sleep until the next installation.
    fn worker_loop() {
        IS_WORKER.with(|w| w.set(true));
        let pool = global();
        let mut st = pool.state.lock().expect("pool state never poisoned");
        loop {
            match st.job {
                Some(job) if job.entries > 0 => {
                    st.job.as_mut().expect("matched Some above").entries -= 1;
                    st.running += 1;
                    drop(st);
                    // A panic escaping the body would mean the per-item
                    // catch inside it failed; the caller's slot-invariant
                    // checks will surface that. The worker itself must
                    // survive to keep the pool alive — and must reach the
                    // bookkeeping below, or the barrier never opens.
                    let _ = catch_unwind(AssertUnwindSafe(job.body));
                    st = pool.state.lock().expect("pool state never poisoned");
                    st.running -= 1;
                    if st.running == 0
                        && st
                            .job
                            .is_some_and(|j| j.entries == 0 && j.epoch == job.epoch)
                    {
                        st.job = None;
                        st.completed = job.epoch;
                        pool.done.notify_all();
                    }
                }
                _ => {
                    st = pool.work.wait(st).expect("pool state never poisoned");
                }
            }
        }
    }

    /// Runs `body` once on the calling thread and once on each of
    /// `helpers` pool workers, returning only after every participant
    /// has finished. `body` must be idempotent under extra runs (the
    /// cursor-drain bodies are: a drained cursor returns immediately).
    pub(super) fn run(helpers: usize, body: &(dyn Fn() + Sync)) {
        if helpers == 0 || IS_WORKER.with(Cell::get) {
            // Serial, or a nested fan-out inside a worker: inline.
            body();
            return;
        }
        let pool = global();
        let epoch;
        {
            let mut st = pool.state.lock().expect("pool state never poisoned");
            // One job at a time: a second platform submitting from
            // another thread waits for the current job to retire.
            while st.job.is_some() || st.running > 0 {
                st = pool.done.wait(st).expect("pool state never poisoned");
            }
            while st.threads < helpers {
                st.threads += 1;
                std::thread::Builder::new()
                    .name("sesame-shard".into())
                    .spawn(worker_loop)
                    .expect("spawn shard worker");
            }
            st.epoch += 1;
            epoch = st.epoch;
            // SAFETY: the borrow is bounded by the completion barrier —
            // `Barrier::drop` below blocks until this epoch retires, on
            // both the return and the unwind path, so no worker holds
            // `body` past this call (see the module docs).
            let body: &'static (dyn Fn() + Sync) = unsafe {
                std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(body)
            };
            st.job = Some(Job {
                body,
                entries: helpers,
                epoch,
            });
        }
        pool.work.notify_all();
        let _barrier = Barrier { epoch };
        // Participate: the caller's run is what guarantees progress even
        // if every helper is still waking up.
        body();
        // `_barrier` drops here, waiting for the helpers.
    }
}

/// A worker panic captured at the task that raised it: the item index
/// plus the stringified panic payload. Produced by [`try_run_indexed`] /
/// [`try_run_tasks`] instead of letting the payload tear down the
/// scoped-thread join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the item whose closure panicked.
    pub index: usize,
    /// The panic payload rendered as text (`&str` / `String` payloads
    /// verbatim, anything else a placeholder).
    pub message: String,
}

impl fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Renders a `catch_unwind` payload as text. `panic!("...")` yields
/// `&'static str`, `panic!("{x}")` yields `String`; anything else (a
/// custom `panic_any` payload) gets a stable placeholder so fault
/// records stay deterministic.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

thread_local! {
    /// Whether the current thread is inside a [`quiet_catch_unwind`]
    /// scope, i.e. any panic raised right now will be absorbed and
    /// reported structurally rather than escaping.
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

/// One-time installation of the hook wrapper behind
/// [`quiet_catch_unwind`].
static QUIET_HOOK: Once = Once::new();

/// [`catch_unwind`] without the default panic hook's stderr message and
/// backtrace for the panics this catch absorbs.
///
/// Caught panics here are *reported*, not lost — as a [`TaskPanic`], or
/// as the orchestrator's `UavFault` trace/metric/finding records — so
/// the default hook's output is pure noise, and under a chaos campaign
/// that schedules panics on purpose it is a torrent of it. The first
/// call wraps the process's current panic hook with one that defers to
/// it unless the unwinding thread is inside a quiet scope; escaped
/// (re-raised) panics therefore still print normally. Scopes nest — the
/// flag is saved and restored, not cleared.
pub fn quiet_catch_unwind<T>(f: impl FnOnce() -> T) -> Result<T, Box<dyn Any + Send + 'static>> {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET.with(Cell::get) {
                prev(info);
            }
        }));
    });
    let was = QUIET.with(|q| q.replace(true));
    // AssertUnwindSafe: see `catch`'s argument — callers treat an Err as
    // "this item's state is suspect" and never reuse it.
    let result = catch_unwind(AssertUnwindSafe(f));
    QUIET.with(|q| q.set(was));
    result
}

fn catch<T>(index: usize, f: impl FnOnce() -> T) -> Result<T, TaskPanic> {
    // AssertUnwindSafe (inside quiet_catch_unwind): the closure's
    // captures are only observed again by the caller through the
    // returned Err, which callers treat as "this item's state is
    // suspect" (the orchestrator quarantines the UAV and never reuses
    // its engine). See DESIGN.md's unwind-safety argument.
    quiet_catch_unwind(f).map_err(|payload| TaskPanic {
        index,
        message: panic_message(payload.as_ref()),
    })
}

/// Re-raises the first (lowest-index) captured panic, if any, with the
/// task index prepended to the original message.
fn resume_first<T>(results: Vec<Result<T, TaskPanic>>) -> Vec<T> {
    results
        .into_iter()
        .map(|r| r.unwrap_or_else(|p| panic!("{p}")))
        .collect()
}

/// Runs `f(0..count)` on a pool of `jobs` workers and returns the
/// results in *index order*, regardless of which worker finished which
/// item when.
///
/// With `jobs <= 1` (or a single item) no threads are spawned and the
/// items run inline in index order — the serial reference path. The
/// parallel path produces the exact same `Vec` because every item's
/// result is placed by index, not by arrival.
///
/// A panic inside `f` is caught per task and re-raised on the caller's
/// thread for the lowest-index failing item; use [`try_run_indexed`] to
/// observe panics as values instead.
pub fn run_indexed<T, F>(jobs: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    resume_first(try_run_indexed(jobs, count, f))
}

/// [`run_indexed`] with structured panic capture: each item yields
/// `Ok(T)` or the [`TaskPanic`] its closure raised, in index order. The
/// remaining items still run — one poisoned item never takes down the
/// fan-out.
pub fn try_run_indexed<T, F>(jobs: usize, count: usize, f: F) -> Vec<Result<T, TaskPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.clamp(1, count.max(1));
    if jobs <= 1 {
        return (0..count).map(|i| catch(i, || f(i))).collect();
    }
    // One slot per item. A Mutex<Option<T>> per slot keeps this std-only
    // and safe; it is uncontended (each slot is locked exactly once) so
    // the cost is a few atomic ops per *item*, noise against a full
    // scenario run. The catch runs *inside* the worker, before the slot
    // lock, so a panicking closure can never poison a slot.
    let slots: Vec<Mutex<Option<Result<T, TaskPanic>>>> =
        (0..count).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    pool::run(jobs - 1, &|| loop {
        let idx = cursor.fetch_add(1, Ordering::Relaxed);
        if idx >= count {
            break;
        }
        let result = catch(idx, || f(idx));
        // Invariant: each slot is locked once by the single
        // worker that claimed its index, and `f` cannot unwind
        // while it is held — the lock cannot be poisoned.
        *slots[idx].lock().expect("slot mutex never poisoned") = Some(result);
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot mutex never poisoned")
                // Invariant: the pool's completion barrier opened, so
                // every index below `count` was claimed and its slot
                // filled.
                .expect("barrier opened, so every claimed slot was filled")
        })
        .collect()
}

/// Runs `f` once over each owned work item on a pool of `jobs` workers
/// and returns the results in *item order*. Each item is taken by
/// exactly one worker, so `W` may carry exclusive access — e.g. the
/// disjoint `&mut` shard slices of the fleet tick.
///
/// With `jobs <= 1` (or a single item) everything runs inline on the
/// caller's thread in item order.
///
/// A panic inside `f` is caught per task and re-raised on the caller's
/// thread for the lowest-index failing item; use [`try_run_tasks`] to
/// observe panics as values instead.
pub fn run_tasks<W, R, F>(jobs: usize, tasks: Vec<W>, f: F) -> Vec<R>
where
    W: Send,
    R: Send,
    F: Fn(usize, &mut W) -> R + Sync,
{
    resume_first(try_run_tasks(jobs, tasks, f))
}

/// [`run_tasks`] with structured panic capture: each task yields
/// `Ok(R)` or the [`TaskPanic`] its closure raised, in item order. A
/// panicking task drops its work item `W` (its exclusive state is
/// suspect anyway) and the remaining tasks still run.
pub fn try_run_tasks<W, R, F>(jobs: usize, tasks: Vec<W>, f: F) -> Vec<Result<R, TaskPanic>>
where
    W: Send,
    R: Send,
    F: Fn(usize, &mut W) -> R + Sync,
{
    let count = tasks.len();
    let jobs = jobs.clamp(1, count.max(1));
    if jobs <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, mut w)| catch(i, || f(i, &mut w)))
            .collect();
    }
    // A claim slot per task: the work item (taken once) and its result.
    type Slot<W, R> = Mutex<(Option<W>, Option<Result<R, TaskPanic>>)>;
    let slots: Vec<Slot<W, R>> = tasks
        .into_iter()
        .map(|w| Mutex::new((Some(w), None)))
        .collect();
    let cursor = AtomicUsize::new(0);
    pool::run(jobs - 1, &|| loop {
        let idx = cursor.fetch_add(1, Ordering::Relaxed);
        if idx >= count {
            break;
        }
        // Invariant: the work item is taken and the result
        // stored under two *separate* lock acquisitions, and the
        // closure runs between them with no lock held — a panic
        // in `f` cannot poison the slot.
        let mut w = slots[idx]
            .lock()
            .expect("slot mutex never poisoned")
            .0
            .take()
            // Invariant: the atomic cursor hands each index to
            // exactly one worker.
            .expect("each task is claimed by exactly one worker");
        let result = catch(idx, || f(idx, &mut w));
        slots[idx].lock().expect("slot mutex never poisoned").1 = Some(result);
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot mutex never poisoned")
                .1
                // Invariant: the pool's completion barrier opened, so
                // every index below `count` was claimed and its slot
                // filled.
                .expect("barrier opened, so every claimed slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn indexed_results_are_in_index_order_at_any_worker_count() {
        let serial = run_indexed(1, 100, |i| i * 3);
        for jobs in [2, 4, 8, 16] {
            assert_eq!(run_indexed(jobs, 100, |i| i * 3), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn tasks_run_exactly_once_each() {
        let calls = AtomicU64::new(0);
        let out = run_tasks(8, (0..257).collect::<Vec<_>>(), |i, w| {
            calls.fetch_add(1, Ordering::Relaxed);
            (i, *w)
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert!(out.iter().enumerate().all(|(i, &(j, v))| i == j && i == v));
    }

    #[test]
    fn tasks_carry_exclusive_slices() {
        let mut data: Vec<u64> = (0..50).collect();
        let mut tasks = Vec::new();
        let mut rest = data.as_mut_slice();
        for len in [17, 17, 16] {
            let (head, tail) = rest.split_at_mut(len);
            tasks.push(head);
            rest = tail;
        }
        let sums = run_tasks(3, tasks, |_, shard| {
            shard.iter_mut().for_each(|x| *x += 1);
            shard.iter().sum::<u64>()
        });
        assert_eq!(sums.iter().sum::<u64>(), (1..=50).sum());
        assert_eq!(data[0], 1);
        assert_eq!(data[49], 50);
    }

    #[test]
    fn empty_and_oversubscribed_pools_are_fine() {
        assert_eq!(run_tasks(4, Vec::<u8>::new(), |_, w| *w), Vec::<u8>::new());
        assert_eq!(run_tasks(64, vec![1, 2, 3], |_, w| *w * 2), vec![2, 4, 6]);
        assert_eq!(run_tasks(0, vec![5], |_, w| *w), vec![5], "jobs=0 clamps");
    }

    #[test]
    fn try_run_indexed_captures_panics_per_task() {
        for jobs in [1, 4] {
            let out = try_run_indexed(jobs, 10, |i| {
                if i % 4 == 1 {
                    panic!("item {i} exploded");
                }
                i * 2
            });
            assert_eq!(out.len(), 10, "jobs={jobs}");
            for (i, r) in out.iter().enumerate() {
                if i % 4 == 1 {
                    let p = r.as_ref().unwrap_err();
                    assert_eq!(p.index, i, "jobs={jobs}");
                    assert_eq!(p.message, format!("item {i} exploded"), "jobs={jobs}");
                } else {
                    assert_eq!(*r, Ok(i * 2), "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn try_run_tasks_surviving_tasks_complete_around_a_panic() {
        for jobs in [1, 3] {
            let mut data: Vec<u64> = (0..30).collect();
            let mut tasks = Vec::new();
            let mut rest = data.as_mut_slice();
            for len in [10, 10, 10] {
                let (head, tail) = rest.split_at_mut(len);
                tasks.push(head);
                rest = tail;
            }
            let out = try_run_tasks(jobs, tasks, |i, shard| {
                shard.iter_mut().for_each(|x| *x += 100);
                if i == 1 {
                    panic!("shard 1 died");
                }
                shard.iter().sum::<u64>()
            });
            assert!(out[0].is_ok() && out[2].is_ok(), "jobs={jobs}");
            let p = out[1].as_ref().unwrap_err();
            assert_eq!((p.index, p.message.as_str()), (1, "shard 1 died"));
            // Mutations before the panic landed are visible: the join
            // was not poisoned and the data structure is intact.
            assert_eq!(data[0], 100, "jobs={jobs}");
            assert_eq!(data[29], 129, "jobs={jobs}");
        }
    }

    #[test]
    fn infallible_api_reraises_lowest_index_panic_with_context() {
        for jobs in [1, 4] {
            let err = catch_unwind(AssertUnwindSafe(|| {
                run_indexed(jobs, 8, |i| {
                    if i >= 5 {
                        panic!("boom {i}");
                    }
                    i
                })
            }))
            .expect_err("must re-raise");
            let msg = panic_message(err.as_ref());
            assert_eq!(msg, "task 5 panicked: boom 5", "jobs={jobs}");
        }
    }

    #[test]
    fn quiet_catch_scopes_nest_and_restore() {
        let outer = quiet_catch_unwind(|| {
            let inner = quiet_catch_unwind(|| panic!("inner"));
            assert_eq!(panic_message(inner.unwrap_err().as_ref()), "inner");
            // Still inside the outer quiet scope after the inner one
            // restored the flag.
            assert!(QUIET.with(Cell::get));
            7
        });
        assert_eq!(outer.ok(), Some(7));
        assert!(!QUIET.with(Cell::get));
    }

    #[test]
    fn panic_message_handles_common_payloads() {
        let p = catch_unwind(|| panic!("static")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "static");
        let x = 7;
        let p = catch_unwind(move || panic!("dynamic {x}")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "dynamic 7");
        let p = catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }
}
