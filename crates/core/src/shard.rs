//! Deterministic sharded execution — the std-only worker pool behind
//! both the fleet-sharded tick ([`crate::orchestrator::Platform::step`])
//! and the `sesame-bench` campaign sweeps.
//!
//! The contract is the one the whole reproduction stands on: results
//! are **merged in item order, never completion order**, so any worker
//! count produces byte-identical output. Each item's result is written
//! into its own pre-allocated slot by a `std::thread::scope` pool that
//! pulls indices from a shared atomic cursor (work stealing with a
//! one-item grain), and reduction happens after the scope joins.
//!
//! Two entry points:
//!
//! * [`run_indexed`] — read-only fan-out: `f(i)` for `i in 0..count`.
//! * [`run_tasks`] — owned work items: each `W` (e.g. a disjoint
//!   `&mut [UavRt]` shard carved out of the fleet with `split_at_mut`)
//!   is handed to exactly one worker, satisfying the aliasing rules
//!   without any unsafe code.
//!
//! ```
//! use sesame_core::shard;
//!
//! let squares = shard::run_indexed(4, 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! let mut data = vec![1, 2, 3, 4];
//! let (a, b) = data.split_at_mut(2);
//! let sums = shard::run_tasks(2, vec![a, b], |_, shard| {
//!     shard.iter_mut().for_each(|x| *x *= 10);
//!     shard.iter().sum::<i32>()
//! });
//! assert_eq!(sums, vec![30, 70]);
//! assert_eq!(data, vec![10, 20, 30, 40]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0..count)` on a pool of `jobs` workers and returns the
/// results in *index order*, regardless of which worker finished which
/// item when.
///
/// With `jobs <= 1` (or a single item) no threads are spawned and the
/// items run inline in index order — the serial reference path. The
/// parallel path produces the exact same `Vec` because every item's
/// result is placed by index, not by arrival.
///
/// A panic inside `f` propagates out of the scope after the remaining
/// workers drain.
pub fn run_indexed<T, F>(jobs: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.clamp(1, count.max(1));
    if jobs <= 1 {
        return (0..count).map(f).collect();
    }
    // One slot per item. A Mutex<Option<T>> per slot keeps this std-only
    // and safe; it is uncontended (each slot is locked exactly once) so
    // the cost is a few atomic ops per *item*, noise against a full
    // scenario run.
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= count {
                    break;
                }
                let result = f(idx);
                *slots[idx].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("scope joined, so every claimed slot was filled")
        })
        .collect()
}

/// Runs `f` once over each owned work item on a pool of `jobs` workers
/// and returns the results in *item order*. Each item is taken by
/// exactly one worker, so `W` may carry exclusive access — e.g. the
/// disjoint `&mut` shard slices of the fleet tick.
///
/// With `jobs <= 1` (or a single item) everything runs inline on the
/// caller's thread in item order.
pub fn run_tasks<W, R, F>(jobs: usize, tasks: Vec<W>, f: F) -> Vec<R>
where
    W: Send,
    R: Send,
    F: Fn(usize, &mut W) -> R + Sync,
{
    let count = tasks.len();
    let jobs = jobs.clamp(1, count.max(1));
    if jobs <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, mut w)| f(i, &mut w))
            .collect();
    }
    let slots: Vec<Mutex<(Option<W>, Option<R>)>> = tasks
        .into_iter()
        .map(|w| Mutex::new((Some(w), None)))
        .collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= count {
                    break;
                }
                let mut w = slots[idx]
                    .lock()
                    .unwrap()
                    .0
                    .take()
                    .expect("each task is claimed by exactly one worker");
                let result = f(idx, &mut w);
                slots[idx].lock().unwrap().1 = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .1
                .expect("scope joined, so every claimed slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn indexed_results_are_in_index_order_at_any_worker_count() {
        let serial = run_indexed(1, 100, |i| i * 3);
        for jobs in [2, 4, 8, 16] {
            assert_eq!(run_indexed(jobs, 100, |i| i * 3), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn tasks_run_exactly_once_each() {
        let calls = AtomicU64::new(0);
        let out = run_tasks(8, (0..257).collect::<Vec<_>>(), |i, w| {
            calls.fetch_add(1, Ordering::Relaxed);
            (i, *w)
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert!(out.iter().enumerate().all(|(i, &(j, v))| i == j && i == v));
    }

    #[test]
    fn tasks_carry_exclusive_slices() {
        let mut data: Vec<u64> = (0..50).collect();
        let mut tasks = Vec::new();
        let mut rest = data.as_mut_slice();
        for len in [17, 17, 16] {
            let (head, tail) = rest.split_at_mut(len);
            tasks.push(head);
            rest = tail;
        }
        let sums = run_tasks(3, tasks, |_, shard| {
            shard.iter_mut().for_each(|x| *x += 1);
            shard.iter().sum::<u64>()
        });
        assert_eq!(sums.iter().sum::<u64>(), (1..=50).sum());
        assert_eq!(data[0], 1);
        assert_eq!(data[49], 50);
    }

    #[test]
    fn empty_and_oversubscribed_pools_are_fine() {
        assert_eq!(run_tasks(4, Vec::<u8>::new(), |_, w| *w), Vec::<u8>::new());
        assert_eq!(run_tasks(64, vec![1, 2, 3], |_, w| *w * 2), vec![2, 4, 6]);
        assert_eq!(run_tasks(0, vec![5], |_, w| *w), vec![5], "jobs=0 clamps");
    }
}
