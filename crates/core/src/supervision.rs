//! Degraded-mode supervision: the per-UAV health state machine.
//!
//! The paper's dependability argument (§II, §V) assumes the platform
//! *notices* when a UAV stops being reachable and falls back to a safe
//! behaviour instead of silently flying on. This module supplies that
//! layer: each UAV is tracked by a [`UavSupervisor`] fed by two
//! freshness signals —
//!
//! * **telemetry staleness** (GCS side): when did the last telemetry
//!   message actually arrive over the bus, and
//! * **GCS heartbeat** (UAV side): when did the UAV last hear the ground
//!   station's periodic heartbeat on its command topic —
//!
//! and a watchdog folds the two into a three-state machine:
//!
//! ```text
//! Nominal ──(stale ≥ degraded_after)──▶ Degraded
//! Degraded ──(stale ≥ fallback_after)──▶ SafeFallback (→ return to base)
//! any ──(both signals fresh)──▶ Nominal
//! any ──(isolated compute fault)──▶ Quarantined (→ RTB + revival probe)
//! ```
//!
//! The orchestrator runs the machine every tick, counts and traces every
//! transition through `sesame-obs`, and commands the minimal-risk
//! fallback when a UAV enters [`HealthState::SafeFallback`].
//!
//! [`HealthState::Quarantined`] is different from the staleness states:
//! it is entered and left *only* through the containment layer
//! ([`crate::containment`]) when a UAV's own compute crashed or emitted
//! non-finite outputs — the watchdog ([`UavSupervisor::assess`]) is
//! suspended while it holds, and release goes through the
//! exponential-backoff revival probe, never through link freshness.

use sesame_types::time::{SimDuration, SimTime};

/// The supervision health of one UAV, as seen by the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// Both link directions fresh; full mission authority.
    #[default]
    Nominal,
    /// One or both freshness signals stale past the watchdog window; the
    /// platform treats the UAV's data and reachability as suspect.
    Degraded,
    /// Staleness exceeded the fallback window: the UAV is presumed cut
    /// off and is commanded (or presumed to autonomously execute) the
    /// safe fallback behaviour — return to base.
    SafeFallback,
    /// The UAV's own compute faulted (a panic or non-finite EDDI output
    /// was isolated): it is excised from solve-class dedup, the airspace
    /// scan and ConSert composition, commanded RTB, and only re-admitted
    /// by the containment layer's revival probe. Entered and left via
    /// [`UavSupervisor::quarantine`] / [`UavSupervisor::release`], never
    /// by the staleness watchdog.
    Quarantined,
}

impl HealthState {
    /// Stable lower-case label for metrics and traces.
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthState::Nominal => "nominal",
            HealthState::Degraded => "degraded",
            HealthState::SafeFallback => "safe_fallback",
            HealthState::Quarantined => "quarantined",
        }
    }

    /// Numeric encoding for gauges (0 = nominal, 1 = degraded, 2 = safe
    /// fallback, 3 = quarantined).
    pub fn as_gauge(&self) -> f64 {
        match self {
            HealthState::Nominal => 0.0,
            HealthState::Degraded => 1.0,
            HealthState::SafeFallback => 2.0,
            HealthState::Quarantined => 3.0,
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Watchdog windows and retry policy of the supervision layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisionConfig {
    /// Whether the supervision layer runs at all.
    pub enabled: bool,
    /// Staleness (of either signal) that demotes a UAV to
    /// [`HealthState::Degraded`].
    pub degraded_after: SimDuration,
    /// Staleness that triggers [`HealthState::SafeFallback`].
    pub fallback_after: SimDuration,
    /// How often the GCS publishes its heartbeat on `/{uav}/cmd/heartbeat`.
    pub heartbeat_period: SimDuration,
    /// Maximum re-publishes of an unacknowledged command.
    pub max_command_retries: u32,
    /// Base retry backoff; doubles per attempt.
    pub retry_backoff: SimDuration,
    /// Whether isolated compute faults quarantine the UAV (the
    /// containment layer). With this off a caught panic still cannot
    /// abort the campaign, but the UAV is retired for the rest of the
    /// run instead of probed for revival.
    pub quarantine_enabled: bool,
    /// Consecutive clean revival-probe ticks required before a
    /// quarantined UAV is re-admitted to the fleet.
    pub revival_clean_ticks: u64,
    /// Base spacing, in ticks, between revival probe attempts after a
    /// failed probe; doubles per failure.
    pub revival_backoff_ticks: u64,
    /// Cap on the revival backoff exponent (spacing saturates at
    /// `revival_backoff_ticks << revival_backoff_cap`).
    pub revival_backoff_cap: u32,
    /// Consecutive faulty ticks of one UAV that trip the tick watchdog
    /// and demote the sharded tick to the serial reference path.
    pub watchdog_trip_after: u64,
    /// Ticks the watchdog keeps the tick demoted to serial after a trip.
    pub watchdog_cooldown_ticks: u64,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig {
            enabled: true,
            degraded_after: SimDuration::from_secs(2),
            fallback_after: SimDuration::from_secs(6),
            heartbeat_period: SimDuration::from_secs(1),
            max_command_retries: 3,
            retry_backoff: SimDuration::from_millis(400),
            quarantine_enabled: true,
            revival_clean_ticks: 8,
            revival_backoff_ticks: 16,
            revival_backoff_cap: 6,
            watchdog_trip_after: 3,
            watchdog_cooldown_ticks: 64,
        }
    }
}

/// A health transition produced by [`UavSupervisor::assess`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthTransition {
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
    /// Which signal drove the transition (for the trace log).
    pub reason: String,
}

/// Freshness tracking and the state machine for one UAV.
#[derive(Debug, Clone)]
pub struct UavSupervisor {
    state: HealthState,
    last_telemetry_rx: SimTime,
    last_heartbeat_rx: SimTime,
}

impl Default for UavSupervisor {
    fn default() -> Self {
        Self::new()
    }
}

impl UavSupervisor {
    /// A supervisor considering both signals fresh at time zero.
    pub fn new() -> Self {
        UavSupervisor {
            state: HealthState::Nominal,
            last_telemetry_rx: SimTime::ZERO,
            last_heartbeat_rx: SimTime::ZERO,
        }
    }

    /// Records a telemetry delivery at the GCS.
    pub fn record_telemetry(&mut self, now: SimTime) {
        self.last_telemetry_rx = now;
    }

    /// Records a heartbeat reception at the UAV.
    pub fn record_heartbeat(&mut self, now: SimTime) {
        self.last_heartbeat_rx = now;
    }

    /// Current health state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Staleness of the telemetry signal at `now`.
    pub fn telemetry_staleness(&self, now: SimTime) -> SimDuration {
        now.since(self.last_telemetry_rx)
    }

    /// Staleness of the heartbeat signal at `now`.
    pub fn heartbeat_staleness(&self, now: SimTime) -> SimDuration {
        now.since(self.last_heartbeat_rx)
    }

    /// Runs the watchdog: compares both signals against the windows and
    /// returns the transition if the state changed.
    ///
    /// While the UAV is [`HealthState::Quarantined`] the watchdog is
    /// suspended — only [`UavSupervisor::release`] (the containment
    /// layer's revival probe) leaves that state.
    pub fn assess(&mut self, now: SimTime, cfg: &SupervisionConfig) -> Option<HealthTransition> {
        if self.state == HealthState::Quarantined {
            return None;
        }
        let tel = self.telemetry_staleness(now);
        let hb = self.heartbeat_staleness(now);
        let worst = if tel >= hb { tel } else { hb };
        let target = if worst >= cfg.fallback_after {
            HealthState::SafeFallback
        } else if worst >= cfg.degraded_after {
            HealthState::Degraded
        } else {
            HealthState::Nominal
        };
        if target == self.state {
            return None;
        }
        let reason = if target == HealthState::Nominal {
            "links fresh again".to_string()
        } else if tel >= hb {
            format!("telemetry stale {:.1} s", tel.as_secs_f64())
        } else {
            format!("heartbeat stale {:.1} s", hb.as_secs_f64())
        };
        let from = self.state;
        self.state = target;
        Some(HealthTransition {
            from,
            to: target,
            reason,
        })
    }

    /// Forces the UAV into [`HealthState::Quarantined`] (an isolated
    /// compute fault). Returns the transition, or `None` if already
    /// quarantined.
    pub fn quarantine(&mut self, reason: impl Into<String>) -> Option<HealthTransition> {
        if self.state == HealthState::Quarantined {
            return None;
        }
        let from = self.state;
        self.state = HealthState::Quarantined;
        Some(HealthTransition {
            from,
            to: HealthState::Quarantined,
            reason: reason.into(),
        })
    }

    /// Releases a quarantined UAV back to [`HealthState::Nominal`] after
    /// a successful revival probe, refreshing both link signals so the
    /// staleness watchdog doesn't immediately re-demote it for the ticks
    /// it sat out. Returns `None` if the UAV was not quarantined.
    pub fn release(&mut self, now: SimTime, reason: impl Into<String>) -> Option<HealthTransition> {
        if self.state != HealthState::Quarantined {
            return None;
        }
        self.last_telemetry_rx = now;
        self.last_heartbeat_rx = now;
        self.state = HealthState::Nominal;
        Some(HealthTransition {
            from: HealthState::Quarantined,
            to: HealthState::Nominal,
            reason: reason.into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SupervisionConfig {
        SupervisionConfig::default()
    }

    #[test]
    fn fresh_signals_stay_nominal() {
        let mut s = UavSupervisor::new();
        for sec in 1..20 {
            let now = SimTime::from_secs(sec);
            s.record_telemetry(now);
            s.record_heartbeat(now);
            assert!(s.assess(now, &cfg()).is_none());
        }
        assert_eq!(s.state(), HealthState::Nominal);
    }

    #[test]
    fn staleness_walks_through_degraded_to_fallback() {
        let mut s = UavSupervisor::new();
        let t0 = SimTime::from_secs(10);
        s.record_telemetry(t0);
        s.record_heartbeat(t0);
        // 2 s stale: degraded.
        let tr = s.assess(SimTime::from_secs(12), &cfg()).expect("degrades");
        assert_eq!(tr.from, HealthState::Nominal);
        assert_eq!(tr.to, HealthState::Degraded);
        // Unchanged until the fallback window.
        assert!(s.assess(SimTime::from_secs(14), &cfg()).is_none());
        // 6 s stale: safe fallback.
        let tr = s
            .assess(SimTime::from_secs(16), &cfg())
            .expect("falls back");
        assert_eq!(tr.to, HealthState::SafeFallback);
        assert_eq!(s.state(), HealthState::SafeFallback);
    }

    #[test]
    fn recovery_returns_to_nominal() {
        let mut s = UavSupervisor::new();
        s.assess(SimTime::from_secs(30), &cfg());
        assert_eq!(s.state(), HealthState::SafeFallback);
        let now = SimTime::from_secs(31);
        s.record_telemetry(now);
        s.record_heartbeat(now);
        let tr = s.assess(now, &cfg()).expect("recovers");
        assert_eq!(tr.from, HealthState::SafeFallback);
        assert_eq!(tr.to, HealthState::Nominal);
        assert_eq!(tr.reason, "links fresh again");
    }

    #[test]
    fn one_stale_signal_is_enough() {
        let mut s = UavSupervisor::new();
        // Heartbeats keep arriving (uplink fine), telemetry dies
        // (downlink partition): the supervisor still degrades.
        for sec in 1..=8 {
            s.record_heartbeat(SimTime::from_secs(sec));
        }
        let tr = s.assess(SimTime::from_secs(8), &cfg()).expect("degrades");
        assert_eq!(tr.to, HealthState::SafeFallback);
        assert!(tr.reason.contains("telemetry"), "{}", tr.reason);
    }

    #[test]
    fn labels_and_gauges_are_stable() {
        assert_eq!(HealthState::Nominal.as_str(), "nominal");
        assert_eq!(HealthState::Degraded.as_str(), "degraded");
        assert_eq!(HealthState::SafeFallback.as_str(), "safe_fallback");
        assert_eq!(HealthState::Quarantined.as_str(), "quarantined");
        assert_eq!(HealthState::Nominal.as_gauge(), 0.0);
        assert_eq!(HealthState::SafeFallback.as_gauge(), 2.0);
        assert_eq!(HealthState::Quarantined.as_gauge(), 3.0);
        assert_eq!(format!("{}", HealthState::Degraded), "degraded");
    }

    #[test]
    fn quarantine_suspends_the_staleness_watchdog() {
        let mut s = UavSupervisor::new();
        let tr = s.quarantine("eddi panic isolated").expect("enters");
        assert_eq!(tr.from, HealthState::Nominal);
        assert_eq!(tr.to, HealthState::Quarantined);
        // Re-entry is idempotent.
        assert!(s.quarantine("again").is_none());
        // Arbitrarily stale signals no longer move the machine …
        assert!(s.assess(SimTime::from_secs(120), &cfg()).is_none());
        assert_eq!(s.state(), HealthState::Quarantined);
        // … and fresh ones don't release it either.
        let now = SimTime::from_secs(121);
        s.record_telemetry(now);
        s.record_heartbeat(now);
        assert!(s.assess(now, &cfg()).is_none());
        assert_eq!(s.state(), HealthState::Quarantined);
    }

    #[test]
    fn release_restores_nominal_with_fresh_signals() {
        let mut s = UavSupervisor::new();
        assert!(s
            .release(SimTime::from_secs(1), "not quarantined")
            .is_none());
        s.quarantine("fault");
        let now = SimTime::from_secs(40);
        let tr = s.release(now, "8 clean probe ticks").expect("releases");
        assert_eq!(tr.from, HealthState::Quarantined);
        assert_eq!(tr.to, HealthState::Nominal);
        assert_eq!(s.state(), HealthState::Nominal);
        // The refreshed signals keep the watchdog from re-demoting the
        // UAV for the quarantine it just served.
        assert!(s.assess(now, &cfg()).is_none());
        assert_eq!(s.state(), HealthState::Nominal);
    }
}
