//! The chaos-campaign engine: seeded random fault schedules swept over
//! full scenario runs, with robustness invariants checked on every run.
//!
//! A SAR platform that only survives the faults its authors thought of is
//! not dependable; the campaign generates schedules the authors did *not*
//! write down. For each seed it samples a mix of vehicle faults (battery
//! runaway, motor loss, GPS loss/spoof, vision degradation, flapping
//! links) and communication faults (link blackouts, asymmetric
//! partitions, broker outages, telemetry staleness), runs the scenario to
//! its deadline, and asserts the invariants that define "safe, secure and
//! dependable" under stress:
//!
//! 1. **No panic** — the platform degrades, it never dies.
//! 2. **An outcome is always produced**, with finite, in-range headline
//!    metrics.
//! 3. **Supervision reacts**: a full link blackout longer than the
//!    fallback window leaves a `supervision.to_safe_fallback` count
//!    behind.
//! 4. **Determinism**: replaying a seed reproduces the run bit-for-bit
//!    (optional, because it doubles the cost).
//!
//! ```no_run
//! use sesame_core::chaos::{CampaignConfig, ChaosCampaign};
//!
//! let report = ChaosCampaign::new(CampaignConfig {
//!     runs: 10,
//!     ..CampaignConfig::default()
//! })
//! .run();
//! assert!(report.all_clean(), "{}", report.render());
//! ```

use crate::containment::ComputeFaultKind;
use crate::scenario::{ScenarioBuilder, ScenarioOutcome, ScenarioTemplate};
use crate::supervision::SupervisionConfig;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sesame_middleware::chaos::{CommFaultKind, LinkDirection};
use sesame_obs::MetricsSnapshot;
use sesame_types::geo::Vec3;
use sesame_types::ids::UavId;
use sesame_types::time::{SimDuration, SimTime};
use sesame_uav_sim::faults::FaultKind;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// How many seeded runs to execute.
    pub runs: u64,
    /// Base seed; run `k` uses `base_seed + k`.
    pub base_seed: u64,
    /// Per-run simulated deadline.
    pub deadline: SimTime,
    /// Faults sampled per schedule.
    pub faults_per_run: usize,
    /// Compute-plane faults (scheduled EDDI panics, NaN/Inf telemetry,
    /// solver stalls) sampled per schedule, on top of `faults_per_run`.
    /// Defaults to zero so vehicle/comm-only campaigns reproduce their
    /// historical schedules bit-for-bit.
    pub compute_faults_per_run: usize,
    /// SESAME stack on (`true`) or the paper's baseline (`false`).
    pub sesame: bool,
    /// Re-run every seed and require identical outcomes.
    pub replay_check: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            runs: 10,
            base_seed: 1,
            deadline: SimTime::from_secs(180),
            faults_per_run: 4,
            compute_faults_per_run: 0,
            sesame: true,
            replay_check: false,
        }
    }
}

/// What one seeded run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The seed of this run.
    pub seed: u64,
    /// Human-readable labels of the sampled faults, in schedule order.
    pub fault_labels: Vec<String>,
    /// Coverage completion fraction at the end of the run.
    pub completed_fraction: f64,
    /// `supervision.transitions` counter at the end of the run.
    pub health_transitions: u64,
    /// `supervision.to_safe_fallback` counter at the end of the run.
    pub safe_fallbacks: u64,
    /// `commands.retried` counter at the end of the run.
    pub command_retries: u64,
    /// Invariant violations (empty = clean run).
    pub violations: Vec<String>,
    /// The run's deterministic observability projection (wall-clock
    /// phase timings stripped), kept so campaign aggregates can be
    /// reduced bit-identically at any worker count. Empty when the run
    /// panicked.
    pub obs: MetricsSnapshot,
}

impl RunReport {
    /// Whether every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The campaign's aggregate result.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// One entry per seed, in execution order.
    pub runs: Vec<RunReport>,
}

impl CampaignReport {
    /// Assembles a report from per-seed runs produced in *any* order
    /// (e.g. by a parallel executor's workers racing to completion).
    /// Runs are keyed by seed into a [`BTreeMap`] and emitted in
    /// ascending seed order, so the assembled report — and everything
    /// derived from it, including [`CampaignReport::merged_obs`] — is
    /// byte-identical to the serial path regardless of completion order.
    pub fn from_runs(runs: impl IntoIterator<Item = RunReport>) -> Self {
        let by_seed: BTreeMap<u64, RunReport> = runs.into_iter().map(|r| (r.seed, r)).collect();
        CampaignReport {
            runs: by_seed.into_values().collect(),
        }
    }

    /// The campaign-wide observability aggregate: every run's
    /// deterministic snapshot folded in seed order (saturating counters,
    /// exact histogram-summary merge, last-write-by-seed gauges — see
    /// `sesame-obs`). Because the fold order is the seed order, not the
    /// completion order, the aggregate is identical at any `--jobs`.
    pub fn merged_obs(&self) -> MetricsSnapshot {
        let mut merged = MetricsSnapshot::default();
        for run in &self.runs {
            merged.merge(&run.obs);
        }
        merged
    }

    /// Whether every run of the campaign was violation-free.
    pub fn all_clean(&self) -> bool {
        self.runs.iter().all(RunReport::is_clean)
    }

    /// Total invariant violations across the campaign.
    pub fn total_violations(&self) -> usize {
        self.runs.iter().map(|r| r.violations.len()).sum()
    }

    /// Plain-text table for logs and the bench binary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("seed  completion  transitions  fallbacks  retries  status\n");
        for r in &self.runs {
            out.push_str(&format!(
                "{:<5} {:>9.2}  {:>11} {:>10} {:>8}  {}\n",
                r.seed,
                r.completed_fraction,
                r.health_transitions,
                r.safe_fallbacks,
                r.command_retries,
                if r.is_clean() {
                    "ok".to_string()
                } else {
                    r.violations.join("; ")
                }
            ));
        }
        out.push_str(&format!(
            "{} runs, {} violations\n",
            self.runs.len(),
            self.total_violations()
        ));
        out
    }

    /// [`CampaignReport::render`] plus the merged deterministic metrics
    /// table. Everything in this string is derived from simulation
    /// state, so two campaigns over the same seeds must produce the
    /// same bytes — the serial-vs-parallel gate diffs exactly this.
    pub fn render_full(&self) -> String {
        let mut out = self.render();
        let merged = self.merged_obs();
        if !merged.is_empty() {
            out.push_str("merged deterministic metrics (seed-order reduction):\n");
            out.push_str(&merged.render_table());
        }
        out
    }
}

/// One sampled entry of a schedule, kept so the invariant checks know
/// what was injected.
#[derive(Debug, Clone)]
enum Injected {
    Vehicle {
        at: SimTime,
        uav_index: usize,
        kind: FaultKind,
    },
    Comm {
        at: SimTime,
        duration: SimDuration,
        kind: CommFaultKind,
    },
    Compute {
        at: SimTime,
        duration: SimDuration,
        kind: ComputeFaultKind,
    },
}

impl Injected {
    fn label(&self) -> String {
        match self {
            Injected::Vehicle {
                at,
                uav_index,
                kind,
            } => {
                format!(
                    "t{}s uav{} {:?}",
                    at.as_millis() / 1000,
                    uav_index + 1,
                    kind
                )
            }
            Injected::Comm { at, duration, kind } => format!(
                "t{}s {}s {}",
                at.as_millis() / 1000,
                duration.as_millis() / 1000,
                kind.label()
            ),
            Injected::Compute { at, duration, kind } => format!(
                "t{}s {}s {}",
                at.as_millis() / 1000,
                duration.as_millis() / 1000,
                kind.label()
            ),
        }
    }
}

/// The campaign runner. See the module docs for the invariants.
///
/// The campaign is `Send + Sync`: its configuration and prebuilt
/// scenario template are immutable, and [`ChaosCampaign::run_seed`]
/// takes `&self`, so a parallel executor can share one campaign across
/// workers and sweep disjoint seeds concurrently.
#[derive(Debug, Clone)]
pub struct ChaosCampaign {
    config: CampaignConfig,
    /// Prebuilt scenario prototype shared by every seed: cloning it is
    /// much cheaper than re-deriving the builder per run, and the
    /// shared state is immutable so workers need no coordination.
    template: ScenarioTemplate,
    /// Fleet size of the template, cached so schedule sampling targets
    /// UAVs the scenario actually flies.
    fleet: usize,
}

impl ChaosCampaign {
    /// A campaign over the paper's three-UAV SAR scenario with the given
    /// parameters.
    pub fn new(config: CampaignConfig) -> Self {
        let template = ScenarioTemplate::new(
            ScenarioBuilder::new(0)
                .sesame(config.sesame)
                .deadline(config.deadline),
        );
        Self::with_template(config, template)
    }

    /// A campaign sweeping random fault schedules over an arbitrary base
    /// scenario — e.g. one compiled from a `.sesame` DSL file. The
    /// template is used as-is: its fleet sizes the per-fault UAV draw,
    /// and its own deadline governs each run, so pass a config whose
    /// `deadline` matches the template's (the `chaos` binary does
    /// exactly that) to keep the sampling horizon honest. With the
    /// default three-UAV template this is [`ChaosCampaign::new`]:
    /// schedules are bit-identical per seed.
    pub fn with_template(config: CampaignConfig, template: ScenarioTemplate) -> Self {
        let fleet = template.config().fleet.total().max(1);
        ChaosCampaign {
            config,
            template,
            fleet,
        }
    }

    /// The campaign parameters.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Every seed of the sweep, in ascending order — the work list a
    /// parallel executor distributes.
    pub fn seeds(&self) -> Vec<u64> {
        (0..self.config.runs)
            .map(|k| self.config.base_seed + k)
            .collect()
    }

    /// Runs every seed serially and collects the report.
    pub fn run(&self) -> CampaignReport {
        CampaignReport::from_runs(self.seeds().into_iter().map(|s| self.run_seed(s)))
    }

    /// Samples a schedule from `seed`, runs it, and checks the
    /// invariants. A panic inside the run is caught and reported as a
    /// violation instead of aborting the campaign.
    pub fn run_seed(&self, seed: u64) -> RunReport {
        let schedule = self.sample_schedule(seed);
        let fault_labels: Vec<String> = schedule.iter().map(Injected::label).collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.build_scenario(seed, &schedule).build().run()
        }));
        let mut violations = Vec::new();
        let Ok(outcome) = outcome else {
            return RunReport {
                seed,
                fault_labels,
                completed_fraction: 0.0,
                health_transitions: 0,
                safe_fallbacks: 0,
                command_retries: 0,
                violations: vec!["panicked during run".into()],
                obs: MetricsSnapshot::default(),
            };
        };
        self.check_invariants(seed, &schedule, &outcome, &mut violations);
        RunReport {
            seed,
            fault_labels,
            completed_fraction: outcome.metrics.mission_completed_fraction,
            health_transitions: outcome.obs_metrics.counter("supervision.transitions"),
            safe_fallbacks: outcome.obs_metrics.counter("supervision.to_safe_fallback"),
            command_retries: outcome.obs_metrics.counter("commands.retried"),
            violations,
            obs: outcome.obs_metrics.without_wall_clock(),
        }
    }

    fn build_scenario(&self, seed: u64, schedule: &[Injected]) -> ScenarioBuilder {
        let mut builder = self.template.instantiate(seed);
        for inj in schedule {
            builder = match inj.clone() {
                Injected::Vehicle {
                    at,
                    uav_index,
                    kind,
                } => builder.fault(at, uav_index, kind),
                Injected::Comm { at, duration, kind } => builder.comm_fault(at, duration, kind),
                Injected::Compute { at, duration, kind } => {
                    builder.compute_fault(at, duration, kind)
                }
            };
        }
        builder
    }

    /// Deterministically samples a mixed fault schedule from the seed.
    fn sample_schedule(&self, seed: u64) -> Vec<Injected> {
        // Independent stream: must not correlate with the scenario's own
        // world/bus/detector RNGs, which also derive from `seed`.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC1A0_5CAB_005E_ED42);
        let mut schedule = Vec::with_capacity(self.config.faults_per_run);
        let horizon_s = (self.config.deadline.as_millis() / 1000)
            .saturating_sub(40)
            .max(30);
        for _ in 0..self.config.faults_per_run {
            // Start somewhere the fleet is already flying, early enough
            // that the fault's consequences play out before the deadline.
            let at = SimTime::from_secs(15 + rng.random::<u64>() % horizon_s.min(120));
            let uav_index = (rng.random::<u64>() % self.fleet as u64) as usize;
            let uav = UavId::new(uav_index as u32 + 1);
            schedule.push(match rng.random::<u64>() % 9 {
                0 => Injected::Vehicle {
                    at,
                    uav_index,
                    kind: FaultKind::BatteryOverTemp {
                        soc_drop: 0.2 + 0.3 * rng.random::<f64>(),
                    },
                },
                1 => Injected::Vehicle {
                    at,
                    uav_index,
                    kind: FaultKind::MotorFailure {
                        motor: (rng.random::<u64>() % 4) as usize,
                    },
                },
                2 => Injected::Vehicle {
                    at,
                    uav_index,
                    kind: FaultKind::GpsLoss,
                },
                3 => Injected::Vehicle {
                    at,
                    uav_index,
                    kind: FaultKind::GpsSpoof {
                        drift: Vec3::new(
                            2.0 * rng.random::<f64>() - 1.0,
                            2.0 * rng.random::<f64>() - 1.0,
                            0.0,
                        ),
                    },
                },
                4 => Injected::Vehicle {
                    at,
                    uav_index,
                    kind: FaultKind::VisionDegraded {
                        health: 0.2 + 0.5 * rng.random::<f64>(),
                    },
                },
                5 => Injected::Comm {
                    at,
                    duration: SimDuration::from_secs(8 + rng.random::<u64>() % 8),
                    kind: CommFaultKind::LinkBlackout { uav },
                },
                6 => Injected::Comm {
                    at,
                    duration: SimDuration::from_secs(4 + rng.random::<u64>() % 8),
                    kind: CommFaultKind::AsymmetricPartition {
                        uav,
                        direction: if rng.random::<u64>() % 2 == 0 {
                            LinkDirection::Uplink
                        } else {
                            LinkDirection::Downlink
                        },
                    },
                },
                7 => Injected::Comm {
                    at,
                    duration: SimDuration::from_secs(5 + rng.random::<u64>() % 10),
                    kind: CommFaultKind::BrokerOutage,
                },
                _ => Injected::Comm {
                    at,
                    duration: SimDuration::from_secs(4 + rng.random::<u64>() % 6),
                    kind: CommFaultKind::TelemetryStaleness {
                        uav,
                        delay: SimDuration::from_millis(500 + rng.random::<u64>() % 2000),
                    },
                },
            });
        }
        // Compute faults draw from their own stream so enabling them
        // never perturbs the vehicle/comm schedule a seed has always
        // produced.
        let mut crng = StdRng::seed_from_u64(seed ^ 0x5E5A_3E0F_A017_C0DE);
        for _ in 0..self.config.compute_faults_per_run {
            let at = SimTime::from_secs(15 + crng.random::<u64>() % horizon_s.min(120));
            let duration = SimDuration::from_secs(3 + crng.random::<u64>() % 6);
            let uav = (crng.random::<u64>() % self.fleet as u64) as usize;
            let kind = match crng.random::<u64>() % 4 {
                0 => ComputeFaultKind::EddiPanic { uav },
                1 => ComputeFaultKind::TelemetryNan { uav },
                2 => ComputeFaultKind::TelemetryInf { uav },
                _ => ComputeFaultKind::SolverStall { uav },
            };
            schedule.push(Injected::Compute { at, duration, kind });
        }
        schedule
    }

    fn check_invariants(
        &self,
        seed: u64,
        schedule: &[Injected],
        outcome: &ScenarioOutcome,
        violations: &mut Vec<String>,
    ) {
        let m = &outcome.metrics;
        if !(0.0..=1.0 + 1e-9).contains(&m.mission_completed_fraction)
            || !m.mission_completed_fraction.is_finite()
        {
            violations.push(format!(
                "completion fraction out of range: {}",
                m.mission_completed_fraction
            ));
        }
        for (i, a) in m.availability.iter().enumerate() {
            if !(0.0..=1.0 + 1e-9).contains(a) || !a.is_finite() {
                violations.push(format!("availability[{i}] out of range: {a}"));
            }
        }
        if outcome.obs_metrics.counter("platform.ticks") == 0 {
            violations.push("no platform ticks recorded".into());
        }

        // Supervision must notice a full blackout longer than the
        // fallback window (plus margin for heartbeat cadence) — provided
        // the window actually elapsed before the run ended (a mission
        // that completes early never experiences a late-scheduled fault).
        if self.config.sesame {
            let sup = SupervisionConfig::default();
            let margin = SimDuration::from_secs(2);
            let run_end = SimTime::ZERO
                + SimDuration::from_millis(outcome.obs_metrics.counter("platform.ticks") * 100);
            // A UAV a compute fault can quarantine is exempt from the
            // fallback expectation: while Quarantined its supervisor
            // deliberately stops assessing (the containment layer owns
            // it), so a blackout on that UAV may never surface as a
            // SafeFallback transition.
            let quarantine_prone: Vec<usize> = schedule
                .iter()
                .filter_map(|inj| match inj {
                    Injected::Compute { kind, .. }
                        if !matches!(kind, ComputeFaultKind::SolverStall { .. }) =>
                    {
                        Some(kind.uav())
                    }
                    _ => None,
                })
                .collect();
            let must_fall_back = schedule.iter().any(|inj| {
                matches!(
                    inj,
                    Injected::Comm {
                        at,
                        duration,
                        kind: CommFaultKind::LinkBlackout { uav },
                    } if *duration >= sup.fallback_after + margin
                        && *at + sup.fallback_after + margin <= run_end
                        && !quarantine_prone.contains(&(uav.index() as usize - 1))
                )
            });
            if must_fall_back && outcome.obs_metrics.counter("supervision.to_safe_fallback") == 0 {
                violations.push(
                    "link blackout exceeded the fallback window but no \
                     SafeFallback transition was recorded"
                        .into(),
                );
            }

            // Containment must isolate a scheduled EDDI panic: the eval
            // guard trips on the first tick of the window, so any panic
            // window that opened before the run ended must have left a
            // quarantine entry behind (zero-aborts is enforced separately
            // by the campaign-level catch_unwind).
            let must_quarantine = schedule.iter().any(|inj| {
                matches!(
                    inj,
                    Injected::Compute {
                        at,
                        kind: ComputeFaultKind::EddiPanic { .. },
                        ..
                    } if *at + margin <= run_end
                )
            });
            if must_quarantine && outcome.obs_metrics.counter("uav.quarantine.entered") == 0 {
                violations.push(
                    "an EDDI panic window opened but no quarantine entry was recorded".into(),
                );
            }
        }

        if self.config.replay_check {
            let replay = catch_unwind(AssertUnwindSafe(|| {
                self.build_scenario(seed, schedule).build().run()
            }));
            match replay {
                Err(_) => violations.push("replay panicked".into()),
                Ok(replay) => {
                    if replay.metrics.mission_completed_fraction != m.mission_completed_fraction
                        || replay.metrics.mission_complete_secs != m.mission_complete_secs
                        || replay.trajectories != outcome.trajectories
                        || replay.obs_metrics.counter("platform.ticks")
                            != outcome.obs_metrics.counter("platform.ticks")
                    {
                        violations.push("replay diverged from the original run".into());
                    }
                }
            }
        }
    }
}

// Campaigns are shared immutably across the parallel executor's
// workers; run reports travel back across the same threads.
sesame_types::assert_send_sync!(CampaignConfig, ChaosCampaign, RunReport, CampaignReport);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sampling_is_deterministic_per_seed() {
        let campaign = ChaosCampaign::new(CampaignConfig::default());
        let a = campaign.sample_schedule(17);
        let b = campaign.sample_schedule(17);
        let c = campaign.sample_schedule(18);
        let label = |s: &[Injected]| s.iter().map(Injected::label).collect::<Vec<_>>();
        assert_eq!(label(&a), label(&b));
        assert_ne!(label(&a), label(&c));
        assert_eq!(a.len(), campaign.config.faults_per_run);
    }

    #[test]
    fn compute_faults_extend_without_perturbing_the_base_schedule() {
        let base = ChaosCampaign::new(CampaignConfig::default());
        let extended = ChaosCampaign::new(CampaignConfig {
            compute_faults_per_run: 3,
            ..CampaignConfig::default()
        });
        let label = |s: &[Injected]| s.iter().map(Injected::label).collect::<Vec<_>>();
        let a = label(&base.sample_schedule(17));
        let b = label(&extended.sample_schedule(17));
        // Independent stream: the vehicle/comm prefix is untouched.
        assert_eq!(a[..], b[..a.len()]);
        assert_eq!(b.len(), a.len() + 3);
        assert!(b[a.len()..].iter().all(|l| {
            l.contains("eddi_panic")
                || l.contains("telemetry_nan")
                || l.contains("telemetry_inf")
                || l.contains("solver_stall")
        }));
    }

    fn stub_run(seed: u64, violations: Vec<String>) -> RunReport {
        RunReport {
            seed,
            fault_labels: Vec::new(),
            completed_fraction: 1.0,
            health_transitions: 0,
            safe_fallbacks: 0,
            command_retries: 0,
            violations,
            obs: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn report_renders_and_aggregates() {
        let report = CampaignReport {
            runs: vec![
                RunReport {
                    seed: 1,
                    fault_labels: vec!["t20s broker_outage".into()],
                    completed_fraction: 0.5,
                    health_transitions: 2,
                    safe_fallbacks: 1,
                    command_retries: 0,
                    violations: Vec::new(),
                    obs: MetricsSnapshot::default(),
                },
                RunReport {
                    seed: 2,
                    fault_labels: Vec::new(),
                    completed_fraction: 1.0,
                    health_transitions: 0,
                    safe_fallbacks: 0,
                    command_retries: 3,
                    violations: vec!["panicked during run".into()],
                    obs: MetricsSnapshot::default(),
                },
            ],
        };
        assert!(!report.all_clean());
        assert_eq!(report.total_violations(), 1);
        let text = report.render();
        assert!(text.contains("2 runs, 1 violations"));
        assert!(text.contains("panicked"));
    }

    #[test]
    fn from_runs_orders_by_seed_regardless_of_arrival() {
        let shuffled = vec![
            stub_run(9, Vec::new()),
            stub_run(3, Vec::new()),
            stub_run(7, Vec::new()),
        ];
        let report = CampaignReport::from_runs(shuffled);
        let seeds: Vec<u64> = report.runs.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![3, 7, 9]);
        let reversed = CampaignReport::from_runs(vec![
            stub_run(7, Vec::new()),
            stub_run(9, Vec::new()),
            stub_run(3, Vec::new()),
        ]);
        assert_eq!(report.render_full(), reversed.render_full());
    }

    #[test]
    fn merged_obs_folds_in_seed_order() {
        let mut early = stub_run(1, Vec::new());
        early.obs.counters.insert("x".into(), 2);
        early.obs.gauges.insert("g".into(), 1.0);
        let mut late = stub_run(2, Vec::new());
        late.obs.counters.insert("x".into(), 3);
        late.obs.gauges.insert("g".into(), 9.0);
        // Arrival order must not matter: the fold is by seed.
        let report = CampaignReport::from_runs(vec![late, early]);
        let merged = report.merged_obs();
        assert_eq!(merged.counter("x"), 5);
        assert_eq!(merged.gauge("g"), Some(9.0), "last write by seed order");
    }
}
