//! The naive reference EDDI runtime — the unaccelerated twin of
//! [`UavEddiRuntime`](crate::eddi::UavEddiRuntime).
//!
//! [`ReferenceEddiRuntime`] keeps the pre-fast-path per-tick computation
//! alive verbatim (the `ReferenceBus` pattern): every monitor is
//! re-evaluated from scratch each tick — the SafeDrones solver rebuilds
//! its rate profile, SafeML re-sorts both samples per column and computes
//! dissimilarity and verdict separately, and SINADRA re-reduces and
//! re-eliminates the full factor set. The constructor consumes the seeded
//! RNGs in exactly the same order as the fast runtime, so a fast and a
//! reference runtime built from the same seed hold bit-identical models,
//! and the conformance suite can lockstep their tick outputs.

use sesame_conserts::catalog::UavEvidence;
use sesame_deepknowledge::nn::{Activation, Mlp};
use sesame_deepknowledge::transfer::TransferAnalyzer;
use sesame_deepknowledge::uncertainty::UncertaintyMonitor;
use sesame_safedrones::monitor::{SafeDronesConfig, SafeDronesMonitor};
use sesame_safedrones::ReliabilityLevel;
use sesame_safeml::monitor::{SafeMlConfig, SafeMlMonitor, SafeMlVerdict};
use sesame_security::spoof::SpoofDetector;
use sesame_sinadra::risk::{SarRiskModel, SituationInputs};
use sesame_types::geo::GeoPoint;
use sesame_types::telemetry::UavTelemetry;
use sesame_types::time::{SimDuration, SimTime};
use sesame_vision::features::{FeatureExtractor, SceneCondition};

use crate::eddi::EddiOutputs;

/// The naive per-UAV runtime: identical models, no caches.
#[derive(Debug)]
pub struct ReferenceEddiRuntime {
    safedrones: SafeDronesMonitor,
    safeml: SafeMlMonitor,
    dk_model: Mlp,
    dk: UncertaintyMonitor,
    sinadra: SarRiskModel,
    spoof: SpoofDetector,
    features: FeatureExtractor,
    last_time: Option<SimTime>,
    last_outputs: Option<EddiOutputs>,
}

impl ReferenceEddiRuntime {
    /// Builds the runtime exactly as the fast path does — same reference
    /// set, same detector-head training, same probe shift — minus the
    /// cache enablement.
    pub fn new(seed: u64, safedrones: SafeDronesConfig, home: GeoPoint) -> Self {
        let mut features = FeatureExtractor::new(8, seed);
        let reference = features.reference_set(200);

        // Train a small detector head on the in-domain features so the
        // DeepKnowledge analysis runs on a genuinely trained model.
        let mut dk_model = Mlp::new(&[8, 12, 1], Activation::Tanh, seed ^ 0xD);
        for epoch in 0..3 {
            for (i, row) in reference.iter().enumerate() {
                if (i + epoch) % 2 == 0 {
                    let label = f64::from(row.iter().sum::<f64>() > 0.0);
                    dk_model.train_step(row, &[label], 0.05);
                }
            }
        }
        // Probe shift for TK selection: the high-altitude condition.
        let mut probe_fx = FeatureExtractor::new(8, seed ^ 0x5117);
        let shifted: Vec<Vec<f64>> = (0..200)
            .map(|_| {
                probe_fx.extract(&SceneCondition {
                    altitude_m: 60.0,
                    visibility: 1.0,
                })
            })
            .collect();
        let analyzer = TransferAnalyzer::analyze(&dk_model, &reference, &shifted, 0.5);
        let dk = UncertaintyMonitor::new(analyzer, 40);

        let safeml = SafeMlMonitor::new(reference, SafeMlConfig::default())
            .expect("generated reference set is well-formed");

        ReferenceEddiRuntime {
            safedrones: SafeDronesMonitor::new(safedrones),
            safeml,
            dk_model,
            dk,
            sinadra: SarRiskModel::new(),
            spoof: SpoofDetector::new(home, 20.0),
            features,
            last_time: None,
            last_outputs: None,
        }
    }

    /// Sets the remaining-mission horizon for the energy-risk term.
    pub fn set_remaining_mission(&mut self, remaining: SimDuration) {
        self.safedrones.set_remaining_mission(remaining);
    }

    /// One runtime tick, fully recomputed: ingest telemetry, sample one
    /// camera frame under `scene`, run every monitor from scratch.
    pub fn tick(&mut self, telemetry: &UavTelemetry, scene: &SceneCondition) -> EddiOutputs {
        let dt = match self.last_time {
            Some(prev) => telemetry.time.since(prev),
            None => SimDuration::ZERO,
        };
        self.last_time = Some(telemetry.time);

        // Safety EDDI (SafeDrones).
        self.safedrones.ingest(telemetry);
        if dt > SimDuration::ZERO {
            self.safedrones.advance(dt);
        }
        let reliability = self.safedrones.estimate();

        // Perception monitors share one frame.
        let frame = self.features.extract(scene);
        // Invariant: widths agree by construction (see the fast path);
        // a violation is isolated by the orchestrator's per-UAV catch.
        self.safeml
            .push_sample(&frame)
            .expect("extractor and monitor share the feature width");
        let safeml_uncertainty = self.safeml.dissimilarity();
        let safeml_verdict = self.safeml.verdict();
        let dk_uncertainty = self.dk.assess(&self.dk_model, &frame);
        let combined_uncertainty = safeml_uncertainty.max(dk_uncertainty);

        // SINADRA folds the uncertainties into risk.
        let risk = self.sinadra.assess(&SituationInputs {
            detection_uncertainty: combined_uncertainty,
            altitude_high: telemetry.true_position.alt_m > 40.0,
            visibility_poor: scene.visibility < 0.7,
            person_likely: true,
            time_pressure_high: true,
        });

        // Security: innovation check on the reported fix.
        let spoof = self
            .spoof
            .check(&telemetry.gps.position, telemetry.velocity, telemetry.time);

        let outputs = EddiOutputs {
            reliability,
            safeml_verdict,
            safeml_uncertainty,
            dk_uncertainty,
            combined_uncertainty,
            risk,
            spoof,
        };
        self.last_outputs = Some(outputs.clone());
        outputs
    }

    /// The last tick's outputs.
    pub fn last_outputs(&self) -> Option<&EddiOutputs> {
        self.last_outputs.as_ref()
    }

    /// Builds the ConSert evidence snapshot from the latest outputs plus
    /// fleet-level facts the runtime cannot see itself.
    pub fn evidence(
        &self,
        telemetry: &UavTelemetry,
        attack_detected: bool,
        neighbors_available: bool,
    ) -> UavEvidence {
        let out = self.last_outputs.as_ref();
        let level = out.map(|o| o.reliability.level);
        let safeml_ok = out
            .map(|o| o.safeml_verdict != SafeMlVerdict::Reject)
            .unwrap_or(true);
        let spoofed = out.map(|o| o.spoof.spoofed).unwrap_or(false);
        UavEvidence {
            gps_usable: telemetry.gps.is_usable() && !spoofed,
            no_attack: !attack_detected && !spoofed,
            vision_healthy: telemetry.vision_health > 0.5,
            safeml_ok,
            comm_ok: telemetry.link_quality > 0.4,
            neighbors_available,
            assistant_available: false,
            rel_high: level == Some(ReliabilityLevel::High),
            rel_med: level == Some(ReliabilityLevel::Medium),
            rel_low: level == Some(ReliabilityLevel::Low),
        }
    }

    /// The SafeDrones monitor (for experiment inspection).
    pub fn safedrones(&self) -> &SafeDronesMonitor {
        &self.safedrones
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eddi::UavEddiRuntime;
    use sesame_types::ids::UavId;

    fn home() -> GeoPoint {
        GeoPoint::new(35.0, 33.0, 0.0)
    }

    fn telemetry(t: u64, alt: f64) -> UavTelemetry {
        let mut tel =
            UavTelemetry::nominal(UavId::new(1), SimTime::from_secs(t), home().with_alt(alt));
        tel.gps.position = tel.true_position;
        tel
    }

    /// The fast runtime and the reference runtime, built from the same
    /// seed, produce bit-identical outputs and evidence across a varied
    /// schedule (climb, steady scan, descent, degraded link).
    #[test]
    fn fast_runtime_locksteps_with_reference() {
        let mut fast = UavEddiRuntime::new(11, SafeDronesConfig::default(), home());
        let mut reference = ReferenceEddiRuntime::new(11, SafeDronesConfig::default(), home());
        fast.set_remaining_mission(SimDuration::from_secs(600));
        reference.set_remaining_mission(SimDuration::from_secs(600));
        for t in 0u32..120 {
            let alt = match t {
                0..=30 => f64::from(t),
                31..=80 => 30.0,
                _ => 60.0,
            };
            let mut tel = telemetry(u64::from(t), alt);
            if t > 90 {
                tel.link_quality = 0.2;
            }
            let scene = SceneCondition {
                altitude_m: alt,
                visibility: if t % 7 == 0 { 0.6 } else { 1.0 },
            };
            let f = fast.tick(&tel, &scene);
            let r = reference.tick(&tel, &scene);
            assert_eq!(
                f.reliability.pof.to_bits(),
                r.reliability.pof.to_bits(),
                "pof diverged at t={t}"
            );
            assert_eq!(f.reliability.level, r.reliability.level, "t={t}");
            assert_eq!(
                f.safeml_uncertainty.to_bits(),
                r.safeml_uncertainty.to_bits(),
                "safeml diverged at t={t}"
            );
            assert_eq!(f.safeml_verdict, r.safeml_verdict, "t={t}");
            assert_eq!(
                f.dk_uncertainty.to_bits(),
                r.dk_uncertainty.to_bits(),
                "dk diverged at t={t}"
            );
            assert_eq!(
                f.combined_uncertainty.to_bits(),
                r.combined_uncertainty.to_bits(),
                "combined diverged at t={t}"
            );
            assert_eq!(
                f.risk.missed_person_prob.to_bits(),
                r.risk.missed_person_prob.to_bits(),
                "risk diverged at t={t}"
            );
            assert_eq!(
                f.risk.criticality_high_prob.to_bits(),
                r.risk.criticality_high_prob.to_bits(),
                "criticality diverged at t={t}"
            );
            assert_eq!(f.risk.rescan_advised, r.risk.rescan_advised, "t={t}");
            assert_eq!(f.spoof.spoofed, r.spoof.spoofed, "t={t}");
            assert_eq!(
                f.spoof.innovation_m.to_bits(),
                r.spoof.innovation_m.to_bits(),
                "innovation diverged at t={t}"
            );
            assert_eq!(
                fast.evidence(&tel, false, true),
                reference.evidence(&tel, false, true),
                "evidence diverged at t={t}"
            );
        }
        let stats = fast.cache_stats();
        assert!(stats.hits > 0, "a 120-tick run must hit the caches");
    }
}
