//! The intrusion detection system.
//!
//! A rule engine over bus traffic, standing in for the network IDS of the
//! paper's Security EDDI architecture. The platform taps the whole bus
//! (`"#"` subscription), feeds every delivered message through
//! [`Ids::inspect`], and publishes the resulting alerts on the broker
//! topic `ids/alerts/<uav>` where the per-tree EDDI scripts listen.
//!
//! Rules (leaf ids of [`crate::catalog`]):
//!
//! * `unsigned_publisher` — a message on a protected topic without a valid
//!   signature;
//! * `bad_signature` — a signed message whose tag fails verification
//!   (tampering);
//! * `replay` — a per-sender sequence number that does not advance;
//! * `rate_flood` — a sender exceeding the configured message rate;
//! * `waypoint_deviation` — a waypoint command farther from the registered
//!   mission plan than the allowed corridor.

use crate::attack_tree::AttackLeaf;
use sesame_middleware::auth::MessageAuth;
use sesame_middleware::broker::topic_matches;
use sesame_middleware::message::{Message, Payload};
use sesame_types::events::Severity;
use sesame_types::geo::GeoPoint;
use sesame_types::ids::UavId;
use sesame_types::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Identifier of an IDS rule — equals the attack-tree leaf id it triggers.
pub type IdsRule = &'static str;

/// One alert produced by the IDS.
#[derive(Debug, Clone, PartialEq)]
pub struct IdsAlert {
    /// Rule / attack-tree leaf id.
    pub rule: String,
    /// The UAV the suspicious traffic concerns.
    pub subject: UavId,
    /// Human-readable detail.
    pub detail: String,
    /// Severity (taken from the attack-tree leaf where known).
    pub severity: Severity,
    /// When the alert was raised.
    pub time: SimTime,
}

/// IDS configuration.
#[derive(Debug, Clone)]
pub struct IdsConfig {
    /// Topic patterns whose messages must carry a valid signature.
    pub protected_topics: Vec<String>,
    /// Maximum messages per sender within the rate window.
    pub max_rate_per_window: usize,
    /// Rate window length.
    pub rate_window: SimDuration,
    /// Allowed distance between a commanded waypoint and the mission plan.
    pub plan_corridor_m: f64,
}

impl Default for IdsConfig {
    fn default() -> Self {
        IdsConfig {
            protected_topics: vec!["/+/cmd/#".into()],
            max_rate_per_window: 50,
            rate_window: SimDuration::from_secs(1),
            plan_corridor_m: 60.0,
        }
    }
}

/// The rule engine. Feed it every bus delivery via [`Ids::inspect`].
#[derive(Debug)]
pub struct Ids {
    config: IdsConfig,
    auth: Option<MessageAuth>,
    last_seq: HashMap<String, u64>,
    recent: HashMap<String, VecDeque<SimTime>>,
    plans: HashMap<UavId, Vec<GeoPoint>>,
    alerts_raised: u64,
}

impl Ids {
    /// Creates an IDS. Pass the platform's [`MessageAuth`] so signature
    /// checks can run; `None` disables signature rules (a stock ROS
    /// deployment).
    pub fn new(config: IdsConfig, auth: Option<MessageAuth>) -> Self {
        Ids {
            config,
            auth,
            last_seq: HashMap::new(),
            recent: HashMap::new(),
            plans: HashMap::new(),
            alerts_raised: 0,
        }
    }

    /// Registers the mission plan for `uav` so waypoint commands can be
    /// cross-checked against it.
    pub fn register_plan(&mut self, uav: UavId, waypoints: Vec<GeoPoint>) {
        self.plans.insert(uav, waypoints);
    }

    /// Total alerts raised so far.
    pub fn alerts_raised(&self) -> u64 {
        self.alerts_raised
    }

    /// Inspects one delivered message, returning any alerts.
    pub fn inspect(&mut self, msg: &Message, now: SimTime) -> Vec<IdsAlert> {
        let mut alerts = Vec::new();
        let subject = subject_of(msg);

        // Rate tracking.
        let window = self.config.rate_window;
        let in_window = {
            let q = self.recent.entry(msg.sender.clone()).or_default();
            q.push_back(now);
            while let Some(front) = q.front() {
                if now.since(*front) > window {
                    q.pop_front();
                } else {
                    break;
                }
            }
            q.len()
        };
        if in_window > self.config.max_rate_per_window {
            alerts.push(self.alert(
                "rate_flood",
                subject,
                format!("sender `{}` sent {in_window} msgs in window", msg.sender),
                Severity::Warning,
                now,
            ));
        }

        // Sequence freshness per sender.
        match self.last_seq.get(&msg.sender) {
            Some(&last) if msg.seq <= last => {
                alerts.push(self.alert(
                    "replay",
                    subject,
                    format!("sender `{}` seq {} after {}", msg.sender, msg.seq, last),
                    Severity::Critical,
                    now,
                ));
            }
            _ => {
                self.last_seq.insert(msg.sender.clone(), msg.seq);
            }
        }

        // Signature rules on protected topics.
        let protected = self
            .config
            .protected_topics
            .iter()
            .any(|p| topic_matches(p, &msg.topic));
        if protected {
            match (&self.auth, msg.auth_tag) {
                (Some(auth), Some(_)) => {
                    if !auth.verify(msg) {
                        alerts.push(self.alert(
                            "bad_signature",
                            subject,
                            format!("tag verification failed on `{}`", msg.topic),
                            Severity::Critical,
                            now,
                        ));
                    }
                }
                (Some(_), None) => {
                    alerts.push(self.alert(
                        "unsigned_publisher",
                        subject,
                        format!("unsigned message on protected `{}`", msg.topic),
                        Severity::Critical,
                        now,
                    ));
                }
                (None, _) => {}
            }
        }

        // Plan cross-check for waypoint commands.
        if let Payload::WaypointCommand { uav, waypoint } = &msg.payload {
            if let Some(plan) = self.plans.get(uav) {
                let nearest = plan
                    .iter()
                    .map(|w| w.haversine_distance_m(waypoint))
                    .fold(f64::INFINITY, f64::min);
                if nearest > self.config.plan_corridor_m {
                    alerts.push(self.alert(
                        "waypoint_deviation",
                        *uav,
                        format!("commanded waypoint {nearest:.0} m off plan"),
                        Severity::Emergency,
                        now,
                    ));
                }
            }
        }

        alerts
    }

    fn alert(
        &mut self,
        rule: IdsRule,
        subject: UavId,
        detail: String,
        severity: Severity,
        time: SimTime,
    ) -> IdsAlert {
        self.alerts_raised += 1;
        IdsAlert {
            rule: rule.to_string(),
            subject,
            detail,
            severity,
            time,
        }
    }
}

/// Extracts the UAV a message concerns: the payload's UAV id where typed,
/// otherwise a `uavN` topic segment, otherwise UAV 0.
fn subject_of(msg: &Message) -> UavId {
    match &msg.payload {
        Payload::WaypointCommand { uav, .. }
        | Payload::PositionEstimate { uav, .. }
        | Payload::ModeCommand { uav, .. }
        | Payload::Alert { subject: uav, .. } => *uav,
        Payload::Telemetry(t) => t.uav,
        _ => msg
            .topic
            .split('/')
            .find_map(|seg| seg.strip_prefix("uav").and_then(|n| n.parse().ok()))
            .map(UavId::new)
            .unwrap_or(UavId::new(0)),
    }
}

/// Looks up the severity the catalog assigns to a rule's leaf, for
/// consistency between alerts and trees.
pub fn catalog_severity(leaf: &AttackLeaf) -> Severity {
    leaf.severity
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use sesame_middleware::auth::AuthKey;

    fn auth() -> MessageAuth {
        MessageAuth::new(AuthKey::new(0xFEED))
    }

    fn ids() -> Ids {
        Ids::new(IdsConfig::default(), Some(auth()))
    }

    fn waypoint_msg(signed: bool, seq: u64, lat: f64) -> Message {
        let mut m = Message::new(
            "/uav1/cmd/waypoint",
            "node:gcs",
            seq,
            SimTime::ZERO,
            Payload::WaypointCommand {
                uav: UavId::new(1),
                waypoint: GeoPoint::new(lat, 33.0, 40.0),
            },
        );
        if signed {
            auth().sign(&mut m);
        }
        m
    }

    #[test]
    fn unsigned_command_alerts() {
        let mut ids = ids();
        let alerts = ids.inspect(&waypoint_msg(false, 0, 35.0), SimTime::ZERO);
        assert!(alerts.iter().any(|a| a.rule == "unsigned_publisher"));
        assert_eq!(alerts[0].subject, UavId::new(1));
        assert_eq!(ids.alerts_raised(), alerts.len() as u64);
    }

    #[test]
    fn signed_command_passes() {
        let mut ids = ids();
        let alerts = ids.inspect(&waypoint_msg(true, 0, 35.0), SimTime::ZERO);
        assert!(alerts.is_empty(), "{alerts:?}");
    }

    #[test]
    fn tampered_command_alerts_bad_signature() {
        let mut ids = ids();
        let mut m = waypoint_msg(true, 0, 35.0);
        if let Payload::WaypointCommand { waypoint, .. } = &mut m.payload {
            waypoint.lat_deg += 0.001;
        }
        let alerts = ids.inspect(&m, SimTime::ZERO);
        assert!(alerts.iter().any(|a| a.rule == "bad_signature"));
    }

    #[test]
    fn unprotected_topic_skips_signature_rules() {
        let mut ids = ids();
        let m = Message::new(
            "/uav1/telemetry",
            "uav1",
            0,
            SimTime::ZERO,
            Payload::Text("x".into()),
        );
        assert!(ids.inspect(&m, SimTime::ZERO).is_empty());
    }

    #[test]
    fn replay_detected() {
        let mut ids = ids();
        assert!(ids
            .inspect(&waypoint_msg(true, 5, 35.0), SimTime::ZERO)
            .is_empty());
        let alerts = ids.inspect(&waypoint_msg(true, 5, 35.0), SimTime::from_secs(1));
        assert!(alerts.iter().any(|a| a.rule == "replay"));
        let alerts2 = ids.inspect(&waypoint_msg(true, 3, 35.0), SimTime::from_secs(2));
        assert!(alerts2.iter().any(|a| a.rule == "replay"));
    }

    #[test]
    fn rate_flood_detected() {
        let mut cfg = IdsConfig::default();
        cfg.max_rate_per_window = 10;
        let mut ids = Ids::new(cfg, Some(auth()));
        let mut flood_alerts = 0;
        for i in 0..20u64 {
            let alerts = ids.inspect(&waypoint_msg(true, i, 35.0), SimTime::from_millis(i * 10));
            flood_alerts += alerts.iter().filter(|a| a.rule == "rate_flood").count();
        }
        assert!(flood_alerts > 0);
    }

    #[test]
    fn rate_window_slides() {
        let mut cfg = IdsConfig::default();
        cfg.max_rate_per_window = 5;
        let mut ids = Ids::new(cfg, Some(auth()));
        // 4 msgs/s forever never trips a 5-per-second limit.
        for i in 0..40u64 {
            let alerts = ids.inspect(&waypoint_msg(true, i, 35.0), SimTime::from_millis(i * 250));
            assert!(alerts.iter().all(|a| a.rule != "rate_flood"), "i = {i}");
        }
    }

    #[test]
    fn waypoint_off_plan_alerts() {
        let mut ids = ids();
        let plan: Vec<GeoPoint> = (0..5)
            .map(|i| GeoPoint::new(35.0, 33.0, 40.0).destination(90.0, i as f64 * 50.0))
            .collect();
        ids.register_plan(UavId::new(1), plan);
        // On-plan waypoint: fine.
        let ok = ids.inspect(&waypoint_msg(true, 0, 35.0), SimTime::ZERO);
        assert!(ok.iter().all(|a| a.rule != "waypoint_deviation"));
        // A kilometre off: alert.
        let bad = ids.inspect(&waypoint_msg(true, 1, 35.01), SimTime::from_secs(1));
        assert!(bad.iter().any(|a| a.rule == "waypoint_deviation"));
        assert!(
            bad.iter()
                .find(|a| a.rule == "waypoint_deviation")
                .unwrap()
                .severity
                == Severity::Emergency
        );
    }

    #[test]
    fn no_auth_configured_means_no_signature_alerts() {
        let mut ids = Ids::new(IdsConfig::default(), None);
        let alerts = ids.inspect(&waypoint_msg(false, 0, 35.0), SimTime::ZERO);
        assert!(alerts.iter().all(|a| a.rule != "unsigned_publisher"));
    }

    #[test]
    fn subject_extraction_from_topic() {
        let m = Message::new(
            "/uav7/status",
            "node:x",
            0,
            SimTime::ZERO,
            Payload::Text("hello".into()),
        );
        assert_eq!(subject_of(&m), UavId::new(7));
        let unknown = Message::new(
            "/misc",
            "node:x",
            1,
            SimTime::ZERO,
            Payload::Text("y".into()),
        );
        assert_eq!(subject_of(&unknown), UavId::new(0));
    }
}
