//! Attack trees with CAPEC metadata and leaf-to-root tracing.

use sesame_types::events::Severity;
use std::collections::HashSet;

/// A leaf attack step, carrying the metadata fields the paper lists for
/// each attack scenario: "capecId, title, description, severity,
/// likelihood, and mitigation".
#[derive(Debug, Clone, PartialEq)]
pub struct AttackLeaf {
    /// Stable id the IDS rule mapping uses.
    pub id: String,
    /// CAPEC catalogue id (e.g. "CAPEC-148" for content spoofing).
    pub capec_id: String,
    /// Short title.
    pub title: String,
    /// Longer description.
    pub description: String,
    /// Severity if this step succeeds.
    pub severity: Severity,
    /// Qualitative likelihood in `[0, 1]`.
    pub likelihood: f64,
    /// Recommended mitigation.
    pub mitigation: String,
}

impl AttackLeaf {
    /// Creates a leaf with the given id/CAPEC/title and defaults for the
    /// prose fields.
    pub fn new(
        id: impl Into<String>,
        capec_id: impl Into<String>,
        title: impl Into<String>,
    ) -> Self {
        AttackLeaf {
            id: id.into(),
            capec_id: capec_id.into(),
            title: title.into(),
            description: String::new(),
            severity: Severity::Critical,
            likelihood: 0.5,
            mitigation: String::new(),
        }
    }

    /// Builder-style severity.
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Builder-style likelihood (clamped to `[0, 1]`).
    pub fn with_likelihood(mut self, likelihood: f64) -> Self {
        self.likelihood = likelihood.clamp(0.0, 1.0);
        self
    }

    /// Builder-style mitigation text.
    pub fn with_mitigation(mut self, mitigation: impl Into<String>) -> Self {
        self.mitigation = mitigation.into();
        self
    }

    /// Builder-style description text.
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }
}

/// A node of the attack tree.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackNode {
    /// An atomic attack step.
    Leaf(AttackLeaf),
    /// All children must succeed.
    And {
        /// Gate label.
        title: String,
        /// Sub-goals.
        children: Vec<AttackNode>,
    },
    /// Any child suffices.
    Or {
        /// Gate label.
        title: String,
        /// Sub-goals.
        children: Vec<AttackNode>,
    },
}

impl AttackNode {
    /// All leaf ids below this node.
    pub fn leaf_ids(&self) -> Vec<&str> {
        match self {
            AttackNode::Leaf(l) => vec![l.id.as_str()],
            AttackNode::And { children, .. } | AttackNode::Or { children, .. } => {
                children.iter().flat_map(|c| c.leaf_ids()).collect()
            }
        }
    }
}

/// The dynamic status of a tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeStatus {
    /// No triggered leaves.
    Quiet,
    /// Some leaves triggered but the root goal is not yet reached.
    InProgress,
    /// The adversary's end goal is achieved — a critical security event.
    RootReached,
}

/// An attack tree plus its runtime trigger state.
///
/// # Examples
///
/// ```
/// use sesame_security::attack_tree::{AttackLeaf, AttackNode, AttackTree};
///
/// let tree = AttackTree::new(
///     "demo",
///     AttackNode::And {
///         title: "goal".into(),
///         children: vec![
///             AttackNode::Leaf(AttackLeaf::new("a", "CAPEC-1", "step a")),
///             AttackNode::Leaf(AttackLeaf::new("b", "CAPEC-2", "step b")),
///         ],
///     },
/// );
/// let mut state = tree.fresh_state();
/// state.trigger("a");
/// assert!(!state.root_reached());
/// state.trigger("b");
/// assert!(state.root_reached());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AttackTree {
    /// Tree name (the adversary goal).
    pub name: String,
    /// Root node.
    pub root: AttackNode,
}

impl AttackTree {
    /// Creates a tree.
    ///
    /// # Panics
    ///
    /// Panics if two leaves share an id.
    pub fn new(name: impl Into<String>, root: AttackNode) -> Self {
        let tree = AttackTree {
            name: name.into(),
            root,
        };
        let mut ids = tree.root.leaf_ids();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "leaf ids must be unique");
        tree
    }

    /// Creates an empty trigger state for this tree.
    pub fn fresh_state(&self) -> TreeState<'_> {
        TreeState {
            tree: self,
            triggered: HashSet::new(),
        }
    }

    /// Finds a leaf by id.
    pub fn leaf(&self, id: &str) -> Option<&AttackLeaf> {
        fn walk<'a>(node: &'a AttackNode, id: &str) -> Option<&'a AttackLeaf> {
            match node {
                AttackNode::Leaf(l) => (l.id == id).then_some(l),
                AttackNode::And { children, .. } | AttackNode::Or { children, .. } => {
                    children.iter().find_map(|c| walk(c, id))
                }
            }
        }
        walk(&self.root, id)
    }
}

/// Runtime trigger state over a borrowed tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeState<'t> {
    tree: &'t AttackTree,
    triggered: HashSet<String>,
}

impl<'t> TreeState<'t> {
    /// Marks the leaf `id` as observed. Unknown ids are ignored (an alert
    /// may belong to another tree) and reported as `false`.
    pub fn trigger(&mut self, id: &str) -> bool {
        if self.tree.leaf(id).is_some() {
            self.triggered.insert(id.to_string());
            true
        } else {
            false
        }
    }

    /// The triggered leaf ids.
    pub fn triggered(&self) -> impl Iterator<Item = &str> {
        self.triggered.iter().map(|s| s.as_str())
    }

    /// Whether the root goal is currently satisfied.
    pub fn root_reached(&self) -> bool {
        self.satisfied(&self.tree.root)
    }

    /// Current status classification.
    pub fn status(&self) -> TreeStatus {
        if self.root_reached() {
            TreeStatus::RootReached
        } else if self.triggered.is_empty() {
            TreeStatus::Quiet
        } else {
            TreeStatus::InProgress
        }
    }

    fn satisfied(&self, node: &AttackNode) -> bool {
        match node {
            AttackNode::Leaf(l) => self.triggered.contains(&l.id),
            AttackNode::And { children, .. } => children.iter().all(|c| self.satisfied(c)),
            AttackNode::Or { children, .. } => children.iter().any(|c| self.satisfied(c)),
        }
    }

    /// Traces the satisfied path from leaves to root: the titles of every
    /// satisfied node, leaves first, ending in the tree name. Empty when
    /// the root is not reached.
    pub fn attack_path(&self) -> Vec<String> {
        if !self.root_reached() {
            return Vec::new();
        }
        let mut path = Vec::new();
        self.collect_path(&self.tree.root, &mut path);
        path.push(self.tree.name.clone());
        path
    }

    fn collect_path(&self, node: &AttackNode, out: &mut Vec<String>) {
        match node {
            AttackNode::Leaf(l) => {
                if self.triggered.contains(&l.id) {
                    out.push(l.title.clone());
                }
            }
            AttackNode::And { title, children } => {
                for c in children {
                    self.collect_path(c, out);
                }
                out.push(title.clone());
            }
            AttackNode::Or { title, children } => {
                // Only the satisfied branch contributes.
                for c in children {
                    if self.satisfied(c) {
                        self.collect_path(c, out);
                        break;
                    }
                }
                out.push(title.clone());
            }
        }
    }

    /// Clears all triggers (e.g. after mitigation).
    pub fn reset(&mut self) {
        self.triggered.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn or_of_and() -> AttackTree {
        AttackTree::new(
            "take over uav",
            AttackNode::Or {
                title: "entry".into(),
                children: vec![
                    AttackNode::And {
                        title: "network path".into(),
                        children: vec![
                            AttackNode::Leaf(AttackLeaf::new("scan", "CAPEC-169", "scan network")),
                            AttackNode::Leaf(AttackLeaf::new("inject", "CAPEC-148", "inject msgs")),
                        ],
                    },
                    AttackNode::Leaf(AttackLeaf::new("physical", "CAPEC-390", "physical access")),
                ],
            },
        )
    }

    #[test]
    fn status_progression() {
        let tree = or_of_and();
        let mut st = tree.fresh_state();
        assert_eq!(st.status(), TreeStatus::Quiet);
        assert!(st.trigger("scan"));
        assert_eq!(st.status(), TreeStatus::InProgress);
        assert!(st.trigger("inject"));
        assert_eq!(st.status(), TreeStatus::RootReached);
    }

    #[test]
    fn or_branch_alone_reaches_root() {
        let tree = or_of_and();
        let mut st = tree.fresh_state();
        st.trigger("physical");
        assert!(st.root_reached());
        let path = st.attack_path();
        assert_eq!(path, vec!["physical access", "entry", "take over uav"]);
    }

    #[test]
    fn and_requires_all_children() {
        let tree = or_of_and();
        let mut st = tree.fresh_state();
        st.trigger("inject");
        assert!(!st.root_reached());
        assert!(st.attack_path().is_empty());
    }

    #[test]
    fn unknown_leaf_ignored() {
        let tree = or_of_and();
        let mut st = tree.fresh_state();
        assert!(!st.trigger("nonexistent"));
        assert_eq!(st.status(), TreeStatus::Quiet);
    }

    #[test]
    fn path_through_and_lists_both_leaves() {
        let tree = or_of_and();
        let mut st = tree.fresh_state();
        st.trigger("scan");
        st.trigger("inject");
        let path = st.attack_path();
        assert_eq!(
            path,
            vec![
                "scan network",
                "inject msgs",
                "network path",
                "entry",
                "take over uav"
            ]
        );
    }

    #[test]
    fn reset_clears_state() {
        let tree = or_of_and();
        let mut st = tree.fresh_state();
        st.trigger("physical");
        st.reset();
        assert_eq!(st.status(), TreeStatus::Quiet);
        assert_eq!(st.triggered().count(), 0);
    }

    #[test]
    fn leaf_metadata_builder() {
        let l = AttackLeaf::new("x", "CAPEC-1", "t")
            .with_severity(Severity::Emergency)
            .with_likelihood(2.0)
            .with_mitigation("sign messages")
            .with_description("d");
        assert_eq!(l.severity, Severity::Emergency);
        assert_eq!(l.likelihood, 1.0);
        assert_eq!(l.mitigation, "sign messages");
        assert_eq!(l.description, "d");
    }

    #[test]
    fn leaf_lookup() {
        let tree = or_of_and();
        assert_eq!(tree.leaf("scan").unwrap().capec_id, "CAPEC-169");
        assert!(tree.leaf("zzz").is_none());
        assert_eq!(tree.root.leaf_ids().len(), 3);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_leaf_ids_panic() {
        let _ = AttackTree::new(
            "bad",
            AttackNode::Or {
                title: "o".into(),
                children: vec![
                    AttackNode::Leaf(AttackLeaf::new("a", "c", "t1")),
                    AttackNode::Leaf(AttackLeaf::new("a", "c", "t2")),
                ],
            },
        );
    }
}
