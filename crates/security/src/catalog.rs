//! The attack-tree library for the multi-UAV platform.
//!
//! One tree per adversary goal the paper's threat model names (§I, §III-B,
//! §V-C): ROS message spoofing, GPS spoofing, man-in-the-middle on the
//! command channel, and a replay/flooding denial of service. Leaf ids
//! double as the IDS rule names that trigger them (see
//! [`crate::ids`]).

use crate::attack_tree::{AttackLeaf, AttackNode, AttackTree};
use sesame_types::events::Severity;

/// The ROS message spoofing tree — the §V-C evaluation scenario: falsified
/// data injected "to manipulate the UAVs area mapping system".
pub fn ros_message_spoofing() -> AttackTree {
    AttackTree::new(
        "ros message spoofing",
        AttackNode::And {
            title: "inject falsified mapping commands".into(),
            children: vec![
                AttackNode::Or {
                    title: "gain bus access".into(),
                    children: vec![
                        AttackNode::Leaf(
                            AttackLeaf::new("rate_flood", "CAPEC-125", "probe/flood the bus")
                                .with_severity(Severity::Warning)
                                .with_likelihood(0.6)
                                .with_mitigation("rate-limit unauthenticated publishers"),
                        ),
                        AttackNode::Leaf(
                            AttackLeaf::new(
                                "unsigned_publisher",
                                "CAPEC-148",
                                "publish without authentication",
                            )
                            .with_severity(Severity::Critical)
                            .with_likelihood(0.8)
                            .with_description(
                                "stock ROS topics accept any publisher; the adversary \
                                     registers as a command source",
                            )
                            .with_mitigation("require signed messages on command topics"),
                        ),
                    ],
                },
                AttackNode::Leaf(
                    AttackLeaf::new("waypoint_deviation", "CAPEC-151", "forge waypoint stream")
                        .with_severity(Severity::Emergency)
                        .with_likelihood(0.7)
                        .with_description("forged waypoints bend the area-mapping trajectory")
                        .with_mitigation("cross-check commanded waypoints against mission plan"),
                ),
            ],
        },
    )
}

/// The GPS spoofing tree: falsified satellite signals move the UAV's
/// position solution.
pub fn gps_spoofing() -> AttackTree {
    AttackTree::new(
        "gps spoofing",
        AttackNode::And {
            title: "capture position solution".into(),
            children: vec![
                AttackNode::Leaf(
                    AttackLeaf::new("gps_anomaly", "CAPEC-627", "broadcast counterfeit GNSS")
                        .with_severity(Severity::Critical)
                        .with_likelihood(0.4)
                        .with_mitigation("monitor C/N0 and constellation consistency"),
                ),
                AttackNode::Leaf(
                    AttackLeaf::new("position_jump", "CAPEC-607", "drag position estimate")
                        .with_severity(Severity::Emergency)
                        .with_likelihood(0.5)
                        .with_description("the solution diverges from inertial dead reckoning")
                        .with_mitigation(
                            "innovation gating against dead reckoning; collaborative localization",
                        ),
                ),
            ],
        },
    )
}

/// Man-in-the-middle on the command channel.
pub fn mitm_command_channel() -> AttackTree {
    AttackTree::new(
        "mitm command channel",
        AttackNode::And {
            title: "alter commands in flight".into(),
            children: vec![
                AttackNode::Leaf(
                    AttackLeaf::new("bad_signature", "CAPEC-94", "tamper signed traffic")
                        .with_severity(Severity::Critical)
                        .with_likelihood(0.3)
                        .with_mitigation("reject messages failing authentication"),
                ),
                AttackNode::Leaf(
                    AttackLeaf::new("waypoint_deviation_mitm", "CAPEC-151", "shift waypoints")
                        .with_severity(Severity::Emergency)
                        .with_likelihood(0.5)
                        .with_mitigation("plan cross-check"),
                ),
            ],
        },
    )
}

/// Replay / flooding denial of service.
pub fn replay_dos() -> AttackTree {
    AttackTree::new(
        "replay denial of service",
        AttackNode::Or {
            title: "disrupt command delivery".into(),
            children: vec![
                AttackNode::Leaf(
                    AttackLeaf::new("replay", "CAPEC-94", "replay stale commands")
                        .with_severity(Severity::Critical)
                        .with_likelihood(0.6)
                        .with_mitigation("sequence-number freshness checks"),
                ),
                AttackNode::Leaf(
                    AttackLeaf::new("rate_flood_dos", "CAPEC-125", "flood command topics")
                        .with_severity(Severity::Warning)
                        .with_likelihood(0.7)
                        .with_mitigation("per-sender rate limiting"),
                ),
            ],
        },
    )
}

/// Every catalogued tree.
pub fn all_trees() -> Vec<AttackTree> {
    vec![
        ros_message_spoofing(),
        gps_spoofing(),
        mitm_command_channel(),
        replay_dos(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_builds_and_names_are_unique() {
        let trees = all_trees();
        assert_eq!(trees.len(), 4);
        let mut names: Vec<&str> = trees.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn leaf_ids_are_globally_unique_across_catalog() {
        let trees = all_trees();
        let mut ids: Vec<String> = trees
            .iter()
            .flat_map(|t| t.root.leaf_ids().into_iter().map(String::from))
            .collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before, "ids must not collide between trees");
    }

    #[test]
    fn spoofing_tree_requires_access_and_forgery() {
        let tree = ros_message_spoofing();
        let mut st = tree.fresh_state();
        st.trigger("unsigned_publisher");
        assert!(!st.root_reached(), "access alone is not the goal");
        st.trigger("waypoint_deviation");
        assert!(st.root_reached());
    }

    #[test]
    fn every_leaf_has_capec_and_mitigation() {
        for tree in all_trees() {
            for id in tree.root.leaf_ids() {
                let leaf = tree.leaf(id).unwrap();
                assert!(leaf.capec_id.starts_with("CAPEC-"), "{id}");
                assert!(!leaf.mitigation.is_empty(), "{id} lacks mitigation");
            }
        }
    }
}
