//! GPS / position spoofing detection.
//!
//! The §V-C scenario: falsified position data drag a UAV's area-mapping
//! trajectory. The detector cross-checks each reported GPS fix against a
//! dead-reckoned prediction from the last trusted position and the
//! commanded velocity; an innovation larger than physics allows (plus
//! noise margin) marks the fix as spoofed. A second, collaborative check
//! compares the fix with an externally supplied position estimate (from
//! collaborative localization), which also works when the receiver is
//! fully captured.

use sesame_types::geo::GeoPoint;
use sesame_types::geo::Vec3;
use sesame_types::time::SimTime;

/// One verdict for a reported fix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpoofVerdict {
    /// Whether the fix is judged spoofed.
    pub spoofed: bool,
    /// Innovation against dead reckoning, metres.
    pub innovation_m: f64,
    /// The gate the innovation was compared to, metres.
    pub gate_m: f64,
}

/// The spoofing detector for one UAV.
///
/// # Examples
///
/// ```
/// use sesame_security::spoof::SpoofDetector;
/// use sesame_types::geo::{GeoPoint, Vec3};
/// use sesame_types::time::SimTime;
///
/// let start = GeoPoint::new(35.0, 33.0, 40.0);
/// let mut det = SpoofDetector::new(start, 20.0);
/// // A plausible next fix 1 s later, 5 m east while flying east at 5 m/s.
/// let fix = start.destination(90.0, 5.0);
/// let v = det.check(&fix, Vec3::new(5.0, 0.0, 0.0), SimTime::from_secs(1));
/// assert!(!v.spoofed);
/// ```
#[derive(Debug, Clone)]
pub struct SpoofDetector {
    last_trusted: GeoPoint,
    last_time: SimTime,
    /// Long-horizon dead-reckoning anchor (advanced only by commanded
    /// velocity; catches slow drags that stay under the per-step gate).
    dr_anchor: GeoPoint,
    dr_elapsed: f64,
    /// Maximum plausible speed of the airframe, m/s.
    pub max_speed_mps: f64,
    /// Base noise margin of the gate, metres.
    pub noise_margin_m: f64,
    consecutive_hits: u32,
    cumulative_hits: u32,
    /// Consecutive gated fixes required before declaring spoofing.
    pub confirm_count: u32,
    /// Seconds between re-anchoring the long-horizon check when the track
    /// is consistent.
    pub reanchor_secs: f64,
}

impl SpoofDetector {
    /// Creates a detector anchored at the launch position.
    pub fn new(initial: GeoPoint, max_speed_mps: f64) -> Self {
        SpoofDetector {
            last_trusted: initial,
            last_time: SimTime::ZERO,
            dr_anchor: initial,
            dr_elapsed: 0.0,
            max_speed_mps,
            noise_margin_m: 8.0,
            consecutive_hits: 0,
            cumulative_hits: 0,
            confirm_count: 3,
            reanchor_secs: 10.0,
        }
    }

    /// Checks a reported fix against dead reckoning from the last trusted
    /// position with the current commanded `velocity`. Two gates run in
    /// parallel: a per-step innovation gate (catches jumps) and a
    /// long-horizon cumulative gate against a pure dead-reckoning anchor
    /// (catches slow meaconing drags that stay under the per-step gate).
    /// Both require [`SpoofDetector::confirm_count`] consecutive hits.
    pub fn check(&mut self, fix: &GeoPoint, velocity: Vec3, now: SimTime) -> SpoofVerdict {
        let dt = now.since(self.last_time).as_secs_f64();
        // Per-step gate against the last trusted position.
        let predicted = {
            let enu_step = Vec3::new(velocity.x * dt, velocity.y * dt, velocity.z * dt);
            GeoPoint::from_enu(&self.last_trusted, enu_step.into())
        };
        let innovation = predicted.distance_3d_m(fix);
        let gate = self.noise_margin_m + 0.5 * self.max_speed_mps * dt;
        if innovation > gate {
            self.consecutive_hits += 1;
            // Keep dead-reckoning from the prediction, not the bad fix.
            self.last_trusted = predicted;
        } else {
            self.consecutive_hits = 0;
            self.last_trusted = *fix;
        }

        // Long-horizon cumulative gate: the anchor only moves by commanded
        // velocity, so a drag accumulates against it.
        self.dr_anchor = {
            let enu_step = Vec3::new(velocity.x * dt, velocity.y * dt, velocity.z * dt);
            GeoPoint::from_enu(&self.dr_anchor, enu_step.into())
        };
        self.dr_elapsed += dt;
        let cumulative = self.dr_anchor.distance_3d_m(fix);
        let cum_gate = self.noise_margin_m + 0.1 * self.max_speed_mps * self.dr_elapsed.sqrt();
        if cumulative > cum_gate {
            self.cumulative_hits += 1;
        } else {
            self.cumulative_hits = 0;
            if self.dr_elapsed >= self.reanchor_secs {
                // Consistent for a whole window: accept accumulated control
                // error and re-anchor.
                self.dr_anchor = *fix;
                self.dr_elapsed = 0.0;
            }
        }

        self.last_time = now;
        SpoofVerdict {
            spoofed: self.consecutive_hits >= self.confirm_count
                || self.cumulative_hits >= self.confirm_count,
            innovation_m: innovation,
            gate_m: gate,
        }
    }

    /// Collaborative cross-check: compares the reported fix with an
    /// independent position estimate (e.g. from collaborative
    /// localization) of 1-σ accuracy `estimate_sigma_m`. Returns `true`
    /// when they disagree beyond 5 σ + noise margin.
    pub fn cross_check(&self, fix: &GeoPoint, estimate: &GeoPoint, estimate_sigma_m: f64) -> bool {
        let disagreement = fix.distance_3d_m(estimate);
        disagreement > 5.0 * estimate_sigma_m + self.noise_margin_m
    }

    /// The current dead-reckoning anchor (last trusted position).
    pub fn anchor(&self) -> GeoPoint {
        self.last_trusted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> GeoPoint {
        GeoPoint::new(35.0, 33.0, 40.0)
    }

    #[test]
    fn consistent_track_never_flags() {
        let mut det = SpoofDetector::new(start(), 15.0);
        let mut pos = start();
        for s in 1..=60u64 {
            pos = pos.destination(90.0, 5.0); // 5 m/s east
            let v = det.check(&pos, Vec3::new(5.0, 0.0, 0.0), SimTime::from_secs(s));
            assert!(!v.spoofed, "t={s}: {v:?}");
        }
    }

    #[test]
    fn sudden_jump_flags_after_confirmation() {
        let mut det = SpoofDetector::new(start(), 15.0);
        let mut verdicts = Vec::new();
        for s in 1..=10u64 {
            // Spoofer teleports the fix 300 m north and drags it.
            let fix = start().destination(0.0, 300.0 + s as f64 * 10.0);
            verdicts.push(det.check(&fix, Vec3::zero(), SimTime::from_secs(s)));
        }
        assert!(!verdicts[0].spoofed, "first hit only counts");
        assert!(verdicts[2].spoofed, "third consecutive hit confirms");
        assert!(verdicts.last().unwrap().spoofed);
        assert!(verdicts[0].innovation_m > 250.0);
    }

    #[test]
    fn slow_drag_cannot_walk_the_anchor() {
        // A classic meaconing attack drags the fix a little per epoch; the
        // anchor must not follow the drag.
        let mut det = SpoofDetector::new(start(), 15.0);
        let mut flagged = false;
        for s in 1..=120u64 {
            // Hovering UAV (zero velocity) dragged 3 m/s north.
            let fix = start().destination(0.0, 3.0 * s as f64);
            let v = det.check(&fix, Vec3::zero(), SimTime::from_secs(s));
            flagged |= v.spoofed;
        }
        assert!(flagged, "cumulative drag must eventually exceed the gate");
    }

    #[test]
    fn recovery_resets_confirmation() {
        let mut det = SpoofDetector::new(start(), 15.0);
        let jump = start().destination(0.0, 500.0);
        det.check(&jump, Vec3::zero(), SimTime::from_secs(1));
        det.check(&jump, Vec3::zero(), SimTime::from_secs(2));
        // Back to truth before confirmation.
        let v = det.check(&start(), Vec3::zero(), SimTime::from_secs(3));
        assert!(!v.spoofed);
        let v2 = det.check(&jump, Vec3::zero(), SimTime::from_secs(4));
        assert!(!v2.spoofed, "counter restarted");
    }

    #[test]
    fn cross_check_flags_large_disagreement() {
        let det = SpoofDetector::new(start(), 15.0);
        let fix = start().destination(0.0, 200.0);
        let collab_estimate = start();
        assert!(det.cross_check(&fix, &collab_estimate, 2.0));
        let nearby = start().destination(0.0, 5.0);
        assert!(!det.cross_check(&nearby, &collab_estimate, 2.0));
    }

    #[test]
    fn anchor_tracks_trusted_fixes_only() {
        let mut det = SpoofDetector::new(start(), 15.0);
        let good = start().destination(90.0, 4.0);
        det.check(&good, Vec3::new(4.0, 0.0, 0.0), SimTime::from_secs(1));
        assert!(det.anchor().haversine_distance_m(&good) < 0.01);
        let bad = start().destination(0.0, 400.0);
        det.check(&bad, Vec3::zero(), SimTime::from_secs(2));
        assert!(det.anchor().haversine_distance_m(&bad) > 300.0);
    }
}
