//! Security EDDI — attack trees, intrusion detection, spoofing detection.
//!
//! Reproduces the Security EDDI framework of the paper (§III-B): attack
//! trees "outline all possible attack scenarios based on identified cyber
//! and physical vulnerabilities", each scenario carrying CAPEC-style
//! metadata; an IDS "inspects network traffic and publishes alerts upon
//! detecting suspicious activity" to an MQTT topic; per-tree EDDI scripts
//! subscribe, trace alerts "from the leaf nodes toward the root", and
//! reaching the root "implies the adversary's end goal is achieved".
//!
//! * [`attack_tree`] — the tree model with AND/OR gates and CAPEC leaf
//!   metadata, plus leaf-to-root path tracing;
//! * [`catalog`] — trees for the attacks the paper names: ROS message
//!   spoofing (§V-C), GPS spoofing, man-in-the-middle, replay/DoS;
//! * [`ids`] — rule-based traffic inspection over the
//!   `sesame-middleware` bus (signature, replay, rate, position-innovation
//!   checks);
//! * [`eddi`] — the per-tree Security EDDI script: broker subscription,
//!   leaf triggering, root detection;
//! * [`spoof`] — the GPS/position spoofing detector (dead-reckoning
//!   innovation + collaborative cross-check) that feeds the §V-C
//!   mitigation.

pub mod attack_tree;
pub mod catalog;
pub mod eddi;
pub mod export;
pub mod ids;
pub mod incremental;
pub mod spoof;

pub use attack_tree::{AttackLeaf, AttackNode, AttackTree, TreeStatus};
pub use eddi::{SecurityEddi, SecurityStatus};
pub use ids::{Ids, IdsConfig, IdsRule};
pub use incremental::{IndexedTree, IndexedTreeState};
pub use spoof::{SpoofDetector, SpoofVerdict};
