//! The per-tree Security EDDI script.
//!
//! "Each Security EDDI is implemented as a Python script tailored to a
//! specific attack tree, capable of parsing and recognizing attack
//! patterns to detect an adversary's ultimate goal" (§III-B). Here each
//! [`SecurityEddi`] owns one tree, subscribes to the alert broker, maps
//! alert rules to tree leaves, and reports when the root is reached —
//! per UAV, so attacks on different airframes do not mix.

use crate::attack_tree::{AttackTree, TreeStatus};
use crate::incremental::{IndexedTree, IndexedTreeState};
use sesame_middleware::broker::{AlertBroker, BrokerSubscription};
use sesame_middleware::message::Payload;
use sesame_types::ids::UavId;
use sesame_types::time::SimTime;
use std::collections::{HashMap, HashSet};

/// The security verdict for one UAV under one tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SecurityStatus {
    /// Which UAV.
    pub uav: UavId,
    /// Tree name (adversary goal).
    pub tree: String,
    /// Current status.
    pub status: TreeStatus,
    /// The satisfied leaf-to-root path when the root is reached.
    pub attack_path: Vec<String>,
    /// When the root was first reached, if ever.
    pub detected_at: Option<SimTime>,
}

/// One Security EDDI: an attack tree plus per-UAV trigger state, fed from
/// the alert broker.
///
/// # Examples
///
/// ```
/// use sesame_middleware::broker::AlertBroker;
/// use sesame_middleware::message::Payload;
/// use sesame_security::catalog;
/// use sesame_security::eddi::SecurityEddi;
/// use sesame_types::ids::UavId;
/// use sesame_types::time::SimTime;
///
/// let mut broker = AlertBroker::new();
/// let mut eddi = SecurityEddi::attach(catalog::ros_message_spoofing(), &mut broker);
/// let uav = UavId::new(1);
/// for rule in ["unsigned_publisher", "waypoint_deviation"] {
///     broker.publish(SimTime::ZERO, "ids", format!("ids/alerts/{uav}"), Payload::Alert {
///         rule: rule.into(),
///         subject: uav,
///         detail: String::new(),
///     });
/// }
/// let detections = eddi.poll(&mut broker, SimTime::from_millis(100));
/// assert_eq!(detections.len(), 1);
/// assert_eq!(detections[0].uav, uav);
/// ```
#[derive(Debug)]
pub struct SecurityEddi {
    tree: AttackTree,
    subscription: BrokerSubscription,
    /// Per-UAV triggered leaf sets.
    triggered: HashMap<UavId, HashSet<String>>,
    detected_at: HashMap<UavId, SimTime>,
    /// Fast path: the flattened tree plus per-UAV memoized evaluation
    /// states, maintained incrementally as alerts arrive. `None` keeps
    /// the naive rebuild-per-query behaviour.
    indexed: Option<IndexedTree>,
    states: HashMap<UavId, IndexedTreeState>,
}

impl SecurityEddi {
    /// Attaches an EDDI for `tree` to the broker (subscribes to
    /// `ids/alerts/#`).
    pub fn attach(tree: AttackTree, broker: &mut AlertBroker) -> Self {
        let subscription = broker.subscribe("ids/alerts/#");
        SecurityEddi {
            tree,
            subscription,
            triggered: HashMap::new(),
            detected_at: HashMap::new(),
            indexed: None,
            states: HashMap::new(),
        }
    }

    /// Switches `root_reached` queries to the memoized [`IndexedTree`]
    /// evaluation (O(depth) per alert instead of a full tree rebuild per
    /// query). Satisfaction is exact boolean algebra, so answers are
    /// identical to the naive walk; existing trigger state is re-indexed.
    pub fn enable_fast_path(&mut self) {
        let ix = IndexedTree::new(&self.tree);
        self.states = self
            .triggered
            .iter()
            .map(|(uav, set)| {
                let mut st = ix.state();
                for leaf in set {
                    st.trigger(&ix, leaf);
                }
                (*uav, st)
            })
            .collect();
        self.indexed = Some(ix);
    }

    /// The monitored tree.
    pub fn tree(&self) -> &AttackTree {
        &self.tree
    }

    /// Drains pending alerts from the broker, updates the per-UAV tree
    /// states and returns a [`SecurityStatus`] for every UAV whose root
    /// was **newly** reached by this poll.
    pub fn poll(&mut self, broker: &mut AlertBroker, now: SimTime) -> Vec<SecurityStatus> {
        let mut fresh = Vec::new();
        for msg in broker.drain(self.subscription) {
            let Payload::Alert { rule, subject, .. } = &msg.payload else {
                continue;
            };
            if self.tree.leaf(rule).is_none() {
                continue; // belongs to another tree's EDDI
            }
            let was_reached = self.root_reached(*subject);
            self.triggered
                .entry(*subject)
                .or_default()
                .insert(rule.clone());
            if let Some(ix) = &self.indexed {
                self.states
                    .entry(*subject)
                    .or_insert_with(|| ix.state())
                    .trigger(ix, rule);
            }
            if !was_reached && self.root_reached(*subject) {
                self.detected_at.insert(*subject, now);
                fresh.push(self.status_for(*subject));
            }
        }
        fresh
    }

    /// Whether the tree root is currently reached for `uav`.
    pub fn root_reached(&self, uav: UavId) -> bool {
        if let Some(ix) = &self.indexed {
            return match self.states.get(&uav) {
                Some(st) => st.root_satisfied(),
                None => ix.state().root_satisfied(),
            };
        }
        let mut state = self.tree.fresh_state();
        if let Some(set) = self.triggered.get(&uav) {
            for leaf in set {
                state.trigger(leaf);
            }
        }
        state.root_reached()
    }

    /// The full status for one UAV.
    pub fn status_for(&self, uav: UavId) -> SecurityStatus {
        let mut state = self.tree.fresh_state();
        if let Some(set) = self.triggered.get(&uav) {
            for leaf in set {
                state.trigger(leaf);
            }
        }
        SecurityStatus {
            uav,
            tree: self.tree.name.clone(),
            status: state.status(),
            attack_path: state.attack_path(),
            detected_at: self.detected_at.get(&uav).copied(),
        }
    }

    /// Clears the state for a UAV after mitigation (e.g. safe landing).
    pub fn clear(&mut self, uav: UavId) {
        self.triggered.remove(&uav);
        self.detected_at.remove(&uav);
        self.states.remove(&uav);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn publish_alert(broker: &mut AlertBroker, uav: UavId, rule: &str, at: SimTime) {
        broker.publish(
            at,
            "ids",
            format!("ids/alerts/{uav}"),
            Payload::Alert {
                rule: rule.into(),
                subject: uav,
                detail: String::new(),
            },
        );
    }

    #[test]
    fn root_detection_fires_once() {
        let mut broker = AlertBroker::new();
        let mut eddi = SecurityEddi::attach(catalog::ros_message_spoofing(), &mut broker);
        let uav = UavId::new(1);
        publish_alert(&mut broker, uav, "unsigned_publisher", SimTime::ZERO);
        assert!(eddi.poll(&mut broker, SimTime::ZERO).is_empty());
        publish_alert(
            &mut broker,
            uav,
            "waypoint_deviation",
            SimTime::from_secs(1),
        );
        let hits = eddi.poll(&mut broker, SimTime::from_secs(1));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].status, TreeStatus::RootReached);
        assert_eq!(hits[0].detected_at, Some(SimTime::from_secs(1)));
        assert!(!hits[0].attack_path.is_empty());
        // Repeating an alert does not re-fire.
        publish_alert(
            &mut broker,
            uav,
            "waypoint_deviation",
            SimTime::from_secs(2),
        );
        assert!(eddi.poll(&mut broker, SimTime::from_secs(2)).is_empty());
        assert!(eddi.root_reached(uav));
    }

    #[test]
    fn uavs_are_tracked_independently() {
        let mut broker = AlertBroker::new();
        let mut eddi = SecurityEddi::attach(catalog::ros_message_spoofing(), &mut broker);
        let (u1, u2) = (UavId::new(1), UavId::new(2));
        publish_alert(&mut broker, u1, "unsigned_publisher", SimTime::ZERO);
        publish_alert(&mut broker, u2, "waypoint_deviation", SimTime::ZERO);
        eddi.poll(&mut broker, SimTime::ZERO);
        assert!(!eddi.root_reached(u1));
        assert!(!eddi.root_reached(u2));
        publish_alert(&mut broker, u1, "waypoint_deviation", SimTime::from_secs(1));
        let hits = eddi.poll(&mut broker, SimTime::from_secs(1));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].uav, u1);
    }

    #[test]
    fn alerts_for_other_trees_are_ignored() {
        let mut broker = AlertBroker::new();
        let mut eddi = SecurityEddi::attach(catalog::gps_spoofing(), &mut broker);
        let uav = UavId::new(1);
        publish_alert(&mut broker, uav, "unsigned_publisher", SimTime::ZERO);
        publish_alert(&mut broker, uav, "waypoint_deviation", SimTime::ZERO);
        assert!(eddi.poll(&mut broker, SimTime::ZERO).is_empty());
        assert_eq!(eddi.status_for(uav).status, TreeStatus::Quiet);
    }

    #[test]
    fn two_eddis_share_the_broker() {
        let mut broker = AlertBroker::new();
        let mut spoof = SecurityEddi::attach(catalog::ros_message_spoofing(), &mut broker);
        let mut gps = SecurityEddi::attach(catalog::gps_spoofing(), &mut broker);
        let uav = UavId::new(3);
        for rule in [
            "unsigned_publisher",
            "waypoint_deviation",
            "gps_anomaly",
            "position_jump",
        ] {
            publish_alert(&mut broker, uav, rule, SimTime::ZERO);
        }
        assert_eq!(spoof.poll(&mut broker, SimTime::ZERO).len(), 1);
        assert_eq!(gps.poll(&mut broker, SimTime::ZERO).len(), 1);
    }

    /// A naive EDDI and a fast-path EDDI fed the identical alert stream
    /// must agree on every detection, status and `root_reached` answer.
    #[test]
    fn fast_path_locksteps_with_naive_eddi() {
        let mut naive_broker = AlertBroker::new();
        let mut fast_broker = AlertBroker::new();
        let mut naive = SecurityEddi::attach(catalog::ros_message_spoofing(), &mut naive_broker);
        let mut fast = SecurityEddi::attach(catalog::ros_message_spoofing(), &mut fast_broker);
        fast.enable_fast_path();
        let uavs = [UavId::new(1), UavId::new(2), UavId::new(3)];
        let rules = [
            "unsigned_publisher",
            "waypoint_deviation",
            "gps_anomaly",        // belongs to another tree: must be skipped
            "unsigned_publisher", // duplicate: must be a no-op
        ];
        for (k, rule) in rules.iter().cycle().take(24).enumerate() {
            let uav = uavs[k % uavs.len()];
            let at = SimTime::from_millis(k as u64 * 100);
            publish_alert(&mut naive_broker, uav, rule, at);
            publish_alert(&mut fast_broker, uav, rule, at);
            let a = naive.poll(&mut naive_broker, at);
            let b = fast.poll(&mut fast_broker, at);
            assert_eq!(a, b, "poll diverged at step {k}");
            for u in uavs {
                assert_eq!(naive.root_reached(u), fast.root_reached(u));
                assert_eq!(naive.status_for(u), fast.status_for(u));
            }
        }
        // Clearing must reset both identically.
        naive.clear(uavs[0]);
        fast.clear(uavs[0]);
        assert_eq!(naive.root_reached(uavs[0]), fast.root_reached(uavs[0]));
    }

    /// Enabling the fast path mid-stream re-indexes existing triggers.
    #[test]
    fn enable_fast_path_reindexes_existing_state() {
        let mut broker = AlertBroker::new();
        let mut eddi = SecurityEddi::attach(catalog::ros_message_spoofing(), &mut broker);
        let uav = UavId::new(7);
        publish_alert(&mut broker, uav, "unsigned_publisher", SimTime::ZERO);
        publish_alert(&mut broker, uav, "waypoint_deviation", SimTime::ZERO);
        assert_eq!(eddi.poll(&mut broker, SimTime::ZERO).len(), 1);
        eddi.enable_fast_path();
        assert!(eddi.root_reached(uav), "re-indexed state keeps the root");
        assert!(!eddi.root_reached(UavId::new(99)));
    }

    #[test]
    fn clear_resets_state() {
        let mut broker = AlertBroker::new();
        let mut eddi = SecurityEddi::attach(catalog::replay_dos(), &mut broker);
        let uav = UavId::new(1);
        publish_alert(&mut broker, uav, "replay", SimTime::ZERO);
        let hits = eddi.poll(&mut broker, SimTime::ZERO);
        assert_eq!(hits.len(), 1, "OR tree fires on a single leaf");
        eddi.clear(uav);
        assert!(!eddi.root_reached(uav));
        assert_eq!(eddi.status_for(uav).status, TreeStatus::Quiet);
    }
}
