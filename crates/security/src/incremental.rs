//! Incrementally-evaluated attack trees — the security leg of the EDDI
//! fast path.
//!
//! [`TreeState`](crate::attack_tree::TreeState) re-walks the whole tree on
//! every `root_reached` query, and [`SecurityEddi`](crate::eddi::SecurityEddi)
//! rebuilds that state from scratch twice per alert. [`IndexedTree`]
//! flattens the tree once into DFS-ordered nodes; [`IndexedTreeState`]
//! memoizes per-subtree **satisfaction** and **success probability**
//! (leaves contribute their CAPEC likelihood until triggered, then 1.0;
//! AND gates multiply, OR gates combine as `1 − ∏(1 − p)`). Triggering a
//! leaf dirties only its ancestor chain, and propagation stops at the
//! first ancestor whose value is unchanged — O(depth) instead of O(tree).
//!
//! Satisfaction is exact boolean algebra, so the memoized answer is
//! provably equal to the recursive walk; the property tests below lockstep
//! the two over randomized trigger schedules.

use crate::attack_tree::{AttackNode, AttackTree};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum IndexedKind {
    Leaf { likelihood: f64 },
    And { children: Vec<usize> },
    Or { children: Vec<usize> },
}

#[derive(Debug, Clone)]
struct IndexedNode {
    parent: Option<usize>,
    kind: IndexedKind,
}

/// A flattened, index-addressed view of an [`AttackTree`]. Node 0 is the
/// root; children precede nothing (DFS pre-order), and every leaf id maps
/// to its node index.
#[derive(Debug, Clone)]
pub struct IndexedTree {
    nodes: Vec<IndexedNode>,
    leaf_lookup: HashMap<String, usize>,
}

impl IndexedTree {
    /// Flattens `tree`.
    pub fn new(tree: &AttackTree) -> Self {
        let mut ix = IndexedTree {
            nodes: Vec::new(),
            leaf_lookup: HashMap::new(),
        };
        ix.add(&tree.root, None);
        ix
    }

    fn add(&mut self, node: &AttackNode, parent: Option<usize>) -> usize {
        let idx = self.nodes.len();
        self.nodes.push(IndexedNode {
            parent,
            kind: IndexedKind::And {
                children: Vec::new(),
            },
        });
        let kind = match node {
            AttackNode::Leaf(l) => {
                self.leaf_lookup.insert(l.id.clone(), idx);
                IndexedKind::Leaf {
                    likelihood: l.likelihood,
                }
            }
            AttackNode::And { children, .. } => IndexedKind::And {
                children: children.iter().map(|c| self.add(c, Some(idx))).collect(),
            },
            AttackNode::Or { children, .. } => IndexedKind::Or {
                children: children.iter().map(|c| self.add(c, Some(idx))).collect(),
            },
        };
        self.nodes[idx].kind = kind;
        idx
    }

    /// Number of flattened nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node index of a leaf id, if this tree has it.
    pub fn leaf_index(&self, id: &str) -> Option<usize> {
        self.leaf_lookup.get(id).copied()
    }

    /// A fresh evaluation state with no triggered leaves: satisfaction and
    /// subtree probabilities are seeded bottom-up once.
    pub fn state(&self) -> IndexedTreeState {
        let n = self.nodes.len();
        let mut st = IndexedTreeState {
            triggered: vec![false; n],
            satisfied: vec![false; n],
            probability: vec![0.0; n],
            propagations: 0,
        };
        // DFS pre-order guarantees children have higher indices than their
        // parent, so a reverse sweep evaluates bottom-up.
        for idx in (0..n).rev() {
            let (s, p) = self.evaluate_node(idx, &st);
            st.satisfied[idx] = s;
            st.probability[idx] = p;
        }
        st
    }

    /// Evaluates one node from its (already current) children.
    fn evaluate_node(&self, idx: usize, st: &IndexedTreeState) -> (bool, f64) {
        match &self.nodes[idx].kind {
            IndexedKind::Leaf { likelihood } => {
                if st.triggered[idx] {
                    (true, 1.0)
                } else {
                    (false, *likelihood)
                }
            }
            IndexedKind::And { children } => {
                let s = children.iter().all(|c| st.satisfied[*c]);
                let p = children.iter().map(|c| st.probability[*c]).product();
                (s, p)
            }
            IndexedKind::Or { children } => {
                let s = children.iter().any(|c| st.satisfied[*c]);
                let miss: f64 = children.iter().map(|c| 1.0 - st.probability[*c]).product();
                (s, 1.0 - miss)
            }
        }
    }
}

/// Memoized evaluation state over an [`IndexedTree`].
#[derive(Debug, Clone)]
pub struct IndexedTreeState {
    triggered: Vec<bool>,
    satisfied: Vec<bool>,
    probability: Vec<f64>,
    propagations: u64,
}

impl IndexedTreeState {
    /// Marks the leaf `id` as observed and propagates the change up the
    /// ancestor chain, stopping at the first unchanged ancestor. Returns
    /// `false` (and does nothing) for ids this tree does not contain.
    pub fn trigger(&mut self, tree: &IndexedTree, id: &str) -> bool {
        let Some(leaf) = tree.leaf_index(id) else {
            return false;
        };
        if self.triggered[leaf] {
            return true; // already counted; nothing can change
        }
        self.triggered[leaf] = true;
        self.satisfied[leaf] = true;
        self.probability[leaf] = 1.0;
        // Dirty-flag propagation: only the ancestor chain can change, and
        // an unchanged ancestor screens everything above it.
        let mut cursor = tree.nodes[leaf].parent;
        while let Some(idx) = cursor {
            self.propagations += 1;
            let (s, p) = tree.evaluate_node(idx, self);
            if s == self.satisfied[idx] && p.to_bits() == self.probability[idx].to_bits() {
                break;
            }
            self.satisfied[idx] = s;
            self.probability[idx] = p;
            cursor = tree.nodes[idx].parent;
        }
        true
    }

    /// Whether the root goal is satisfied.
    pub fn root_satisfied(&self) -> bool {
        self.satisfied[0]
    }

    /// The memoized success probability of the root goal.
    pub fn root_probability(&self) -> f64 {
        self.probability[0]
    }

    /// Whether the subtree at `idx` is satisfied.
    pub fn satisfied(&self, idx: usize) -> bool {
        self.satisfied[idx]
    }

    /// The memoized success probability of the subtree at `idx`.
    pub fn probability(&self, idx: usize) -> f64 {
        self.probability[idx]
    }

    /// Whether any leaf is triggered.
    pub fn any_triggered(&self) -> bool {
        self.triggered.iter().any(|t| *t)
    }

    /// Number of ancestor re-evaluations performed so far (a measure of
    /// the work dirty-propagation actually did).
    pub fn propagations(&self) -> u64 {
        self.propagations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack_tree::AttackLeaf;
    use crate::catalog;

    fn trees() -> Vec<AttackTree> {
        vec![
            catalog::ros_message_spoofing(),
            catalog::gps_spoofing(),
            catalog::replay_dos(),
        ]
    }

    /// Every prefix of a randomized trigger schedule must agree with the
    /// naive recursive walk on satisfaction of every node-addressable
    /// leaf and on the root.
    #[test]
    fn lockstep_with_naive_tree_state() {
        for tree in trees() {
            let ix = IndexedTree::new(&tree);
            let mut leaf_ids: Vec<String> =
                tree.root.leaf_ids().iter().map(|s| s.to_string()).collect();
            // Deterministic shuffle: rotate by a tree-dependent amount and
            // interleave repeats + unknown ids.
            let rot = tree.name.len() % leaf_ids.len().max(1);
            leaf_ids.rotate_left(rot);
            let mut schedule: Vec<String> = Vec::new();
            for id in &leaf_ids {
                schedule.push(id.clone());
                schedule.push("not_a_leaf".into());
                schedule.push(id.clone()); // repeat must be a no-op
            }

            let mut fast = ix.state();
            let mut naive = tree.fresh_state();
            for (k, id) in schedule.iter().enumerate() {
                let a = naive.trigger(id);
                let b = fast.trigger(&ix, id);
                assert_eq!(a, b, "{}: accept mismatch at step {k}", tree.name);
                assert_eq!(
                    naive.root_reached(),
                    fast.root_satisfied(),
                    "{}: root mismatch after {id} (step {k})",
                    tree.name
                );
            }
            assert!(fast.root_satisfied(), "all leaves triggered reaches root");
            assert_eq!(fast.root_probability(), 1.0);
        }
    }

    #[test]
    fn probabilities_follow_and_or_algebra() {
        let tree = AttackTree::new(
            "goal",
            AttackNode::Or {
                title: "or".into(),
                children: vec![
                    AttackNode::And {
                        title: "and".into(),
                        children: vec![
                            AttackNode::Leaf(AttackLeaf::new("a", "C-1", "a").with_likelihood(0.5)),
                            AttackNode::Leaf(AttackLeaf::new("b", "C-2", "b").with_likelihood(0.2)),
                        ],
                    },
                    AttackNode::Leaf(AttackLeaf::new("c", "C-3", "c").with_likelihood(0.1)),
                ],
            },
        );
        let ix = IndexedTree::new(&tree);
        let mut st = ix.state();
        // Untriggered: and = 0.5 * 0.2 = 0.1; or = 1 - 0.9 * 0.9 = 0.19.
        assert!((st.root_probability() - 0.19).abs() < 1e-12);
        st.trigger(&ix, "a");
        // and = 1.0 * 0.2 = 0.2; or = 1 - 0.8 * 0.9 = 0.28.
        assert!((st.root_probability() - 0.28).abs() < 1e-12);
        assert!(!st.root_satisfied());
        st.trigger(&ix, "b");
        assert!(st.root_satisfied());
        assert_eq!(st.root_probability(), 1.0);
    }

    #[test]
    fn propagation_stops_at_unchanged_ancestors() {
        let tree = catalog::ros_message_spoofing();
        let ix = IndexedTree::new(&tree);
        let mut st = ix.state();
        let leaf = tree.root.leaf_ids()[0].to_string();
        st.trigger(&ix, &leaf);
        let after_first = st.propagations();
        // Re-triggering the same leaf is screened out entirely.
        st.trigger(&ix, &leaf);
        assert_eq!(st.propagations(), after_first);
    }

    #[test]
    fn node_count_and_leaf_lookup() {
        let tree = catalog::gps_spoofing();
        let ix = IndexedTree::new(&tree);
        assert!(ix.node_count() > tree.root.leaf_ids().len());
        for id in tree.root.leaf_ids() {
            assert!(ix.leaf_index(id).is_some());
        }
        assert!(ix.leaf_index("missing").is_none());
        assert!(!ix.state().any_triggered());
    }
}
