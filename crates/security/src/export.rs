//! Graphviz export of attack trees.
//!
//! The Security EDDI workflow generates attack trees at design time
//! (§III-B); this renders them for review, with leaves carrying their
//! CAPEC id and severity, and — when a `TreeState`'s triggered set is
//! supplied — highlighting the live attack path.

use crate::attack_tree::{AttackNode, AttackTree};
use sesame_types::events::Severity;
use std::collections::HashSet;
use std::fmt::Write as _;

/// Renders the tree as a Graphviz `digraph`. Leaves in `triggered` are
/// filled red; gates whose condition is satisfied by `triggered` are
/// outlined red.
///
/// # Examples
///
/// ```
/// use sesame_security::catalog;
/// use sesame_security::export::to_dot;
/// use std::collections::HashSet;
///
/// let tree = catalog::ros_message_spoofing();
/// let dot = to_dot(&tree, &HashSet::new());
/// assert!(dot.contains("CAPEC-148"));
/// ```
pub fn to_dot(tree: &AttackTree, triggered: &HashSet<String>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&tree.name));
    let _ = writeln!(out, "  rankdir=BT;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
    let mut counter = 0usize;
    walk(&tree.root, triggered, &mut out, &mut counter);
    out.push_str("}\n");
    out
}

fn satisfied(node: &AttackNode, triggered: &HashSet<String>) -> bool {
    match node {
        AttackNode::Leaf(l) => triggered.contains(&l.id),
        AttackNode::And { children, .. } => children.iter().all(|c| satisfied(c, triggered)),
        AttackNode::Or { children, .. } => children.iter().any(|c| satisfied(c, triggered)),
    }
}

fn walk(
    node: &AttackNode,
    triggered: &HashSet<String>,
    out: &mut String,
    counter: &mut usize,
) -> String {
    let id = format!("a{}", *counter);
    *counter += 1;
    match node {
        AttackNode::Leaf(l) => {
            let fill = if triggered.contains(&l.id) {
                ", style=filled, fillcolor=\"#ffb3b3\""
            } else {
                ""
            };
            let sev = match l.severity {
                Severity::Info => "info",
                Severity::Warning => "warning",
                Severity::Critical => "critical",
                Severity::Emergency => "emergency",
            };
            let _ = writeln!(
                out,
                "  {id} [shape=ellipse{fill}, label=\"{}\\n{} / {sev}\"];",
                escape(&l.title),
                escape(&l.capec_id)
            );
        }
        AttackNode::And { title, children } | AttackNode::Or { title, children } => {
            let gate = if matches!(node, AttackNode::And { .. }) {
                "AND"
            } else {
                "OR"
            };
            let outline = if satisfied(node, triggered) {
                ", color=red, penwidth=2"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {id} [shape=box{outline}, label=\"{gate}: {}\"];",
                escape(title)
            );
            for c in children {
                let child = walk(c, triggered, out, counter);
                let _ = writeln!(out, "  {child} -> {id};");
            }
        }
    }
    id
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn quiet_tree_has_no_highlights() {
        let dot = to_dot(&catalog::gps_spoofing(), &HashSet::new());
        assert!(!dot.contains("fillcolor"));
        assert!(!dot.contains("penwidth"));
        assert!(dot.contains("CAPEC-627"));
        assert!(dot.contains("emergency") || dot.contains("critical"));
    }

    #[test]
    fn triggered_leaves_and_satisfied_gates_highlight() {
        let tree = catalog::ros_message_spoofing();
        let mut triggered = HashSet::new();
        triggered.insert("unsigned_publisher".to_string());
        triggered.insert("waypoint_deviation".to_string());
        let dot = to_dot(&tree, &triggered);
        assert_eq!(dot.matches("fillcolor").count(), 2);
        // Both the OR entry gate and the AND root are satisfied.
        assert_eq!(dot.matches("penwidth").count(), 2);
    }

    #[test]
    fn edge_direction_is_leaf_to_root() {
        // rankdir=BT with child -> parent edges: leaves at the bottom.
        let dot = to_dot(&catalog::replay_dos(), &HashSet::new());
        assert!(dot.contains("rankdir=BT"));
        assert!(dot.matches("->").count() >= 2);
    }
}
