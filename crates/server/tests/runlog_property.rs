//! Property tests of the event-sourced run log: for arbitrary record
//! sequences, append → reopen round-trips exactly; any truncated tail
//! or flipped byte is detected by the digest chain (or the framing);
//! and replaying from a torn log fails with a typed error instead of
//! producing a wrong answer. `SESAME_FUZZ_CASES` scales the case count
//! (default 64).

use proptest::collection::vec;
use proptest::prelude::*;
use sesame_server::log::{genesis_chain, read_all, Record, RunLog};
use sesame_server::{replay_offline, JobId, LogError, ServerError};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn cases() -> u32 {
    std::env::var("SESAME_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn config() -> ProptestConfig {
    ProptestConfig::with_cases(cases())
}

/// A unique temp path per generated case so cases never race each
/// other (or a parallel test binary).
fn tmp_path() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "sesame-runlog-prop-{}-{n}.runlog",
        std::process::id()
    ));
    p
}

/// Strings mixing ASCII, multi-byte UTF-8 and the empty string; record
/// payloads are length-prefixed in *bytes*, so content must never
/// confuse the framing.
fn small_string() -> impl Strategy<Value = String> {
    vec(
        prop_oneof![
            (32u32..127).prop_map(|c| char::from_u32(c).unwrap()),
            Just('λ'),
            Just('✈'),
            Just('\n'),
        ],
        0usize..24,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn record() -> impl Strategy<Value = Record> {
    prop_oneof![
        (
            0u64..1_000_000,
            small_string(),
            small_string(),
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX,
        )
            .prop_map(|(job, name, source, seed_start, seed_count, clamp_ms)| {
                Record::JobSubmitted {
                    job,
                    name,
                    source,
                    seed_start,
                    seed_count,
                    clamp_ms,
                }
            }),
        (
            0u64..1_000_000,
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX
        )
            .prop_map(|(job, seed, ticks, digest)| Record::RunCompleted {
                job,
                seed,
                ticks,
                digest,
            }),
        (0u64..1_000_000).prop_map(|job| Record::JobFinished { job }),
    ]
}

/// Writes `records` to a fresh log at `path`, splitting the appends
/// into two process lives at index `reopen_at` (when in range).
fn write_log(path: &PathBuf, records: &[Record], reopen_at: usize) {
    std::fs::remove_file(path).ok();
    let mut log = RunLog::create(path).expect("create");
    for (i, r) in records.iter().enumerate() {
        if i == reopen_at && i > 0 {
            drop(log);
            let (reopened, seen) = RunLog::open(path).expect("reopen mid-write");
            assert_eq!(seen.len(), i, "reopen sees every record so far");
            log = reopened;
        }
        log.append(r).expect("append");
    }
}

proptest! {
    #![proptest_config(config())]

    /// Append → reopen round-trips the exact record sequence and the
    /// chain digest, no matter where a process restart splits the
    /// appends.
    #[test]
    fn append_reopen_roundtrip(records in vec(record(), 0usize..20), split in 0usize..20) {
        let path = tmp_path();
        let reopen_at = split.min(records.len());
        write_log(&path, &records, reopen_at);
        let read = read_all(&path).expect("verified read");
        prop_assert_eq!(&read, &records);
        // A second reopen agrees with the forward scan's chain.
        let (log, again) = RunLog::open(&path).expect("open");
        prop_assert_eq!(&again, &records);
        let chain = log.chain();
        drop(log);
        let (log2, _) = RunLog::open(&path).expect("open twice");
        prop_assert_eq!(log2.chain(), chain);
        if records.is_empty() {
            prop_assert_eq!(chain, genesis_chain());
        }
        std::fs::remove_file(&path).ok();
    }

    /// Chopping any suffix off a non-empty log is refused as a
    /// truncated tail (or, if the cut lands exactly on a frame
    /// boundary, yields a bit-identical strict prefix — never a wrong
    /// record).
    #[test]
    fn truncated_tail_is_detected(records in vec(record(), 1usize..12), cut in 1usize..64) {
        let path = tmp_path();
        write_log(&path, &records, 0);
        let bytes = std::fs::read(&path).unwrap();
        let cut = cut.min(bytes.len() - 1).max(1);
        std::fs::write(&path, &bytes[..bytes.len() - cut]).unwrap();
        match read_all(&path) {
            Err(LogError::Truncated { records: seen, .. }) => {
                prop_assert!((seen as usize) < records.len());
            }
            Ok(prefix) => {
                prop_assert!(prefix.len() < records.len());
                prop_assert_eq!(&prefix[..], &records[..prefix.len()]);
            }
            Err(other) => {
                // A cut through a length field can read as an oversized
                // or malformed frame — still a typed refusal, never
                // silent data loss.
                prop_assert!(matches!(
                    other,
                    LogError::Oversized { .. } | LogError::Malformed { .. }
                ));
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Flipping any single bit anywhere in the file is caught by the
    /// digest chain or the framing — corrupt history is never returned
    /// as valid.
    #[test]
    fn flipped_bit_is_detected(records in vec(record(), 1usize..10), pos in 0usize..1_000_000, bit in 0u8..8) {
        let path = tmp_path();
        write_log(&path, &records, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = pos % bytes.len();
        bytes[idx] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        prop_assert!(
            read_all(&path).is_err(),
            "corrupting byte {} of {} went undetected",
            idx,
            bytes.len()
        );
        std::fs::remove_file(&path).ok();
    }

    /// Replaying from a torn log fails with the typed log error — the
    /// audit path refuses corrupt evidence before simulating anything.
    #[test]
    fn replay_from_torn_log_fails_cleanly(cut in 1usize..32) {
        let path = tmp_path();
        let records = vec![
            Record::JobSubmitted {
                job: 1,
                name: "torn".into(),
                source: "scenario \"torn\" { world { area = (60.0, 40.0), persons = 1 } }".into(),
                seed_start: 0,
                seed_count: 1,
                clamp_ms: 5_000,
            },
            Record::RunCompleted { job: 1, seed: 0, ticks: 50, digest: 0xDEAD },
        ];
        write_log(&path, &records, 0);
        let bytes = std::fs::read(&path).unwrap();
        let cut = cut.min(bytes.len() - 1);
        std::fs::write(&path, &bytes[..bytes.len() - cut]).unwrap();
        match replay_offline(&path, JobId(1), 0) {
            Err(ServerError::Log(_)) => {}
            // A frame-aligned cut drops exactly the RunCompleted
            // record; replay then refuses because there is nothing to
            // verify against.
            Err(ServerError::RunNotCompleted { .. }) => {}
            other => prop_assert!(false, "torn log replay produced {:?}", other),
        }
        std::fs::remove_file(&path).ok();
    }
}
