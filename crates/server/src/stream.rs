//! Zero-copy event streaming to any number of subscribers.
//!
//! The delivery substrate follows the bus fast path from
//! `sesame-middleware` (PR 4): an event is allocated **once** behind an
//! [`Arc`], and fanout hands each subscriber a refcount bump, never a
//! copy. Subscribers that lag get events dropped (bounded per-subscriber
//! queues, drop counters kept) rather than back-pressuring the workers —
//! the live run is authoritative and fully reconstructable from the run
//! log, so a stream is a best-effort tail, not a second source of truth.

use crate::job::JobId;
use sesame_obs::MetricsDelta;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

/// Queue depth per subscriber before events are dropped.
pub const SUBSCRIBER_QUEUE: usize = 1024;

/// What the service streams: job lifecycle transitions, periodic
/// platform snapshots, and obs-metrics deltas
/// ([`sesame_obs::MetricsSnapshot::delta_since`]) instead of whole
/// snapshots.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// A submission was accepted.
    JobQueued {
        /// The new job.
        job: JobId,
        /// Its declared scenario name.
        name: String,
        /// Seeds it will sweep.
        seed_count: u64,
    },
    /// A worker picked up one seed.
    RunStarted {
        /// The owning job.
        job: JobId,
        /// The seed now running.
        seed: u64,
    },
    /// A periodic snapshot of the running platform (compact projection
    /// of `Platform` state at the streaming cadence).
    Snapshot {
        /// The owning job.
        job: JobId,
        /// The seed being run.
        seed: u64,
        /// Closed-loop ticks so far.
        tick: u64,
        /// Simulation time, milliseconds.
        time_ms: u64,
        /// Mission completion fraction.
        completion: f64,
        /// De-duplicated persons found so far.
        persons_found: usize,
    },
    /// The obs metrics that changed since the previous snapshot.
    Metrics {
        /// The owning job.
        job: JobId,
        /// The seed being run.
        seed: u64,
        /// Closed-loop ticks so far.
        tick: u64,
        /// Changed counters (increments) and gauges (new values).
        delta: MetricsDelta,
    },
    /// One seed finished; `chain` is the run log's whole-history digest
    /// after this run was appended.
    RunCompleted {
        /// The owning job.
        job: JobId,
        /// The finished seed.
        seed: u64,
        /// Ticks the run took.
        ticks: u64,
        /// The end-of-run conformance digest.
        digest: u64,
        /// The log's chain digest after appending this run.
        chain: u64,
    },
    /// Every seed of the job completed.
    JobCompleted {
        /// The finished job.
        job: JobId,
        /// Total completed runs (including recovered ones).
        runs: u64,
    },
    /// The job failed; completed runs stay replayable.
    JobFailed {
        /// The failed job.
        job: JobId,
        /// Why, single line.
        error: String,
    },
}

impl StreamEvent {
    /// The job this event belongs to.
    pub fn job(&self) -> JobId {
        match self {
            StreamEvent::JobQueued { job, .. }
            | StreamEvent::RunStarted { job, .. }
            | StreamEvent::Snapshot { job, .. }
            | StreamEvent::Metrics { job, .. }
            | StreamEvent::RunCompleted { job, .. }
            | StreamEvent::JobCompleted { job, .. }
            | StreamEvent::JobFailed { job, .. } => *job,
        }
    }

    /// Whether this event terminates a per-job stream.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            StreamEvent::JobCompleted { .. } | StreamEvent::JobFailed { .. }
        )
    }

    /// The single-line wire rendering (`key=value` pairs; metric deltas
    /// inline as `name:+inc` / `name:=value`).
    pub fn render_line(&self) -> String {
        match self {
            StreamEvent::JobQueued {
                job,
                name,
                seed_count,
            } => format!("event=job_queued job={job} name={name} seeds={seed_count}"),
            StreamEvent::RunStarted { job, seed } => {
                format!("event=run_started job={job} seed={seed}")
            }
            StreamEvent::Snapshot {
                job,
                seed,
                tick,
                time_ms,
                completion,
                persons_found,
            } => format!(
                "event=snapshot job={job} seed={seed} tick={tick} t_ms={time_ms} \
                 completion={completion:.4} persons={persons_found}"
            ),
            StreamEvent::Metrics {
                job,
                seed,
                tick,
                delta,
            } => {
                let mut line = format!(
                    "event=metrics job={job} seed={seed} tick={tick} changed={}",
                    delta.len()
                );
                for (k, v) in &delta.counters {
                    let _ = write!(line, " {k}:+{v}");
                }
                for (k, v) in &delta.gauges {
                    let _ = write!(line, " {k}:={v}");
                }
                line
            }
            StreamEvent::RunCompleted {
                job,
                seed,
                ticks,
                digest,
                chain,
            } => format!(
                "event=run_completed job={job} seed={seed} ticks={ticks} \
                 digest={digest:#018x} chain={chain:#018x}"
            ),
            StreamEvent::JobCompleted { job, runs } => {
                format!("event=job_completed job={job} runs={runs}")
            }
            StreamEvent::JobFailed { job, error } => {
                format!(
                    "event=job_failed job={job} error={}",
                    error.replace('\n', " | ")
                )
            }
        }
    }
}

struct Subscriber {
    /// `None` subscribes to every job.
    job: Option<JobId>,
    tx: SyncSender<Arc<StreamEvent>>,
}

/// The multi-subscriber fanout. Publishing takes one allocation (the
/// `Arc`) regardless of subscriber count; a subscriber is a bounded
/// queue that is dropped from the registry when its receiver goes away.
#[derive(Default)]
pub struct Fanout {
    subs: Mutex<Vec<Subscriber>>,
    dropped: AtomicU64,
    delivered: AtomicU64,
}

impl Fanout {
    /// A fanout with no subscribers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a subscriber for one job (or all jobs with `None`) and
    /// returns the receiving end of its queue.
    pub fn subscribe(&self, job: Option<JobId>) -> Receiver<Arc<StreamEvent>> {
        let (tx, rx) = sync_channel(SUBSCRIBER_QUEUE);
        self.subs.lock().unwrap().push(Subscriber { job, tx });
        rx
    }

    /// Whether anyone is listening to `job` right now — workers skip
    /// building snapshot/delta events entirely when nobody is.
    pub fn has_subscribers(&self, job: JobId) -> bool {
        self.subs
            .lock()
            .unwrap()
            .iter()
            .any(|s| s.job.is_none() || s.job == Some(job))
    }

    /// Delivers `event` to every matching subscriber: one `Arc` clone
    /// each, drop-on-full, unsubscribe-on-disconnect.
    pub fn publish(&self, event: StreamEvent) {
        let event = Arc::new(event);
        let job = event.job();
        let mut subs = self.subs.lock().unwrap();
        subs.retain(|s| {
            if s.job.is_some() && s.job != Some(job) {
                return true;
            }
            match s.tx.try_send(Arc::clone(&event)) {
                Ok(()) => {
                    self.delivered.fetch_add(1, Ordering::Relaxed);
                    true
                }
                Err(TrySendError::Full(_)) => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    true
                }
                Err(TrySendError::Disconnected(_)) => false,
            }
        });
    }

    /// Events delivered across all subscribers so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Events dropped on full subscriber queues so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(job: u64, seed: u64) -> StreamEvent {
        StreamEvent::RunStarted {
            job: JobId(job),
            seed,
        }
    }

    #[test]
    fn fanout_delivers_one_arc_to_each_matching_subscriber() {
        let fanout = Fanout::new();
        let all = fanout.subscribe(None);
        let only_two = fanout.subscribe(Some(JobId(2)));
        fanout.publish(ev(1, 0));
        fanout.publish(ev(2, 0));
        let first = all.try_recv().unwrap();
        let second = all.try_recv().unwrap();
        assert_eq!(first.job(), JobId(1));
        assert_eq!(second.job(), JobId(2));
        let filtered = only_two.try_recv().unwrap();
        assert_eq!(filtered.job(), JobId(2));
        assert!(only_two.try_recv().is_err());
        // The filtered subscriber shares the very allocation the
        // unfiltered one got — fanout never deep-copies.
        assert!(Arc::ptr_eq(&second, &filtered));
        assert_eq!(fanout.delivered(), 3);
    }

    #[test]
    fn disconnected_subscribers_are_pruned_and_full_queues_drop() {
        let fanout = Fanout::new();
        let rx = fanout.subscribe(None);
        drop(rx);
        fanout.publish(ev(1, 0));
        assert!(!fanout.has_subscribers(JobId(1)));
        let _rx = fanout.subscribe(Some(JobId(1)));
        for seed in 0..(SUBSCRIBER_QUEUE as u64 + 5) {
            fanout.publish(ev(1, seed));
        }
        assert_eq!(fanout.dropped(), 5);
    }

    #[test]
    fn wire_lines_are_single_line_and_carry_deltas() {
        let mut delta = MetricsDelta::default();
        delta.counters.insert("bus.published".into(), 12);
        delta.gauges.insert("queue.depth".into(), 2.0);
        let line = StreamEvent::Metrics {
            job: JobId(3),
            seed: 7,
            tick: 40,
            delta,
        }
        .render_line();
        assert!(line.contains("changed=2"));
        assert!(line.contains("bus.published:+12"));
        assert!(line.contains("queue.depth:=2"));
        assert!(!line.contains('\n'));
    }
}
