//! The event-sourced run log — the campaign service's persistent,
//! auditable record and its replay store.
//!
//! Every state change the service must survive a restart with is an
//! appended [`Record`]: a submission (with the full `.sesame` source
//! text, so replay needs nothing but the log), a completed seed run
//! (with its conformance digest), or a finished job. The log is
//! **append-only**: nothing is ever rewritten, and recovery is a single
//! forward scan.
//!
//! # Framing and the digest chain
//!
//! Each record is framed as
//!
//! ```text
//! [u32 len (LE)] [len payload bytes] [u64 chain digest (LE)]
//! ```
//!
//! where the chain digest is FNV-1a (the same
//! [`sesame_core::checkpoint::Fnv`] discipline every conformance digest
//! in the workspace uses) over the payload bytes, **seeded with the
//! previous record's chain digest**. The chain makes the log
//! tamper-evident end to end: flipping any byte of any payload breaks
//! that record's digest *and* every digest after it, and truncating at
//! a non-record boundary is detected by the framing. The final chain
//! value is therefore a digest of the entire history, cheap to compare
//! across replicas or audits.
//!
//! # Reading
//!
//! [`RunLog::open`] verifies the whole chain and returns the records
//! alongside a writer positioned for append; [`read_all`] is the
//! read-only flavor. Both fail with a typed [`LogError`] on the first
//! corrupt byte — a torn log never yields partial silently-wrong
//! history, which is what lets replay "fail cleanly" on corruption.

use sesame_core::checkpoint::Fnv;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Upper bound on a single record's payload, guarding the reader from
/// allocating gigabytes when a corrupt length field is read.
pub const MAX_RECORD_LEN: u32 = 1 << 24;

/// The chain seed before any record exists (the FNV-1a offset basis).
pub fn genesis_chain() -> u64 {
    Fnv::new().finish()
}

/// One persisted event. The log stores everything needed to rebuild the
/// service's job table and to replay any completed run bit-identically:
/// sources travel in the submission record, digests in the completion
/// records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A campaign was accepted: the scenario source text (compiled and
    /// validated before this record was written), the seed range, and
    /// the optional deadline clamp in milliseconds (0 = none) that the
    /// service applies before running — replay re-applies it, so the
    /// clamp is part of the persisted description, not ambient config.
    JobSubmitted {
        /// The service-assigned job id.
        job: u64,
        /// The scenario's declared name.
        name: String,
        /// The full `.sesame` submission text.
        source: String,
        /// First seed of the campaign's range.
        seed_start: u64,
        /// Number of seeds in the range.
        seed_count: u64,
        /// Deadline clamp in milliseconds; 0 means "as declared".
        clamp_ms: u64,
    },
    /// One seed of a campaign ran to completion with this conformance
    /// digest ([`sesame_core::checkpoint::digest_platform`]).
    RunCompleted {
        /// The owning job.
        job: u64,
        /// The seed that ran.
        seed: u64,
        /// Closed-loop ticks the run took.
        ticks: u64,
        /// The end-of-run platform digest replay must reproduce.
        digest: u64,
    },
    /// Every seed of the job has a [`Record::RunCompleted`] entry.
    JobFinished {
        /// The finished job.
        job: u64,
    },
}

impl Record {
    /// Serializes the record payload (no framing, no chain).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Record::JobSubmitted {
                job,
                name,
                source,
                seed_start,
                seed_count,
                clamp_ms,
            } => {
                out.push(1u8);
                put_u64(&mut out, *job);
                put_str(&mut out, name);
                put_str(&mut out, source);
                put_u64(&mut out, *seed_start);
                put_u64(&mut out, *seed_count);
                put_u64(&mut out, *clamp_ms);
            }
            Record::RunCompleted {
                job,
                seed,
                ticks,
                digest,
            } => {
                out.push(2u8);
                put_u64(&mut out, *job);
                put_u64(&mut out, *seed);
                put_u64(&mut out, *ticks);
                put_u64(&mut out, *digest);
            }
            Record::JobFinished { job } => {
                out.push(3u8);
                put_u64(&mut out, *job);
            }
        }
        out
    }

    /// Deserializes a payload produced by [`Record::encode`]. `seq` only
    /// labels the error.
    pub fn decode(payload: &[u8], seq: u64) -> Result<Record, LogError> {
        let mut c = Cursor { buf: payload, seq };
        let record = match c.u8()? {
            1 => Record::JobSubmitted {
                job: c.u64()?,
                name: c.string()?,
                source: c.string()?,
                seed_start: c.u64()?,
                seed_count: c.u64()?,
                clamp_ms: c.u64()?,
            },
            2 => Record::RunCompleted {
                job: c.u64()?,
                seed: c.u64()?,
                ticks: c.u64()?,
                digest: c.u64()?,
            },
            3 => Record::JobFinished { job: c.u64()? },
            tag => {
                return Err(LogError::Malformed {
                    seq,
                    reason: format!("unknown record tag {tag}"),
                })
            }
        };
        if !c.buf.is_empty() {
            return Err(LogError::Malformed {
                seq,
                reason: format!("{} trailing payload byte(s)", c.buf.len()),
            });
        }
        Ok(record)
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked payload reader.
struct Cursor<'a> {
    buf: &'a [u8],
    seq: u64,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], LogError> {
        if self.buf.len() < n {
            return Err(LogError::Malformed {
                seq: self.seq,
                reason: format!("payload needs {n} more byte(s), has {}", self.buf.len()),
            });
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, LogError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, LogError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, LogError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, LogError> {
        let len = self.u32()? as usize;
        let seq = self.seq;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| LogError::Malformed {
            seq,
            reason: "string field is not UTF-8".into(),
        })
    }
}

/// Why a log could not be read or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// An underlying filesystem error.
    Io(String),
    /// The file ends inside a record frame — a torn tail. `records`
    /// whole records were read before the tear at byte `offset`.
    Truncated {
        /// Count of intact records before the tear.
        records: u64,
        /// Byte offset where the torn frame starts.
        offset: u64,
    },
    /// A record's chain digest does not match the recomputation — some
    /// byte of this record (or an earlier digest) was altered.
    ChainMismatch {
        /// Zero-based index of the corrupt record.
        seq: u64,
        /// The digest stored in the file.
        stored: u64,
        /// The digest recomputed over the payload.
        computed: u64,
    },
    /// A payload failed structural decoding.
    Malformed {
        /// Zero-based index of the corrupt record.
        seq: u64,
        /// What was wrong.
        reason: String,
    },
    /// A length field exceeded [`MAX_RECORD_LEN`].
    Oversized {
        /// Zero-based index of the corrupt record.
        seq: u64,
        /// The claimed payload length.
        len: u32,
    },
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "run log I/O error: {e}"),
            LogError::Truncated { records, offset } => write!(
                f,
                "run log torn at byte {offset}: {records} intact record(s), then a partial frame"
            ),
            LogError::ChainMismatch {
                seq,
                stored,
                computed,
            } => write!(
                f,
                "run log record {seq} fails the digest chain: stored {stored:#018x}, \
                 recomputed {computed:#018x}"
            ),
            LogError::Malformed { seq, reason } => {
                write!(f, "run log record {seq} is malformed: {reason}")
            }
            LogError::Oversized { seq, len } => write!(
                f,
                "run log record {seq} claims a {len}-byte payload (limit {MAX_RECORD_LEN})"
            ),
        }
    }
}

impl std::error::Error for LogError {}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e.to_string())
    }
}

/// The append-side handle: an open file positioned at the verified end
/// of the log, carrying the running chain digest.
#[derive(Debug)]
pub struct RunLog {
    writer: BufWriter<File>,
    path: PathBuf,
    chain: u64,
    records: u64,
}

impl RunLog {
    /// Creates an empty log at `path`, truncating anything there.
    pub fn create(path: impl AsRef<Path>) -> Result<RunLog, LogError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(RunLog {
            writer: BufWriter::new(file),
            path,
            chain: genesis_chain(),
            records: 0,
        })
    }

    /// Opens an existing log, verifying the full digest chain, and
    /// returns the records plus a writer positioned for append. Any
    /// corruption — torn tail, flipped byte, bad structure — fails the
    /// open; an event-sourced store must never resume on top of history
    /// it cannot vouch for.
    pub fn open(path: impl AsRef<Path>) -> Result<(RunLog, Vec<Record>), LogError> {
        let path = path.as_ref().to_path_buf();
        let records = read_all(&path)?;
        let mut chain = genesis_chain();
        for r in &records {
            chain = chain_digest(chain, &r.encode());
        }
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok((
            RunLog {
                writer: BufWriter::new(file),
                path,
                chain,
                records: records.len() as u64,
            },
            records,
        ))
    }

    /// Appends one record and flushes it to the OS, returning the new
    /// chain digest (a digest of the entire history so far).
    pub fn append(&mut self, record: &Record) -> Result<u64, LogError> {
        let payload = record.encode();
        debug_assert!(payload.len() as u32 <= MAX_RECORD_LEN);
        self.chain = chain_digest(self.chain, &payload);
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&payload)?;
        self.writer.write_all(&self.chain.to_le_bytes())?;
        self.writer.flush()?;
        self.records += 1;
        Ok(self.chain)
    }

    /// The digest over the entire appended history.
    pub fn chain(&self) -> u64 {
        self.chain
    }

    /// How many records the log holds.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The file backing this log.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The chaining step: FNV-1a over `payload`, seeded with the previous
/// chain digest.
pub fn chain_digest(prev: u64, payload: &[u8]) -> u64 {
    let mut h = Fnv::resume(prev);
    h.bytes(payload);
    h.finish()
}

/// Reads and verifies every record of the log at `path` without opening
/// it for append — the read side used by recovery scans and replay.
pub fn read_all(path: impl AsRef<Path>) -> Result<Vec<Record>, LogError> {
    let mut bytes = Vec::new();
    File::open(path.as_ref())?.read_to_end(&mut bytes)?;
    let mut records = Vec::new();
    let mut chain = genesis_chain();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let seq = records.len() as u64;
        let frame_start = offset as u64;
        let torn = |records: &Vec<Record>| LogError::Truncated {
            records: records.len() as u64,
            offset: frame_start,
        };
        if bytes.len() - offset < 4 {
            return Err(torn(&records));
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            return Err(LogError::Oversized { seq, len });
        }
        offset += 4;
        let len = len as usize;
        if bytes.len() - offset < len + 8 {
            return Err(torn(&records));
        }
        let payload = &bytes[offset..offset + len];
        offset += len;
        let stored = u64::from_le_bytes(bytes[offset..offset + 8].try_into().unwrap());
        offset += 8;
        let computed = chain_digest(chain, payload);
        if stored != computed {
            return Err(LogError::ChainMismatch {
                seq,
                stored,
                computed,
            });
        }
        records.push(Record::decode(payload, seq)?);
        chain = computed;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sesame-runlog-{}-{name}.log", std::process::id()));
        p
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::JobSubmitted {
                job: 1,
                name: "demo".into(),
                source: "scenario \"demo\" { mission { deadline = 10s } }\n".into(),
                seed_start: 0,
                seed_count: 2,
                clamp_ms: 5_000,
            },
            Record::RunCompleted {
                job: 1,
                seed: 0,
                ticks: 100,
                digest: 0xdead_beef,
            },
            Record::RunCompleted {
                job: 1,
                seed: 1,
                ticks: 100,
                digest: 0xfeed_face,
            },
            Record::JobFinished { job: 1 },
        ]
    }

    #[test]
    fn append_reopen_round_trips() {
        let path = tmp("roundtrip");
        let mut log = RunLog::create(&path).unwrap();
        for r in sample_records() {
            log.append(&r).unwrap();
        }
        let final_chain = log.chain();
        drop(log);
        let (reopened, records) = RunLog::open(&path).unwrap();
        assert_eq!(records, sample_records());
        assert_eq!(reopened.chain(), final_chain);
        assert_eq!(reopened.records(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_after_reopen_continues_the_chain() {
        let path = tmp("continue");
        let mut log = RunLog::create(&path).unwrap();
        log.append(&sample_records()[0]).unwrap();
        drop(log);
        let (mut log, _) = RunLog::open(&path).unwrap();
        log.append(&sample_records()[1]).unwrap();
        let (_, records) = RunLog::open(&path).unwrap();
        assert_eq!(records.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_byte_breaks_the_chain() {
        let path = tmp("flip");
        let mut log = RunLog::create(&path).unwrap();
        for r in sample_records() {
            log.append(&r).unwrap();
        }
        drop(log);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match read_all(&path) {
            Err(LogError::ChainMismatch { .. })
            | Err(LogError::Malformed { .. })
            | Err(LogError::Oversized { .. })
            | Err(LogError::Truncated { .. }) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_detected() {
        let path = tmp("tear");
        let mut log = RunLog::create(&path).unwrap();
        for r in sample_records() {
            log.append(&r).unwrap();
        }
        drop(log);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        match read_all(&path) {
            Err(LogError::Truncated { records, .. }) => assert_eq!(records, 3),
            other => panic!("expected Truncated, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chain_digest_is_order_sensitive() {
        let a = chain_digest(chain_digest(genesis_chain(), b"one"), b"two");
        let b = chain_digest(chain_digest(genesis_chain(), b"two"), b"one");
        assert_ne!(a, b);
    }
}
