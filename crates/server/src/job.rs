//! Campaign jobs: the submission unit and its observable lifecycle.
//!
//! A *job* is one campaign — a `.sesame` scenario source plus a seed
//! range — and decomposes into one *run* per seed. Runs are the
//! scheduling grain: the runtime's workers pull `(job, seed)` units off
//! one queue, so many campaigns multiplex over the same pool and a
//! large campaign never head-of-line-blocks a small one.

use sesame_scenario_dsl::{CompiledScenario, Compiler};
use sesame_types::time::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// A service-assigned campaign identifier, unique for the lifetime of
/// the run log (ids keep growing across restarts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// What a client submits: a scenario source, the seed range to sweep,
/// and an optional deadline clamp. The clamp is part of the submission
/// (and of the persisted log record), not server configuration — replay
/// must re-apply exactly what ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// A label for diagnostics; the compiled scenario's declared name
    /// is authoritative.
    pub name: String,
    /// The full `.sesame` source text.
    pub source: String,
    /// First seed of the sweep.
    pub seed_start: u64,
    /// How many consecutive seeds to run (≥ 1).
    pub seed_count: u64,
    /// Clamp the scenario deadline to this many milliseconds (0 = run
    /// as declared).
    pub clamp_ms: u64,
}

impl JobSpec {
    /// A spec over `source` sweeping `seed_start..seed_start+seed_count`.
    pub fn new(
        name: impl Into<String>,
        source: impl Into<String>,
        seed_start: u64,
        seed_count: u64,
    ) -> Self {
        JobSpec {
            name: name.into(),
            source: source.into(),
            seed_start,
            seed_count,
            clamp_ms: 0,
        }
    }

    /// Sets the deadline clamp.
    pub fn clamp_ms(mut self, ms: u64) -> Self {
        self.clamp_ms = ms;
        self
    }

    /// The seeds this campaign sweeps, in run order.
    pub fn seeds(&self) -> impl Iterator<Item = u64> {
        self.seed_start..self.seed_start.saturating_add(self.seed_count)
    }

    /// Compiles and validates the submission, applying the clamp. This
    /// is the only path from a spec to something runnable — submission
    /// and restart recovery both go through it, so a spec that was
    /// accepted once always recompiles the same way (DSL compilation is
    /// pure).
    pub fn compile(&self) -> Result<CompiledScenario, String> {
        if self.seed_count == 0 {
            return Err("a campaign must sweep at least one seed".into());
        }
        let compiled = Compiler::new()
            .compile_str(&self.name, &self.source)
            .map_err(|e| e.render())?;
        let first = compiled
            .into_iter()
            .next()
            .ok_or_else(|| "the submission declares no scenario".to_string())?;
        Ok(if self.clamp_ms > 0 {
            first.with_deadline_clamped(SimTime::from_millis(self.clamp_ms))
        } else {
            first
        })
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and logged; no run has started yet.
    Queued,
    /// At least one run started; not all have completed.
    Running,
    /// Every seed has a logged, digest-carrying run.
    Completed,
    /// A run panicked or the job could not be recovered; the message
    /// says why. Failed jobs keep their completed runs replayable.
    Failed(String),
}

impl JobState {
    /// One lowercase word for wire rendering.
    pub fn word(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed(_) => "failed",
        }
    }
}

/// One completed run's persisted facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunFact {
    /// Closed-loop ticks the run took.
    pub ticks: u64,
    /// The end-of-run conformance digest.
    pub digest: u64,
}

/// A point-in-time view of a job, cheap to copy out of the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// The job's id.
    pub id: JobId,
    /// The scenario's declared name.
    pub name: String,
    /// Lifecycle state.
    pub state: JobState,
    /// First seed of the sweep.
    pub seed_start: u64,
    /// Seeds in the sweep.
    pub seed_count: u64,
    /// Completed runs, including recovered ones.
    pub completed_runs: u64,
    /// Runs completed by a *previous* process life and recovered from
    /// the log at startup.
    pub recovered_runs: u64,
    /// Digest per completed seed.
    pub digests: BTreeMap<u64, RunFact>,
}

impl JobStatus {
    /// The one-line wire rendering `STATUS` returns.
    pub fn render_line(&self) -> String {
        let mut line = format!(
            "{} state={} name={} seeds={}..{} runs={}/{} recovered={}",
            self.id,
            self.state.word(),
            self.name,
            self.seed_start,
            self.seed_start + self.seed_count,
            self.completed_runs,
            self.seed_count,
            self.recovered_runs,
        );
        if let JobState::Failed(reason) = &self.state {
            line.push_str(" error=");
            line.push_str(&reason.replace('\n', " | "));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
scenario "unit" {
    world { area = (60.0, 40.0), persons = 1 }
    mission { deadline = 120s }
}
"#;

    #[test]
    fn spec_compiles_and_clamps() {
        let spec = JobSpec::new("unit", SRC, 0, 2).clamp_ms(10_000);
        let compiled = spec.compile().expect("compiles");
        assert_eq!(compiled.name(), "unit");
        assert_eq!(compiled.deadline(), SimTime::from_secs(10));
        assert_eq!(spec.seeds().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn zero_seeds_and_bad_source_are_rejected() {
        assert!(JobSpec::new("z", SRC, 0, 0).compile().is_err());
        let err = JobSpec::new("bad", "scenario {", 0, 1)
            .compile()
            .unwrap_err();
        assert!(err.contains("error"), "diagnostic rendered: {err}");
    }

    #[test]
    fn status_line_is_single_line_even_for_multiline_errors() {
        let status = JobStatus {
            id: JobId(7),
            name: "x".into(),
            state: JobState::Failed("boom\nline2".into()),
            seed_start: 0,
            seed_count: 3,
            completed_runs: 1,
            recovered_runs: 0,
            digests: BTreeMap::new(),
        };
        let line = status.render_line();
        assert!(!line.contains('\n'));
        assert!(line.contains("state=failed"));
    }
}
