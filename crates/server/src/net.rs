//! The wire surface: a line-oriented TCP protocol over `std::net`.
//!
//! No async runtime, no framing library — requests are single lines
//! (`SUBMIT` carries a length-prefixed source body), responses start
//! with `ok` or `err`, and multi-record responses announce their line
//! count up front. One thread per connection; the accept loop polls a
//! nonblocking listener so [`Server::stop`] takes effect promptly.
//!
//! ```text
//! PING                                        → ok pong
//! SUBMIT <name> <seed_start> <count> <clamp_ms> <source_len>\n<source bytes>
//!                                             → ok job-N seeds=<count>
//! STATUS <job>                                → ok job-N state=... runs=...
//! WAIT <job>                                  → (blocks) ok job-N state=...
//! JOBS                                        → ok n=<k> then k status lines
//! REPLAY <job> <seed>                         → ok replay ... match=true|false
//! CHAIN                                       → ok chain=0x...
//! STREAM <job|all>                            → ok streaming, then event
//!                                               lines, then done
//! SHUTDOWN                                    → ok shutting-down
//! ```

use crate::job::{JobId, JobSpec, JobState};
use crate::runtime::ServerRuntime;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Longest accepted `SUBMIT` source body, matching the run log's frame
/// bound.
pub const MAX_SOURCE_LEN: usize = crate::log::MAX_RECORD_LEN as usize;

/// A listening front end over a [`ServerRuntime`]. Stopping the server
/// stops accepting connections; the runtime (and its workers) belong to
/// the caller and outlive the listener, so a front end can be torn down
/// and re-bound — e.g. on a new port after a simulated restart —
/// without touching in-flight campaigns.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `runtime`.
    pub fn bind(runtime: ServerRuntime, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_loop = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("sesame-server-accept".to_string())
            .spawn(move || loop {
                if stop_loop.load(Ordering::Acquire) {
                    return;
                }
                match listener.accept() {
                    Ok((conn, _peer)) => {
                        let runtime = runtime.clone();
                        let stop = Arc::clone(&stop_loop);
                        let _ = std::thread::Builder::new()
                            .name("sesame-server-conn".to_string())
                            .spawn(move || {
                                let _ = handle_conn(conn, runtime, stop);
                            });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            })?;
        Ok(Server {
            addr: local,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a stop was requested (by [`Server::stop`] or a wire
    /// `SHUTDOWN`); lets a serve loop block until told to exit.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Stops accepting connections and joins the accept loop. Existing
    /// connection threads finish their current request and exit on the
    /// next read.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn one_line(text: &str) -> String {
    text.replace('\n', " | ")
}

fn parse_job(token: &str) -> Option<JobId> {
    let raw = token.strip_prefix("job-").unwrap_or(token);
    raw.parse().ok().map(JobId)
}

fn handle_conn(conn: TcpStream, runtime: ServerRuntime, stop: Arc<AtomicBool>) -> io::Result<()> {
    let mut writer = conn.try_clone()?;
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let mut tokens = line.split_whitespace();
        let Some(cmd) = tokens.next() else { continue };
        match cmd.to_ascii_uppercase().as_str() {
            "PING" => writeln!(writer, "ok pong")?,
            "SUBMIT" => handle_submit(&mut reader, &mut writer, &runtime, &mut tokens)?,
            "STATUS" => match tokens.next().and_then(parse_job) {
                Some(id) => match runtime.status(id) {
                    Ok(status) => writeln!(writer, "ok {}", status.render_line())?,
                    Err(e) => writeln!(writer, "err {}", one_line(&e.to_string()))?,
                },
                None => writeln!(writer, "err usage: STATUS <job>")?,
            },
            "WAIT" => match tokens.next().and_then(parse_job) {
                Some(id) => match runtime.wait(id) {
                    Ok(status) => writeln!(writer, "ok {}", status.render_line())?,
                    Err(e) => writeln!(writer, "err {}", one_line(&e.to_string()))?,
                },
                None => writeln!(writer, "err usage: WAIT <job>")?,
            },
            "JOBS" => {
                let jobs = runtime.jobs();
                writeln!(writer, "ok n={}", jobs.len())?;
                for status in jobs {
                    writeln!(writer, "{}", status.render_line())?;
                }
            }
            "REPLAY" => {
                let id = tokens.next().and_then(parse_job);
                let seed = tokens.next().and_then(|t| t.parse::<u64>().ok());
                match (id, seed) {
                    (Some(id), Some(seed)) => match runtime.replay(id, seed) {
                        Ok(report) => writeln!(
                            writer,
                            "ok replay job={} seed={} match={} ticks={} digest={:#018x} \
                             logged_ticks={} logged_digest={:#018x}",
                            report.job,
                            report.seed,
                            report.matches(),
                            report.ticks,
                            report.digest,
                            report.logged.ticks,
                            report.logged.digest,
                        )?,
                        Err(e) => writeln!(writer, "err {}", one_line(&e.to_string()))?,
                    },
                    _ => writeln!(writer, "err usage: REPLAY <job> <seed>")?,
                }
            }
            "CHAIN" => writeln!(writer, "ok chain={:#018x}", runtime.chain())?,
            "STREAM" => {
                let target = match tokens.next() {
                    Some("all") | None => None,
                    Some(token) => match parse_job(token) {
                        Some(id) => Some(id),
                        None => {
                            writeln!(writer, "err usage: STREAM <job|all>")?;
                            continue;
                        }
                    },
                };
                stream_events(&mut writer, &runtime, &stop, target)?;
            }
            "SHUTDOWN" => {
                writeln!(writer, "ok shutting-down")?;
                stop.store(true, Ordering::Release);
                runtime.shutdown();
                return Ok(());
            }
            other => writeln!(writer, "err unknown command {other}")?,
        }
        writer.flush()?;
    }
}

fn handle_submit(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    runtime: &ServerRuntime,
    tokens: &mut std::str::SplitWhitespace<'_>,
) -> io::Result<()> {
    let name = tokens.next().map(str::to_string);
    let seed_start = tokens.next().and_then(|t| t.parse::<u64>().ok());
    let seed_count = tokens.next().and_then(|t| t.parse::<u64>().ok());
    let clamp_ms = tokens.next().and_then(|t| t.parse::<u64>().ok());
    let source_len = tokens.next().and_then(|t| t.parse::<usize>().ok());
    let (Some(name), Some(seed_start), Some(seed_count), Some(clamp_ms), Some(source_len)) =
        (name, seed_start, seed_count, clamp_ms, source_len)
    else {
        writeln!(
            writer,
            "err usage: SUBMIT <name> <seed_start> <count> <clamp_ms> <source_len>"
        )?;
        return Ok(());
    };
    if source_len > MAX_SOURCE_LEN {
        writeln!(writer, "err source exceeds {MAX_SOURCE_LEN} bytes")?;
        return Ok(());
    }
    let mut body = vec![0u8; source_len];
    reader.read_exact(&mut body)?;
    let Ok(source) = String::from_utf8(body) else {
        writeln!(writer, "err source is not valid UTF-8")?;
        return Ok(());
    };
    let spec = JobSpec::new(name, source, seed_start, seed_count).clamp_ms(clamp_ms);
    match runtime.submit(spec) {
        Ok(id) => writeln!(writer, "ok {id} seeds={seed_count}")?,
        Err(e) => writeln!(writer, "err {}", one_line(&e.to_string()))?,
    }
    Ok(())
}

/// Forwards fanout events as wire lines until the job's terminal event
/// (or, for `all`, until the client disconnects or the server stops).
fn stream_events(
    writer: &mut TcpStream,
    runtime: &ServerRuntime,
    stop: &AtomicBool,
    target: Option<JobId>,
) -> io::Result<()> {
    let rx = runtime.subscribe(target);
    writeln!(writer, "ok streaming")?;
    writer.flush()?;
    loop {
        if stop.load(Ordering::Acquire) {
            writeln!(writer, "done")?;
            return Ok(());
        }
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(event) => {
                writeln!(writer, "{}", event.render_line())?;
                if target.is_some() && event.is_terminal() {
                    writeln!(writer, "done")?;
                    writer.flush()?;
                    return Ok(());
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                // If a targeted job already reached a terminal state
                // before we subscribed, close the stream instead of
                // hanging forever.
                if let Some(id) = target {
                    match runtime.status(id) {
                        Ok(status)
                            if matches!(
                                status.state,
                                JobState::Completed | JobState::Failed(_)
                            ) =>
                        {
                            writeln!(writer, "done")?;
                            writer.flush()?;
                            return Ok(());
                        }
                        Err(_) => {
                            writeln!(writer, "done")?;
                            writer.flush()?;
                            return Ok(());
                        }
                        _ => {}
                    }
                }
                writer.flush()?;
            }
            Err(RecvTimeoutError::Disconnected) => {
                writeln!(writer, "done")?;
                return Ok(());
            }
        }
    }
}

/// A blocking protocol client: one connection, lock-step
/// request/response. Used by the CLI, the soak bench, and tests.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A parsed `STATUS`/`WAIT` response.
#[derive(Debug, Clone)]
pub struct WireStatus {
    /// The job's id.
    pub job: JobId,
    /// Lifecycle word: `queued`/`running`/`completed`/`failed`.
    pub state: String,
    /// `runs=<done>/<total>` as numbers.
    pub completed_runs: u64,
    /// Total seeds in the sweep.
    pub seed_count: u64,
    /// Runs recovered from the log at startup.
    pub recovered_runs: u64,
    /// The raw status line.
    pub line: String,
}

impl WireStatus {
    fn parse(line: &str) -> Result<WireStatus, String> {
        let mut tokens = line.split_whitespace();
        let job = tokens
            .next()
            .and_then(parse_job)
            .ok_or_else(|| format!("malformed status line: {line}"))?;
        let mut state = String::new();
        let mut completed_runs = 0;
        let mut seed_count = 0;
        let mut recovered_runs = 0;
        for token in tokens {
            if let Some(v) = token.strip_prefix("state=") {
                state = v.to_string();
            } else if let Some(v) = token.strip_prefix("runs=") {
                let (done, total) = v.split_once('/').unwrap_or((v, "0"));
                completed_runs = done.parse().unwrap_or(0);
                seed_count = total.parse().unwrap_or(0);
            } else if let Some(v) = token.strip_prefix("recovered=") {
                recovered_runs = v.parse().unwrap_or(0);
            }
        }
        Ok(WireStatus {
            job,
            state,
            completed_runs,
            seed_count,
            recovered_runs,
            line: line.to_string(),
        })
    }

    /// True when every seed completed.
    pub fn is_completed(&self) -> bool {
        self.state == "completed"
    }
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn roundtrip(&mut self, request: &str) -> Result<String, String> {
        writeln!(self.writer, "{request}").map_err(|e| e.to_string())?;
        self.writer.flush().map_err(|e| e.to_string())?;
        self.read_ok()
    }

    fn read_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed".to_string());
        }
        Ok(line.trim_end().to_string())
    }

    fn read_ok(&mut self) -> Result<String, String> {
        let line = self.read_line()?;
        if let Some(rest) = line.strip_prefix("ok") {
            Ok(rest.trim_start().to_string())
        } else if let Some(rest) = line.strip_prefix("err") {
            Err(rest.trim_start().to_string())
        } else {
            Err(format!("malformed response: {line}"))
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), String> {
        self.roundtrip("PING").map(|_| ())
    }

    /// Submits a campaign; returns its id.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<JobId, String> {
        let name = spec.name.split_whitespace().next().unwrap_or("campaign");
        writeln!(
            self.writer,
            "SUBMIT {name} {} {} {} {}",
            spec.seed_start,
            spec.seed_count,
            spec.clamp_ms,
            spec.source.len(),
        )
        .map_err(|e| e.to_string())?;
        self.writer
            .write_all(spec.source.as_bytes())
            .map_err(|e| e.to_string())?;
        self.writer.flush().map_err(|e| e.to_string())?;
        let body = self.read_ok()?;
        body.split_whitespace()
            .next()
            .and_then(parse_job)
            .ok_or_else(|| format!("malformed submit response: {body}"))
    }

    /// One job's status, now.
    pub fn status(&mut self, job: JobId) -> Result<WireStatus, String> {
        let line = self.roundtrip(&format!("STATUS {job}"))?;
        WireStatus::parse(&line)
    }

    /// Blocks server-side until the job completes or fails.
    pub fn wait(&mut self, job: JobId) -> Result<WireStatus, String> {
        let line = self.roundtrip(&format!("WAIT {job}"))?;
        WireStatus::parse(&line)
    }

    /// All jobs' status lines.
    pub fn jobs(&mut self) -> Result<Vec<String>, String> {
        let head = self.roundtrip("JOBS")?;
        let n: usize = head
            .strip_prefix("n=")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("malformed jobs response: {head}"))?;
        (0..n).map(|_| self.read_line()).collect()
    }

    /// Replays one completed seed server-side; `Ok(true)` means the
    /// replay digest matched the logged live digest.
    pub fn replay(&mut self, job: JobId, seed: u64) -> Result<bool, String> {
        let line = self.roundtrip(&format!("REPLAY {job} {seed}"))?;
        Ok(line.contains("match=true"))
    }

    /// The server's current whole-log chain digest.
    pub fn chain(&mut self) -> Result<u64, String> {
        let line = self.roundtrip("CHAIN")?;
        let hex = line
            .strip_prefix("chain=0x")
            .ok_or_else(|| format!("malformed chain response: {line}"))?;
        u64::from_str_radix(hex, 16).map_err(|e| e.to_string())
    }

    /// Starts streaming and hands each event line to `sink` until the
    /// stream's `done` marker. Returns the number of event lines seen.
    pub fn stream(
        &mut self,
        job: Option<JobId>,
        mut sink: impl FnMut(&str),
    ) -> Result<u64, String> {
        let target = match job {
            Some(id) => id.to_string(),
            None => "all".to_string(),
        };
        let head = self.roundtrip(&format!("STREAM {target}"))?;
        if head != "streaming" {
            return Err(format!("malformed stream response: {head}"));
        }
        let mut events = 0;
        loop {
            let line = self.read_line()?;
            if line == "done" {
                return Ok(events);
            }
            events += 1;
            sink(&line);
        }
    }

    /// Asks the server to stop accepting and shut the runtime down.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.roundtrip("SHUTDOWN").map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{ServerConfig, ServerRuntime};
    use std::path::PathBuf;

    const SRC: &str = r#"
scenario "net_unit" {
    world { area = (60.0, 40.0), persons = 1 }
    mission { deadline = 60s }
}
"#;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sesame-net-{}-{name}.runlog", std::process::id()));
        p
    }

    #[test]
    fn submit_wait_replay_and_stream_over_tcp() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        let rt = ServerRuntime::start(
            &path,
            ServerConfig {
                workers: 2,
                snapshot_every_ticks: 10,
            },
        )
        .unwrap();
        let mut server = Server::bind(rt.clone(), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        client.ping().unwrap();

        let spec = JobSpec::new("net_unit", SRC, 0, 2).clamp_ms(8_000);
        let id = client.submit(&spec).unwrap();
        let status = client.wait(id).unwrap();
        assert!(status.is_completed(), "status: {}", status.line);
        assert_eq!(status.completed_runs, 2);
        for seed in [0, 1] {
            assert!(client.replay(id, seed).unwrap(), "seed {seed} diverged");
        }
        // A post-completion stream closes cleanly instead of hanging.
        let mut streamer = Client::connect(server.addr()).unwrap();
        streamer.stream(Some(id), |_| {}).unwrap();
        assert!(client.chain().unwrap() != 0);
        assert_eq!(client.jobs().unwrap().len(), 1);

        // Protocol errors are single-line and do not poison the
        // connection.
        assert!(client.status(JobId(99)).is_err());
        client.ping().unwrap();

        server.stop();
        rt.shutdown();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_submissions_are_rejected_over_the_wire() {
        let path = tmp("reject");
        std::fs::remove_file(&path).ok();
        let rt = ServerRuntime::start(&path, ServerConfig::default()).unwrap();
        let mut server = Server::bind(rt.clone(), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let err = client
            .submit(&JobSpec::new("bad", "scenario {", 0, 1))
            .unwrap_err();
        assert!(err.contains("compile"), "error says why: {err}");
        client.ping().unwrap();
        server.stop();
        rt.shutdown();
        std::fs::remove_file(&path).ok();
    }
}
