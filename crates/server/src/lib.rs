//! # sesame-server — campaign-as-a-service for the SESAME platform
//!
//! Turns the batch simulation stack into a long-lived service: clients
//! submit *campaigns* (a scenario-DSL source plus a seed range) over a
//! std-only TCP line protocol, a thread pool multiplexes many campaigns
//! over the same executors the batch binaries use, subscribers stream
//! zero-copy progress events, and every completed run is journaled to
//! an event-sourced, digest-chained log from which any seed is
//! replayable bit-identically — even after the process is killed and
//! restarted.
//!
//! The crate stacks four layers, each usable without the ones above:
//!
//! | layer | module | what it owns |
//! |---|---|---|
//! | run log | [`log`] | append-only records, FNV digest chain, corruption detection |
//! | jobs | [`job`] | the submission unit, compilation, lifecycle, status |
//! | runtime | [`runtime`] | worker pool, recovery, replay, shutdown |
//! | wire | [`net`] + [`stream`] | TCP protocol, event fanout |
//!
//! ## Why event-sourced
//!
//! The service keeps **no state file**: the append-only log of
//! submissions and completions *is* the state, and startup is a replay
//! of that log. Because every record is chained through the same FNV
//! construction the checkpoint digests use
//! ([`sesame_core::checkpoint::Fnv`]), a flipped byte or a torn tail
//! anywhere in history is detected before the service accepts new work
//! — the log is trustworthy evidence, in the spirit of the paper's
//! dependability case for multi-UAV operations: what the fleet did must
//! be provable after the fact, not just observable while it runs.
//!
//! ## Quick tour
//!
//! ```
//! use sesame_server::{JobSpec, ServerConfig, ServerRuntime};
//!
//! let dir = std::env::temp_dir().join(format!("sesame-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let log = dir.join("tour.runlog");
//!
//! let rt = ServerRuntime::start(&log, ServerConfig { workers: 2, ..Default::default() }).unwrap();
//! let src = r#"
//! scenario "tour" {
//!     world { area = (60.0, 40.0), persons = 1 }
//!     mission { deadline = 30s }
//! }
//! "#;
//! let id = rt.submit(JobSpec::new("tour", src, 0, 2).clamp_ms(5_000)).unwrap();
//! let status = rt.wait(id).unwrap();
//! assert_eq!(status.completed_runs, 2);
//! // Any completed seed replays bit-identically from the log alone.
//! assert!(rt.replay(id, 1).unwrap().matches());
//! rt.shutdown();
//! # std::fs::remove_file(&log).ok();
//! ```
//!
//! The TCP front end ([`net::Server`] / [`net::Client`]) exposes the
//! same operations as single-line commands; `serverbench` (in
//! `sesame-bench`) soaks the whole stack — concurrent clients, a
//! mid-campaign kill, recovery, and a full replay audit.

pub mod job;
pub mod log;
pub mod net;
pub mod runtime;
pub mod stream;

pub use job::{JobId, JobSpec, JobState, JobStatus, RunFact};
pub use log::{LogError, Record, RunLog};
pub use net::{Client, Server, WireStatus};
pub use runtime::{replay_offline, ReplayReport, ServerConfig, ServerError, ServerRuntime};
pub use stream::{Fanout, StreamEvent};
