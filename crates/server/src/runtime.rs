//! The long-lived campaign runtime: a std-only thread pool multiplexing
//! many concurrent campaigns, journaling every completion to the run
//! log, and streaming progress through the [`Fanout`].
//!
//! # Scheduling
//!
//! A campaign decomposes into one `(job, seed)` unit per seed; all
//! units share one FIFO queue drained by `workers` threads. Each unit
//! runs its scenario through the exact loop the batch binaries use
//! ([`Scenario::step_once`] until [`Scenario::should_stop`]), so a
//! digest computed here is directly comparable to one computed by
//! `scenario run` or a conformance suite. Inside a unit, the platform's
//! own sharded tick still fans out over the process-wide
//! `sesame_core::shard` pool for large fleets — the service adds
//! *between-campaign* parallelism on top of the *within-tick*
//! parallelism that already exists.
//!
//! # Crash and restart discipline
//!
//! The only durable state is the run log. [`ServerRuntime::start`] on an
//! existing log verifies the digest chain, rebuilds the job table from
//! the records, re-enqueues exactly the seeds that have no
//! `RunCompleted` record, and counts the rest as recovered. Because
//! every run is a pure function of (source, seed, clamp) — all three in
//! the submission record — a run completed before a crash and one
//! completed after recovery are bit-identical, which
//! [`ServerRuntime::replay`] checks on demand.

use crate::job::{JobId, JobSpec, JobState, JobStatus, RunFact};
use crate::log::{self, LogError, Record, RunLog};
use crate::stream::{Fanout, StreamEvent};
use sesame_core::checkpoint::digest_platform;
use sesame_core::scenario::Scenario;
use sesame_obs::MetricsSnapshot;
use sesame_scenario_dsl::CompiledScenario;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Tuning knobs for a runtime instance. Everything affecting *what a
/// run computes* lives in the [`JobSpec`] instead — the config only
/// shapes scheduling and streaming cadence, so two differently
/// configured servers replaying the same log agree on every digest.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the unit queue.
    pub workers: usize,
    /// Stream a snapshot + metrics delta every this many ticks (when
    /// the job has subscribers). 10 ticks = 1 simulated second.
    pub snapshot_every_ticks: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(1, 16),
            snapshot_every_ticks: 10,
        }
    }
}

/// Why a service operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The run log rejected a read or write.
    Log(LogError),
    /// The submission failed to compile; the string is the rendered
    /// caret diagnostic.
    Compile(String),
    /// No such job.
    UnknownJob(JobId),
    /// The seed has no completed (logged) run to replay against.
    RunNotCompleted {
        /// The job asked about.
        job: JobId,
        /// The seed with no logged run.
        seed: u64,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Log(e) => write!(f, "{e}"),
            ServerError::Compile(e) => write!(f, "submission does not compile: {e}"),
            ServerError::UnknownJob(id) => write!(f, "unknown job {id}"),
            ServerError::RunNotCompleted { job, seed } => {
                write!(f, "{job} seed {seed} has no completed run to replay")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl From<LogError> for ServerError {
    fn from(e: LogError) -> Self {
        ServerError::Log(e)
    }
}

/// What a replay verification produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// The job replayed.
    pub job: JobId,
    /// The seed replayed.
    pub seed: u64,
    /// Ticks and digest the live run logged.
    pub logged: RunFact,
    /// Ticks the replay took.
    pub ticks: u64,
    /// The digest the replay produced.
    pub digest: u64,
}

impl ReplayReport {
    /// True when the replay is bit-identical to the logged live run.
    pub fn matches(&self) -> bool {
        self.digest == self.logged.digest && self.ticks == self.logged.ticks
    }
}

struct Job {
    spec: JobSpec,
    /// Compiled once at submit/recovery; `None` only for jobs that
    /// failed to recompile at recovery.
    compiled: Option<CompiledScenario>,
    state: JobState,
    completed: BTreeMap<u64, RunFact>,
    recovered: u64,
}

impl Job {
    fn status(&self, id: JobId) -> JobStatus {
        JobStatus {
            id,
            name: self.spec.name.clone(),
            state: self.state.clone(),
            seed_start: self.spec.seed_start,
            seed_count: self.spec.seed_count,
            completed_runs: self.completed.len() as u64,
            recovered_runs: self.recovered,
            digests: self.completed.clone(),
        }
    }
}

struct State {
    log: RunLog,
    jobs: BTreeMap<u64, Job>,
    queue: VecDeque<(u64, u64)>,
    next_job: u64,
    active: usize,
}

struct Inner {
    state: Mutex<State>,
    /// Wakes workers when units are queued or shutdown is requested.
    work_cv: Condvar,
    /// Wakes `wait`/`wait_idle` watchers on any job progress.
    watch_cv: Condvar,
    fanout: Fanout,
    config: ServerConfig,
    shutdown: AtomicBool,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// A cheaply cloneable handle to the campaign service. All clones share
/// one scheduler, one log, and one fanout; [`ServerRuntime::shutdown`]
/// stops the shared workers.
#[derive(Clone)]
pub struct ServerRuntime {
    inner: Arc<Inner>,
}

impl ServerRuntime {
    /// Starts the service on `log_path`. A fresh path begins an empty
    /// log; an existing one is chain-verified and recovered — completed
    /// runs are kept, unfinished campaigns re-enqueue their missing
    /// seeds. A corrupt log refuses to start (see [`LogError`]).
    pub fn start(log_path: impl AsRef<Path>, config: ServerConfig) -> Result<Self, ServerError> {
        let path = log_path.as_ref();
        let (state, finish_records) = if path.exists() {
            let (log, records) = RunLog::open(path)?;
            Self::recover(log, &records)
        } else {
            (
                State {
                    log: RunLog::create(path)?,
                    jobs: BTreeMap::new(),
                    queue: VecDeque::new(),
                    next_job: 1,
                    active: 0,
                },
                Vec::new(),
            )
        };
        let mut state = state;
        // Jobs whose last run completed right before the crash may be
        // missing only their JobFinished marker; append it now.
        for job in finish_records {
            state.log.append(&Record::JobFinished { job })?;
        }
        let inner = Arc::new(Inner {
            state: Mutex::new(state),
            work_cv: Condvar::new(),
            watch_cv: Condvar::new(),
            fanout: Fanout::new(),
            config: config.clone(),
            shutdown: AtomicBool::new(false),
            handles: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::new();
        for i in 0..config.workers.max(1) {
            let worker = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sesame-server-{i}"))
                    .spawn(move || worker_loop(worker))
                    .expect("spawn server worker"),
            );
        }
        *inner.handles.lock().unwrap() = handles;
        Ok(ServerRuntime { inner })
    }

    /// Rebuilds the job table and unit queue from verified log records.
    /// Returns the state plus the ids needing a late `JobFinished`.
    fn recover(log: RunLog, records: &[Record]) -> (State, Vec<u64>) {
        let mut jobs: BTreeMap<u64, Job> = BTreeMap::new();
        let mut next_job = 1u64;
        for record in records {
            match record {
                Record::JobSubmitted {
                    job,
                    name,
                    source,
                    seed_start,
                    seed_count,
                    clamp_ms,
                } => {
                    let spec = JobSpec::new(name.clone(), source.clone(), *seed_start, *seed_count)
                        .clamp_ms(*clamp_ms);
                    let (compiled, state) = match spec.compile() {
                        Ok(c) => (Some(c), JobState::Queued),
                        Err(e) => (
                            None,
                            JobState::Failed(format!("recovery recompile failed: {e}")),
                        ),
                    };
                    next_job = next_job.max(job + 1);
                    jobs.insert(
                        *job,
                        Job {
                            spec,
                            compiled,
                            state,
                            completed: BTreeMap::new(),
                            recovered: 0,
                        },
                    );
                }
                Record::RunCompleted {
                    job,
                    seed,
                    ticks,
                    digest,
                } => {
                    if let Some(j) = jobs.get_mut(job) {
                        j.completed.insert(
                            *seed,
                            RunFact {
                                ticks: *ticks,
                                digest: *digest,
                            },
                        );
                    }
                }
                Record::JobFinished { job } => {
                    if let Some(j) = jobs.get_mut(job) {
                        j.state = JobState::Completed;
                    }
                }
            }
        }
        let mut queue = VecDeque::new();
        let mut finish = Vec::new();
        for (id, job) in jobs.iter_mut() {
            job.recovered = job.completed.len() as u64;
            if matches!(job.state, JobState::Completed | JobState::Failed(_)) {
                continue;
            }
            let missing: Vec<u64> = job
                .spec
                .seeds()
                .filter(|s| !job.completed.contains_key(s))
                .collect();
            if missing.is_empty() {
                job.state = JobState::Completed;
                finish.push(*id);
            } else {
                if !job.completed.is_empty() {
                    job.state = JobState::Running;
                }
                queue.extend(missing.into_iter().map(|s| (*id, s)));
            }
        }
        (
            State {
                log,
                jobs,
                queue,
                next_job,
                active: 0,
            },
            finish,
        )
    }

    /// Accepts a campaign: compiles and validates the submission,
    /// journals it, enqueues its seeds, and returns the new id.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, ServerError> {
        let compiled = spec.compile().map_err(ServerError::Compile)?;
        let mut state = self.inner.state.lock().unwrap();
        let id = state.next_job;
        state.next_job += 1;
        state.log.append(&Record::JobSubmitted {
            job: id,
            name: compiled.name().to_string(),
            source: spec.source.clone(),
            seed_start: spec.seed_start,
            seed_count: spec.seed_count,
            clamp_ms: spec.clamp_ms,
        })?;
        let seeds: Vec<u64> = spec.seeds().collect();
        let name = compiled.name().to_string();
        let seed_count = spec.seed_count;
        state.jobs.insert(
            id,
            Job {
                spec,
                compiled: Some(compiled),
                state: JobState::Queued,
                completed: BTreeMap::new(),
                recovered: 0,
            },
        );
        state.queue.extend(seeds.into_iter().map(|s| (id, s)));
        drop(state);
        self.inner.work_cv.notify_all();
        self.inner.fanout.publish(StreamEvent::JobQueued {
            job: JobId(id),
            name,
            seed_count,
        });
        Ok(JobId(id))
    }

    /// A point-in-time status of one job.
    pub fn status(&self, id: JobId) -> Result<JobStatus, ServerError> {
        let state = self.inner.state.lock().unwrap();
        state
            .jobs
            .get(&id.0)
            .map(|j| j.status(id))
            .ok_or(ServerError::UnknownJob(id))
    }

    /// Statuses of every job, id order.
    pub fn jobs(&self) -> Vec<JobStatus> {
        let state = self.inner.state.lock().unwrap();
        state
            .jobs
            .iter()
            .map(|(id, j)| j.status(JobId(*id)))
            .collect()
    }

    /// Subscribes to the event stream of one job (or all with `None`).
    pub fn subscribe(&self, job: Option<JobId>) -> Receiver<Arc<StreamEvent>> {
        self.inner.fanout.subscribe(job)
    }

    /// Blocks until `id` completes or fails (or the service shuts
    /// down), returning its final status.
    pub fn wait(&self, id: JobId) -> Result<JobStatus, ServerError> {
        let mut state = self.inner.state.lock().unwrap();
        loop {
            let Some(job) = state.jobs.get(&id.0) else {
                return Err(ServerError::UnknownJob(id));
            };
            if matches!(job.state, JobState::Completed | JobState::Failed(_))
                || self.inner.shutdown.load(Ordering::Acquire)
            {
                return Ok(job.status(id));
            }
            state = self.inner.watch_cv.wait(state).unwrap();
        }
    }

    /// Blocks until no unit is queued or executing.
    pub fn wait_idle(&self) {
        let mut state = self.inner.state.lock().unwrap();
        while !(state.queue.is_empty() && state.active == 0) {
            if self.inner.shutdown.load(Ordering::Acquire) {
                return;
            }
            state = self.inner.watch_cv.wait(state).unwrap();
        }
    }

    /// Re-runs a completed seed from the job's logged description and
    /// compares against the logged digest. The replay is a fresh
    /// scenario built from the recompiled source — nothing of the live
    /// run's state is reused, so a match means the log alone reproduces
    /// the run bit-for-bit.
    pub fn replay(&self, id: JobId, seed: u64) -> Result<ReplayReport, ServerError> {
        let (compiled, fact) = {
            let state = self.inner.state.lock().unwrap();
            let job = state.jobs.get(&id.0).ok_or(ServerError::UnknownJob(id))?;
            let fact = *job
                .completed
                .get(&seed)
                .ok_or(ServerError::RunNotCompleted { job: id, seed })?;
            let compiled = job
                .compiled
                .clone()
                .ok_or_else(|| ServerError::Compile("job failed to recompile".into()))?;
            (compiled, fact)
        };
        let (ticks, digest) = execute_run(&compiled, seed, u64::MAX, |_| {});
        Ok(ReplayReport {
            job: id,
            seed,
            logged: fact,
            ticks,
            digest,
        })
    }

    /// The run log's whole-history chain digest right now.
    pub fn chain(&self) -> u64 {
        self.inner.state.lock().unwrap().log.chain()
    }

    /// Stream delivery/drop counters (see [`Fanout`]).
    pub fn stream_counters(&self) -> (u64, u64) {
        (self.inner.fanout.delivered(), self.inner.fanout.dropped())
    }

    /// Stops the service: workers finish the unit they are executing,
    /// queued units are **abandoned** (kill semantics — exactly what a
    /// process death looks like to the log), and the log is left
    /// flushed. Restarting on the same path re-enqueues the abandoned
    /// units.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.work_cv.notify_all();
        let handles: Vec<_> = self.inner.handles.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        self.inner.watch_cv.notify_all();
    }

    /// Finishes every queued unit, then stops — the graceful flavor.
    pub fn drain_and_shutdown(&self) {
        self.wait_idle();
        self.shutdown();
    }
}

/// Replays one run straight from a log file, without a running service:
/// verify the chain, find the submission and the completed run, re-run,
/// compare. A torn or tampered log fails here with the typed
/// [`LogError`] before any simulation starts.
pub fn replay_offline(
    log_path: impl AsRef<Path>,
    id: JobId,
    seed: u64,
) -> Result<ReplayReport, ServerError> {
    let records = log::read_all(log_path)?;
    let mut spec: Option<JobSpec> = None;
    let mut fact: Option<RunFact> = None;
    for record in &records {
        match record {
            Record::JobSubmitted {
                job,
                name,
                source,
                seed_start,
                seed_count,
                clamp_ms,
            } if *job == id.0 => {
                spec = Some(
                    JobSpec::new(name.clone(), source.clone(), *seed_start, *seed_count)
                        .clamp_ms(*clamp_ms),
                );
            }
            Record::RunCompleted {
                job,
                seed: s,
                ticks,
                digest,
            } if *job == id.0 && *s == seed => {
                fact = Some(RunFact {
                    ticks: *ticks,
                    digest: *digest,
                });
            }
            _ => {}
        }
    }
    let spec = spec.ok_or(ServerError::UnknownJob(id))?;
    let fact = fact.ok_or(ServerError::RunNotCompleted { job: id, seed })?;
    let compiled = spec.compile().map_err(ServerError::Compile)?;
    let (ticks, digest) = execute_run(&compiled, seed, u64::MAX, |_| {});
    Ok(ReplayReport {
        job: id,
        seed,
        logged: fact,
        ticks,
        digest,
    })
}

/// The path every log file of a default deployment uses.
pub fn default_log_path() -> PathBuf {
    PathBuf::from("sesame-server.runlog")
}

fn worker_loop(inner: Arc<Inner>) {
    loop {
        let (job_id, seed, compiled) = {
            let mut state = inner.state.lock().unwrap();
            let unit = loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                match state.queue.pop_front() {
                    Some(unit) => break unit,
                    None => state = inner.work_cv.wait(state).unwrap(),
                }
            };
            let (id, seed) = unit;
            let Some(job) = state.jobs.get_mut(&id) else {
                continue;
            };
            // Units of a job that failed meanwhile are dropped.
            if matches!(job.state, JobState::Failed(_)) {
                continue;
            }
            if job.state == JobState::Queued {
                job.state = JobState::Running;
            }
            let Some(compiled) = job.compiled.clone() else {
                continue;
            };
            state.active += 1;
            (id, seed, compiled)
        };
        inner.fanout.publish(StreamEvent::RunStarted {
            job: JobId(job_id),
            seed,
        });
        let every = inner.config.snapshot_every_ticks.max(1);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            execute_run(&compiled, seed, every, |progress| {
                if inner.fanout.has_subscribers(JobId(job_id)) {
                    emit_progress(&inner.fanout, JobId(job_id), seed, progress);
                }
            })
        }));
        let mut state = inner.state.lock().unwrap();
        state.active -= 1;
        match outcome {
            Ok((ticks, digest)) => {
                let append = state.log.append(&Record::RunCompleted {
                    job: job_id,
                    seed,
                    ticks,
                    digest,
                });
                let chain = match append {
                    Ok(chain) => chain,
                    Err(e) => {
                        mark_failed(
                            &mut state,
                            &inner.fanout,
                            job_id,
                            format!("log append: {e}"),
                        );
                        drop(state);
                        inner.watch_cv.notify_all();
                        continue;
                    }
                };
                let mut finished = None;
                if let Some(job) = state.jobs.get_mut(&job_id) {
                    job.completed.insert(seed, RunFact { ticks, digest });
                    if job.spec.seeds().all(|s| job.completed.contains_key(&s)) {
                        job.state = JobState::Completed;
                        finished = Some(job.completed.len() as u64);
                    }
                }
                if finished.is_some() {
                    let _ = state.log.append(&Record::JobFinished { job: job_id });
                }
                drop(state);
                inner.fanout.publish(StreamEvent::RunCompleted {
                    job: JobId(job_id),
                    seed,
                    ticks,
                    digest,
                    chain,
                });
                if let Some(runs) = finished {
                    inner.fanout.publish(StreamEvent::JobCompleted {
                        job: JobId(job_id),
                        runs,
                    });
                }
            }
            Err(panic) => {
                let msg = panic_message(panic.as_ref());
                mark_failed(
                    &mut state,
                    &inner.fanout,
                    job_id,
                    format!("seed {seed} panicked: {msg}"),
                );
                drop(state);
            }
        }
        inner.watch_cv.notify_all();
    }
}

fn mark_failed(state: &mut State, fanout: &Fanout, job_id: u64, error: String) {
    if let Some(job) = state.jobs.get_mut(&job_id) {
        job.state = JobState::Failed(error.clone());
    }
    fanout.publish(StreamEvent::JobFailed {
        job: JobId(job_id),
        error,
    });
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Progress handed to the streaming observer every `every` ticks.
pub struct RunProgress<'a> {
    /// Closed-loop tick count.
    pub tick: u64,
    /// Simulation time, milliseconds.
    pub time_ms: u64,
    /// The running scenario (read-only).
    pub scenario: &'a Scenario,
    /// Metrics at the previous observation, for delta computation.
    pub prev_metrics: &'a mut Option<MetricsSnapshot>,
}

fn emit_progress(fanout: &Fanout, job: JobId, seed: u64, progress: RunProgress<'_>) {
    let platform = progress.scenario.platform();
    fanout.publish(StreamEvent::Snapshot {
        job,
        seed,
        tick: progress.tick,
        time_ms: progress.time_ms,
        completion: platform.completion(),
        persons_found: platform.tasks().mission().findings().len(),
    });
    let current = platform.metrics_snapshot();
    let delta = match progress.prev_metrics.as_ref() {
        Some(prev) => current.delta_since(prev),
        None => current.delta_since(&MetricsSnapshot::default()),
    };
    if !delta.is_empty() {
        fanout.publish(StreamEvent::Metrics {
            job,
            seed,
            tick: progress.tick,
            delta,
        });
    }
    *progress.prev_metrics = Some(current);
}

/// Runs one seed to completion through the canonical step loop,
/// invoking `observe` every `every` ticks, and returns the tick count
/// plus the end-of-run conformance digest. Observation is read-only, so
/// streamed and unstreamed runs are bit-identical — the digest never
/// depends on who was watching.
fn execute_run(
    compiled: &CompiledScenario,
    seed: u64,
    every: u64,
    mut observe: impl FnMut(RunProgress<'_>),
) -> (u64, u64) {
    let mut scenario = compiled.builder(seed).build();
    scenario.launch();
    let mut prev_metrics: Option<MetricsSnapshot> = None;
    loop {
        let now = scenario.step_once();
        let tick = scenario.platform().total_ticks();
        if tick.is_multiple_of(every) {
            observe(RunProgress {
                tick,
                time_ms: now.as_millis(),
                scenario: &scenario,
                prev_metrics: &mut prev_metrics,
            });
        }
        if scenario.should_stop(now) {
            break;
        }
    }
    let ticks = scenario.platform().total_ticks();
    let digest = digest_platform(scenario.platform());
    (ticks, digest)
}

sesame_types::assert_send_sync!(ServerConfig, ServerError, ReplayReport, JobSpec, JobStatus);

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServerRuntime>();
};

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
scenario "runtime_unit" {
    world { area = (60.0, 40.0), persons = 1 }
    mission { deadline = 60s }
}
"#;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "sesame-runtime-{}-{name}.runlog",
            std::process::id()
        ));
        p
    }

    fn config(workers: usize) -> ServerConfig {
        ServerConfig {
            workers,
            snapshot_every_ticks: 10,
        }
    }

    #[test]
    fn submit_run_wait_and_replay_match() {
        let path = tmp("basic");
        std::fs::remove_file(&path).ok();
        let rt = ServerRuntime::start(&path, config(2)).unwrap();
        let spec = JobSpec::new("runtime_unit", SRC, 3, 2).clamp_ms(8_000);
        let id = rt.submit(spec).unwrap();
        let status = rt.wait(id).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.completed_runs, 2);
        for seed in [3, 4] {
            let report = rt.replay(id, seed).unwrap();
            assert!(report.matches(), "replay diverged: {report:?}");
        }
        rt.shutdown();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restart_recovers_completed_runs_and_finishes_the_rest() {
        let path = tmp("restart");
        std::fs::remove_file(&path).ok();
        let rt = ServerRuntime::start(&path, config(1)).unwrap();
        let id = rt
            .submit(JobSpec::new("runtime_unit", SRC, 0, 3).clamp_ms(6_000))
            .unwrap();
        // Let at least one run land in the log, then kill with work
        // still queued.
        let rx = rt.subscribe(Some(id));
        loop {
            let ev = rx.recv().expect("stream open");
            if matches!(&*ev, StreamEvent::RunCompleted { .. }) {
                break;
            }
        }
        rt.shutdown();
        let before = rt.status(id).unwrap();
        assert!(before.completed_runs < 3, "kill happened mid-campaign");
        let digests_before = before.digests.clone();

        let rt2 = ServerRuntime::start(&path, config(2)).unwrap();
        let after = rt2.wait(id).unwrap();
        assert_eq!(after.state, JobState::Completed);
        assert_eq!(after.completed_runs, 3);
        assert!(after.recovered_runs >= 1);
        // Runs recovered from the log kept their digests verbatim.
        for (seed, fact) in &digests_before {
            assert_eq!(after.digests.get(seed), Some(fact));
        }
        // And every seed — logged before or after the restart — replays
        // bit-identically.
        for seed in 0..3 {
            assert!(rt2.replay(id, seed).unwrap().matches());
        }
        rt2.shutdown();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_job_and_uncompleted_seed_error_cleanly() {
        let path = tmp("errors");
        std::fs::remove_file(&path).ok();
        let rt = ServerRuntime::start(&path, config(1)).unwrap();
        assert!(matches!(
            rt.status(JobId(99)),
            Err(ServerError::UnknownJob(_))
        ));
        let id = rt
            .submit(JobSpec::new("runtime_unit", SRC, 0, 1).clamp_ms(5_000))
            .unwrap();
        rt.wait(id).unwrap();
        assert!(matches!(
            rt.replay(id, 42),
            Err(ServerError::RunNotCompleted { .. })
        ));
        rt.shutdown();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_submission_is_rejected_before_touching_the_log() {
        let path = tmp("reject");
        std::fs::remove_file(&path).ok();
        let rt = ServerRuntime::start(&path, config(1)).unwrap();
        let chain_before = rt.chain();
        let err = rt.submit(JobSpec::new("bad", "scenario {", 0, 1));
        assert!(matches!(err, Err(ServerError::Compile(_))));
        assert_eq!(rt.chain(), chain_before);
        rt.shutdown();
        std::fs::remove_file(&path).ok();
    }
}
