//! Property tests of the metric-merge algebra the parallel campaign
//! reduction relies on.
//!
//! The reduction folds per-seed registries/snapshots in seed order, so
//! strictly it only needs determinism for a fixed order — but the
//! stronger algebraic properties (commutativity and associativity on
//! counters and histogram buckets, conservation of bucket counts,
//! last-write gauge semantics) are what make "fold in seed order" equal
//! to "any fold the workers could have produced", and they are cheap to
//! pin here.

use proptest::prelude::*;
use sesame_obs::metrics::{Histogram, MetricsRegistry, DEFAULT_BUCKETS};

/// A histogram over the default edges with up to 40 observations drawn
/// across all buckets including overflow.
fn histogram() -> impl Strategy<Value = Histogram> {
    proptest::collection::vec(0.0f64..20_000.0, 0..40).prop_map(|values| {
        let mut h = Histogram::new(&DEFAULT_BUCKETS);
        for v in values {
            h.observe(v);
        }
        h
    })
}

/// A small registry with counters, gauges and one shared histogram
/// name, so merges genuinely collide on every metric kind.
fn registry() -> impl Strategy<Value = MetricsRegistry> {
    const COUNTERS: [&str; 3] = ["a", "b", "c"];
    const GAUGES: [&str; 2] = ["g", "k"];
    (
        proptest::collection::vec((0usize..3, 0u64..1_000_000), 0..4),
        proptest::collection::vec((0usize..2, -100.0f64..100.0), 0..3),
        proptest::collection::vec(0.0f64..500.0, 0..10),
    )
        .prop_map(|(counters, gauges, observations)| {
            let mut m = MetricsRegistry::new();
            for (idx, v) in counters {
                m.add(COUNTERS[idx], v);
            }
            for (idx, v) in gauges {
                m.set_gauge(GAUGES[idx], v);
            }
            for v in observations {
                m.observe("h", v);
            }
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Histogram merge is commutative on every integer field, and the
    /// total observation count is conserved.
    #[test]
    fn histogram_merge_commutes_and_conserves(a in histogram(), b in histogram()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.bucket_counts(), ba.bucket_counts());
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.count(), a.count() + b.count(), "counts conserved");
        prop_assert_eq!(
            ab.bucket_counts().iter().sum::<u64>(),
            a.count() + b.count(),
            "bucket mass conserved"
        );
        prop_assert_eq!(ab.min().to_bits(), ba.min().to_bits());
        prop_assert_eq!(ab.max().to_bits(), ba.max().to_bits());
        prop_assert!((ab.sum() - ba.sum()).abs() <= 1e-6 * ab.sum().abs().max(1.0));
    }

    /// Histogram merge is associative on bucket counts and extrema.
    #[test]
    fn histogram_merge_is_associative(a in histogram(), b in histogram(), c in histogram()) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left.bucket_counts(), right.bucket_counts());
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.min().to_bits(), right.min().to_bits());
        prop_assert_eq!(left.max().to_bits(), right.max().to_bits());
    }

    /// Registry merge commutes on counters and histogram buckets (NOT
    /// on gauges, which are deliberately last-write-by-fold-order).
    #[test]
    fn registry_merge_commutes_on_counters_and_histograms(a in registry(), b in registry()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        let names: Vec<(&str, u64)> = ab.counters_with_prefix("").collect();
        prop_assert_eq!(names, ba.counters_with_prefix("").collect::<Vec<_>>());
        match (ab.histogram("h"), ba.histogram("h")) {
            (Some(x), Some(y)) => {
                prop_assert_eq!(x.bucket_counts(), y.bucket_counts());
                prop_assert_eq!(x.count(), y.count());
            }
            (None, None) => {}
            _ => prop_assert!(false, "histogram presence must commute"),
        }
    }

    /// Registry merge is associative on counters.
    #[test]
    fn registry_merge_is_associative_on_counters(a in registry(), b in registry(), c in registry()) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(
            left.counters_with_prefix("").collect::<Vec<_>>(),
            right.counters_with_prefix("").collect::<Vec<_>>()
        );
    }

    /// Gauge merge takes the last write in fold order: folding per-seed
    /// registries in ascending seed order leaves the highest seed's
    /// value, wherever the gauge appears.
    #[test]
    fn gauge_merge_is_last_write_in_seed_order(values in proptest::collection::vec(-1e6f64..1e6, 1..8)) {
        let mut merged = MetricsRegistry::new();
        for v in &values {
            let mut seed_registry = MetricsRegistry::new();
            seed_registry.set_gauge("g", *v);
            merged.merge(&seed_registry);
        }
        prop_assert_eq!(merged.gauge("g").map(f64::to_bits), values.last().map(|v| v.to_bits()));
    }

    /// Snapshot merge mirrors registry merge for counters, and count
    /// conservation survives the summary condensation.
    #[test]
    fn snapshot_merge_tracks_registry_merge(a in registry(), b in registry()) {
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        let mut reg = a.clone();
        reg.merge(&b);
        prop_assert_eq!(&snap.counters, &reg.snapshot().counters);
        if let (Some(s), Some(h)) = (snap.histogram("h"), reg.histogram("h")) {
            prop_assert_eq!(s.count, h.count());
        }
    }
}
