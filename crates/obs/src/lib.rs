//! `sesame-obs` — the observability substrate of the SESAME platform.
//!
//! The paper's contribution is a *runtime* assurance system: EDDIs and
//! ConSerts making per-tick decisions on a multi-UAV platform. This crate
//! is the measurement layer underneath it, in the spirit of SOTER's
//! first-class monitoring of runtime-assurance decision modules: before a
//! perf or scale change can be trusted, there has to be a way to see
//! where a tick's time goes and how often each layer actually fires.
//!
//! Three pieces, all zero-dependency and cheap enough to stay on:
//!
//! * [`metrics::MetricsRegistry`] — named counters, gauges and
//!   fixed-bucket histograms;
//! * [`span::TickSpan`] — a scoped timer splitting the platform loop
//!   into named phases (`sim_step` → `sense_publish` → `bus_step` → …)
//!   and flushing one histogram sample per phase per tick;
//! * [`trace::TraceLog`] — a bounded ring of typed [`trace::TraceEvent`]s
//!   (message dropped/tampered, IDS alert, guarantee change, mode
//!   transition, …) with an eviction counter so loss is visible.
//!
//! Counters, gauges and trace events are driven purely by simulation
//! state, so they are bit-deterministic under a fixed seed; phase
//! timings come from the wall clock and are the only nondeterministic
//! values in the registry.
//!
//! # Examples
//!
//! ```
//! use sesame_obs::metrics::MetricsRegistry;
//! use sesame_obs::span::TickSpan;
//!
//! let mut metrics = MetricsRegistry::new();
//! metrics.inc("ticks");
//! metrics.observe("queue_depth", 3.0);
//!
//! let mut span = TickSpan::start();
//! span.enter("sim_step");
//! // ... simulate ...
//! span.enter("bus_step");
//! // ... deliver messages ...
//! span.finish(&mut metrics);
//!
//! assert_eq!(metrics.counter("ticks"), 1);
//! assert_eq!(metrics.histogram("tick.phase.sim_step").unwrap().count(), 1);
//! ```

pub mod metrics;
pub mod span;
pub mod trace;

pub use metrics::{Histogram, HistogramSummary, MetricsDelta, MetricsRegistry, MetricsSnapshot};
pub use span::TickSpan;
pub use trace::{TraceEvent, TraceLog, TraceRecord};
