//! Bounded structured trace of notable platform events.
//!
//! Unlike the aggregate counters in [`crate::metrics`], the trace keeps
//! the *sequence*: which message was tampered at what simulated time,
//! when the IDS first fired, when a ConSert guarantee degraded. The log
//! is a fixed-capacity ring — pushing beyond capacity evicts the oldest
//! record and bumps an eviction counter, so post-hoc analysis can tell
//! "nothing happened" apart from "the window slid past it".

use std::collections::VecDeque;

/// One typed, structured event. Everything is owned data so records
/// stay valid after the originating subsystem moves on.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A message was accepted onto a bus topic.
    MessagePublished { topic: String, sender: String },
    /// The loss model dropped an in-flight message.
    MessageDropped { topic: String, sender: String },
    /// A tamper hook mutated an in-flight message.
    MessageTampered { topic: String, sender: String },
    /// A subscriber queue hit its depth bound and discarded a message.
    QueueOverflow { topic: String, subscriber: usize },
    /// The intrusion-detection pipeline raised an alert.
    IdsAlert { detector: String, detail: String },
    /// A ConSert guarantee level changed.
    GuaranteeChanged {
        uav: usize,
        from: String,
        to: String,
    },
    /// The platform-level mission decision / mode changed.
    ModeTransition { from: String, to: String },
    /// An injected attack reached one of its scripted goals.
    AttackGoal { description: String },
    /// A per-UAV supervision health state changed
    /// (`Nominal → Degraded → SafeFallback` and recoveries).
    HealthTransition {
        uav: String,
        from: String,
        to: String,
        reason: String,
    },
    /// A scheduled communication fault activated or expired.
    CommFault { label: String, activated: bool },
    /// A scheduled compute-plane fault (EDDI panic, telemetry
    /// corruption, solver stall) activated or expired.
    ComputeFault { label: String, activated: bool },
    /// A per-UAV compute fault was isolated (panic caught or a
    /// validation guard hit) instead of aborting the campaign.
    UavFault {
        uav: String,
        phase: String,
        detail: String,
    },
    /// The logical tick watchdog tripped on a UAV's fault/stall streak.
    WatchdogTrip { uav: String },
    /// A command publish was retried over the lossy bus.
    CommandRetry { topic: String, attempt: u32 },
    /// A bus queue operation failed recoverably (drain on a dead
    /// subscription) — degraded, traced, not fatal.
    BusDegraded { context: String, detail: String },
}

impl TraceEvent {
    /// Short stable kind tag, handy for counting and filtering.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::MessagePublished { .. } => "message_published",
            TraceEvent::MessageDropped { .. } => "message_dropped",
            TraceEvent::MessageTampered { .. } => "message_tampered",
            TraceEvent::QueueOverflow { .. } => "queue_overflow",
            TraceEvent::IdsAlert { .. } => "ids_alert",
            TraceEvent::GuaranteeChanged { .. } => "guarantee_changed",
            TraceEvent::ModeTransition { .. } => "mode_transition",
            TraceEvent::AttackGoal { .. } => "attack_goal",
            TraceEvent::HealthTransition { .. } => "health_transition",
            TraceEvent::CommFault { .. } => "comm_fault",
            TraceEvent::ComputeFault { .. } => "compute_fault",
            TraceEvent::UavFault { .. } => "uav_fault",
            TraceEvent::WatchdogTrip { .. } => "watchdog_trip",
            TraceEvent::CommandRetry { .. } => "command_retry",
            TraceEvent::BusDegraded { .. } => "bus_degraded",
        }
    }
}

/// A trace event stamped with the simulated time it occurred at.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulated milliseconds since scenario start.
    pub t_ms: u64,
    pub event: TraceEvent,
}

/// Fixed-capacity event ring with an eviction counter.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLog {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    evicted: u64,
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl TraceLog {
    /// Roomy enough for a full paper-scale scenario's notable events.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace log capacity must be non-zero");
        Self {
            records: VecDeque::with_capacity(capacity),
            capacity,
            evicted: 0,
        }
    }

    /// Appends a record, evicting the oldest if the ring is full.
    pub fn push(&mut self, t_ms: u64, event: TraceEvent) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.evicted += 1;
        }
        self.records.push_back(TraceRecord { t_ms, event });
    }

    /// Moves every record out of `other` into `self`, oldest first.
    /// `other`'s eviction count carries over too, so loss stays visible
    /// across the hand-off from subsystem logs to the platform log.
    pub fn absorb(&mut self, other: &mut TraceLog) {
        self.evicted += other.evicted;
        other.evicted = 0;
        for rec in other.records.drain(..) {
            if self.records.len() == self.capacity {
                self.records.pop_front();
                self.evicted += 1;
            }
            self.records.push_back(rec);
        }
    }

    /// Records currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Retained records matching a kind tag (see [`TraceEvent::kind`]).
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records.iter().filter(move |r| r.event.kind() == kind)
    }

    /// Count of retained records of the given kind.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.of_kind(kind).count()
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many records have been pushed out of the window since
    /// creation (monotonic; never reset by reads).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Drops all retained records; the eviction counter is preserved.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(i: usize) -> TraceEvent {
        TraceEvent::IdsAlert {
            detector: "seq".into(),
            detail: format!("event {i}"),
        }
    }

    #[test]
    fn push_retains_in_order_under_capacity() {
        let mut log = TraceLog::with_capacity(8);
        for i in 0..5 {
            log.push(i as u64 * 100, dummy(i));
        }
        assert_eq!(log.len(), 5);
        assert_eq!(log.evicted(), 0);
        let times: Vec<u64> = log.iter().map(|r| r.t_ms).collect();
        assert_eq!(times, vec![0, 100, 200, 300, 400]);
    }

    #[test]
    fn overflow_evicts_oldest_and_counts() {
        let mut log = TraceLog::with_capacity(3);
        for i in 0..7 {
            log.push(i, dummy(i as usize));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.evicted(), 4);
        let times: Vec<u64> = log.iter().map(|r| r.t_ms).collect();
        assert_eq!(times, vec![4, 5, 6]);
    }

    #[test]
    fn absorb_drains_and_carries_evictions() {
        let mut main = TraceLog::with_capacity(4);
        let mut sub = TraceLog::with_capacity(2);
        sub.push(1, dummy(1));
        sub.push(2, dummy(2));
        sub.push(3, dummy(3)); // evicts record at t=1
        assert_eq!(sub.evicted(), 1);

        main.absorb(&mut sub);
        assert!(sub.is_empty());
        assert_eq!(sub.evicted(), 0);
        assert_eq!(main.len(), 2);
        assert_eq!(main.evicted(), 1);

        // Absorbing into a near-full main evicts there too.
        let mut more = TraceLog::with_capacity(4);
        more.push(10, dummy(10));
        more.push(11, dummy(11));
        more.push(12, dummy(12));
        main.absorb(&mut more);
        assert_eq!(main.len(), 4);
        assert_eq!(main.evicted(), 2);
        let times: Vec<u64> = main.iter().map(|r| r.t_ms).collect();
        assert_eq!(times, vec![3, 10, 11, 12]);
    }

    #[test]
    fn kind_filtering() {
        let mut log = TraceLog::default();
        log.push(
            5,
            TraceEvent::MessageTampered {
                topic: "/uav0/gps".into(),
                sender: "uav0".into(),
            },
        );
        log.push(
            6,
            TraceEvent::IdsAlert {
                detector: "hmac".into(),
                detail: "bad tag".into(),
            },
        );
        assert_eq!(log.count_kind("message_tampered"), 1);
        assert_eq!(log.count_kind("ids_alert"), 1);
        assert_eq!(log.count_kind("mode_transition"), 0);
        assert_eq!(log.of_kind("ids_alert").next().unwrap().t_ms, 6);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        TraceLog::with_capacity(0);
    }

    #[test]
    fn clear_keeps_eviction_counter() {
        let mut log = TraceLog::with_capacity(1);
        log.push(1, dummy(1));
        log.push(2, dummy(2));
        assert_eq!(log.evicted(), 1);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.evicted(), 1);
    }
}
