//! Named counters, gauges and fixed-bucket histograms.
//!
//! Everything lives in [`BTreeMap`]s keyed by `&'static str`-ish owned
//! names so iteration order — and therefore every rendered table and
//! snapshot comparison — is deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default histogram bucket upper edges, in the unit of the observed
/// value (the platform uses microseconds for phase timings and
/// milliseconds for bus latency). The last implicit bucket is +inf.
pub const DEFAULT_BUCKETS: [f64; 10] = [
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 10_000.0,
];

/// A fixed-bucket histogram: counts per upper-edge bucket plus exact
/// count/sum/min/max, so means are exact and quantiles bucket-accurate.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    edges: Vec<f64>,
    /// counts.len() == edges.len() + 1; the final slot is the overflow
    /// (+inf) bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new(&DEFAULT_BUCKETS)
    }
}

impl Histogram {
    /// Creates a histogram with the given ascending upper edges.
    ///
    /// # Panics
    /// Panics if `edges` is empty or not strictly ascending.
    pub fn new(edges: &[f64]) -> Self {
        assert!(
            !edges.is_empty(),
            "histogram needs at least one bucket edge"
        );
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly ascending"
        );
        Self {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .edges
            .iter()
            .position(|&edge| value <= edge)
            .unwrap_or(self.edges.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observed value, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observed value, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Bucket upper edges this histogram was built with.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Per-bucket counts; one longer than [`Self::edges`], the last
    /// entry being the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket-resolution quantile: the upper edge of the bucket in
    /// which the q-quantile observation falls (`q` clamped to [0, 1]).
    /// Observations beyond the last edge report the observed max.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if idx < self.edges.len() {
                    self.edges[idx]
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    /// Folds another histogram into this one. Bucket counts are added
    /// with saturating arithmetic, so the total observation count is
    /// conserved (up to saturation) and the merge is commutative and
    /// associative on every integer field. When the edge layouts differ,
    /// `other`'s buckets are re-observed at their upper edges (overflow
    /// at `other`'s max), which still conserves the total count.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.edges == other.edges {
            for (slot, &c) in self.counts.iter_mut().zip(&other.counts) {
                *slot = slot.saturating_add(c);
            }
        } else {
            for (idx, &c) in other.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let value = if idx < other.edges.len() {
                    other.edges[idx]
                } else {
                    other.max
                };
                let slot = self
                    .edges
                    .iter()
                    .position(|&edge| value <= edge)
                    .unwrap_or(self.edges.len());
                self.counts[slot] = self.counts[slot].saturating_add(c);
            }
        }
        self.count = self.count.saturating_add(other.count);
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Condenses the histogram to the summary stats used in snapshots.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
        }
    }
}

impl HistogramSummary {
    /// Folds another summary into this one. Counts saturate, sums add,
    /// extrema combine and the mean is recomputed; `p50`/`p99` keep the
    /// larger of the two quantile edges (a deterministic upper bound —
    /// exact quantile merging needs the full buckets, see
    /// [`Histogram::merge`]).
    pub fn merge(&mut self, other: &HistogramSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count = self.count.saturating_add(other.count);
        self.sum += other.sum;
        self.mean = self.sum / self.count as f64;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.p50 = self.p50.max(other.p50);
        self.p99 = self.p99.max(other.p99);
    }
}

/// Point-in-time condensed view of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: f64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    /// Bucket-resolution median (upper edge of the median's bucket).
    pub p50: f64,
    /// Bucket-resolution 99th percentile.
    pub p99: f64,
}

/// The registry: a flat, deterministic namespace of counters, gauges
/// and histograms. Names are dot-separated by convention
/// (`bus.dropped`, `tick.phase.sim_step`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments a counter by one, creating it at zero if absent.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to a counter, creating it at zero if absent. The
    /// name key is only allocated on first touch; steady-state updates
    /// hit the existing entry and allocate nothing.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(slot) = self.counters.get_mut(name) {
            *slot += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Overwrites a counter with an externally tracked total. Like
    /// [`Self::add`], allocation-free once the counter exists.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        if let Some(slot) = self.counters.get_mut(name) {
            *slot = value;
        } else {
            self.counters.insert(name.to_string(), value);
        }
    }

    /// Mirrors a cache's cumulative hit/miss counters as `{prefix}.hit`
    /// and `{prefix}.miss` — the convention the EDDI fast path uses
    /// (`eddi.cache.hit` / `eddi.cache.miss`). Values are absolute
    /// (set, not added), so callers can re-publish aggregated cache
    /// statistics every tick without double counting. The two key
    /// strings are built only the first time a prefix is published;
    /// afterwards the existing entries are found by an allocation-free
    /// range walk, keeping per-tick republication off the heap.
    pub fn set_cache_counters(&mut self, prefix: &str, hits: u64, misses: u64) {
        use std::ops::Bound;
        let mut hit_done = false;
        let mut miss_done = false;
        for (name, slot) in self
            .counters
            .range_mut::<str, _>((Bound::Included(prefix), Bound::Unbounded))
        {
            let Some(rest) = name.strip_prefix(prefix) else {
                break;
            };
            match rest {
                ".hit" => {
                    *slot = hits;
                    hit_done = true;
                }
                ".miss" => {
                    *slot = misses;
                    miss_done = true;
                }
                _ => {}
            }
            if hit_done && miss_done {
                break;
            }
        }
        if !hit_done {
            self.counters.insert(format!("{prefix}.hit"), hits);
        }
        if !miss_done {
            self.counters.insert(format!("{prefix}.miss"), misses);
        }
    }

    /// Sets a gauge to the latest value. Allocation-free once the gauge
    /// exists.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        if let Some(slot) = self.gauges.get_mut(name) {
            *slot = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Records an observation into the named histogram, creating it
    /// with [`DEFAULT_BUCKETS`] if absent. Once the histogram exists,
    /// observations allocate nothing.
    pub fn observe(&mut self, name: &str, value: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::default();
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Pre-registers a histogram with custom bucket edges; later
    /// [`Self::observe`] calls reuse it. No-op if the name exists.
    pub fn register_histogram(&mut self, name: &str, edges: &[f64]) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(edges));
    }

    /// Current counter value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation or registration created it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Counters whose name starts with `prefix`, in name order.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .iter()
            .filter(move |(name, _)| name.starts_with(prefix))
            .map(|(name, &v)| (name.as_str(), v))
    }

    /// Folds another registry into this one, the reduction step of a
    /// parallel sweep. Counters add with saturating semantics,
    /// histograms merge bucket-exactly ([`Histogram::merge`]), and
    /// gauges are last-write-wins: `other`'s value overwrites ours, so
    /// folding per-seed registries in ascending seed order leaves every
    /// gauge at its highest-seed value regardless of which worker
    /// finished first.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &v) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(v);
        }
        for (name, &v) in &other.gauges {
            self.gauges.insert(name.clone(), v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(h.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    e.get_mut().merge(h);
                }
            }
        }
    }

    /// Condenses the registry into a cheap, comparable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.summary()))
                .collect(),
        }
    }

    /// Renders a fixed-width text table of every metric, for the
    /// experiments binary's per-run summary.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "  {:<44} {:>12}", "counter", "value");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<44} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "  {:<44} {:>12}", "gauge", "value");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<44} {v:>12.3}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "  {:<44} {:>8} {:>10} {:>10} {:>10}",
                "histogram", "count", "mean", "p50", "max"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<44} {:>8} {:>10.2} {:>10.2} {:>10.2}",
                    name,
                    h.count(),
                    h.mean(),
                    h.quantile(0.5),
                    h.max()
                );
            }
        }
        out
    }
}

/// A point-in-time copy of the registry, with histograms condensed to
/// [`HistogramSummary`]. Cloneable and comparable, so it can ride
/// inside platform status snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// True when the snapshot holds no metric of any kind.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another snapshot into this one with the same semantics as
    /// [`MetricsRegistry::merge`]: saturating counters, last-write
    /// gauges, [`HistogramSummary::merge`] for histograms. Deterministic
    /// for a fixed fold order, so reducing per-seed snapshots in seed
    /// order yields identical aggregates at any worker count.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, &v) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(v);
        }
        for (name, &v) in &other.gauges {
            self.gauges.insert(name.clone(), v);
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .and_modify(|mine| mine.merge(h))
                .or_insert_with(|| h.clone());
        }
    }

    /// A copy with every wall-clock-derived metric removed
    /// ([`crate::span::WALL_CLOCK_PREFIXES`]). What remains is driven
    /// purely by simulation state and therefore bit-identical across
    /// replays and thread counts — the projection the determinism gates
    /// compare.
    pub fn without_wall_clock(&self) -> MetricsSnapshot {
        let keep = |name: &String| {
            !crate::span::WALL_CLOCK_PREFIXES
                .iter()
                .any(|p| name.starts_with(p))
        };
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|(n, _)| keep(n))
                .map(|(n, v)| (n.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(n, _)| keep(n))
                .map(|(n, v)| (n.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(n, _)| keep(n))
                .map(|(n, h)| (n.clone(), h.clone()))
                .collect(),
        }
    }

    /// Renders the same fixed-width table as
    /// [`MetricsRegistry::render_table`], from the condensed summaries.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "  {:<44} {:>12}", "counter", "value");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<44} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "  {:<44} {:>12}", "gauge", "value");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<44} {v:>12.3}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "  {:<44} {:>8} {:>10} {:>10} {:>10}",
                "histogram", "count", "mean", "p50", "max"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<44} {:>8} {:>10.2} {:>10.2} {:>10.2}",
                    name, h.count, h.mean, h.p50, h.max
                );
            }
        }
        out
    }

    /// The change since `prev`: counters report the *increment*,
    /// gauges report their new value when it changed bit-for-bit.
    /// Histograms are deliberately excluded — they condense to summaries
    /// that do not subtract meaningfully.
    ///
    /// This is the streaming projection of the registry: a subscriber
    /// that applies every delta in order reconstructs the counters and
    /// gauges of the final snapshot, and quiet intervals produce an
    /// [`MetricsDelta::is_empty`] delta the sender can skip entirely.
    pub fn delta_since(&self, prev: &MetricsSnapshot) -> MetricsDelta {
        let mut delta = MetricsDelta::default();
        for (name, &v) in &self.counters {
            let before = prev.counter(name);
            if v > before {
                delta.counters.insert(name.clone(), v - before);
            } else if v < before {
                // A counter moved backwards (a reset, which the live
                // registry never does): resynchronize on the absolute
                // value rather than invent a negative increment.
                delta.counters.insert(name.clone(), v);
            }
        }
        for (name, &v) in &self.gauges {
            if prev.gauge(name).map(f64::to_bits) != Some(v.to_bits()) {
                delta.gauges.insert(name.clone(), v);
            }
        }
        delta
    }

    /// Applies a delta produced by [`MetricsSnapshot::delta_since`]:
    /// counters accumulate, gauges overwrite.
    pub fn apply_delta(&mut self, delta: &MetricsDelta) {
        for (name, &v) in &delta.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(v);
        }
        for (name, &v) in &delta.gauges {
            self.gauges.insert(name.clone(), v);
        }
    }
}

/// The changed counters (as increments) and gauges (as new values)
/// between two [`MetricsSnapshot`]s — the unit the campaign service
/// streams to subscribers instead of re-sending whole snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsDelta {
    /// Counter increments since the previous snapshot.
    pub counters: BTreeMap<String, u64>,
    /// Gauges whose value changed, with their new value.
    pub gauges: BTreeMap<String, f64>,
}

impl MetricsDelta {
    /// True when nothing changed over the interval.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }

    /// Total number of changed entries.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_counters_set_absolute_hit_and_miss_values() {
        let mut m = MetricsRegistry::new();
        m.set_cache_counters("eddi.cache", 7, 3);
        assert_eq!(m.counter("eddi.cache.hit"), 7);
        assert_eq!(m.counter("eddi.cache.miss"), 3);
        // Re-publishing overwrites rather than accumulates.
        m.set_cache_counters("eddi.cache", 8, 3);
        assert_eq!(m.counter("eddi.cache.hit"), 8);
        assert_eq!(m.counter("eddi.cache.miss"), 3);
    }

    #[test]
    fn delta_reports_only_changes_and_replays_to_the_final_state() {
        let mut m = MetricsRegistry::new();
        m.inc("runs.completed");
        m.set_gauge("queue.depth", 3.0);
        let first = m.snapshot();
        // Quiet interval: empty delta.
        assert!(m.snapshot().delta_since(&first).is_empty());
        m.add("runs.completed", 4);
        m.inc("runs.failed");
        m.set_gauge("queue.depth", 1.0);
        let second = m.snapshot();
        let delta = second.delta_since(&first);
        assert_eq!(delta.counters.get("runs.completed"), Some(&4));
        assert_eq!(delta.counters.get("runs.failed"), Some(&1));
        assert_eq!(delta.gauges.get("queue.depth"), Some(&1.0));
        assert_eq!(delta.len(), 3);
        // Applying the delta stream reconstructs the final counters/gauges.
        let mut replayed = MetricsSnapshot::default();
        replayed.apply_delta(&first.delta_since(&MetricsSnapshot::default()));
        replayed.apply_delta(&delta);
        assert_eq!(replayed.counters, second.counters);
        assert_eq!(replayed.gauges, second.gauges);
    }

    #[test]
    fn delta_distinguishes_gauge_bit_patterns() {
        let mut a = MetricsSnapshot::default();
        a.gauges.insert("g".into(), 0.0);
        let mut b = MetricsSnapshot::default();
        b.gauges.insert("g".into(), -0.0);
        assert_eq!(b.delta_since(&a).gauges.get("g"), Some(&-0.0));
    }

    #[test]
    fn bucketing_places_values_on_edges_inclusively() {
        let mut h = Histogram::new(&[1.0, 5.0, 10.0]);
        h.observe(0.5); // bucket 0 (<= 1)
        h.observe(1.0); // bucket 0 (edge inclusive)
        h.observe(3.0); // bucket 1
        h.observe(10.0); // bucket 2 (edge inclusive)
        h.observe(11.0); // overflow
        assert_eq!(h.bucket_counts(), &[2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 25.5).abs() < 1e-9);
        assert!((h.mean() - 5.1).abs() < 1e-9);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 11.0);
    }

    #[test]
    fn quantile_reports_bucket_edges_and_overflow_max() {
        let mut h = Histogram::new(&[10.0, 100.0]);
        for _ in 0..90 {
            h.observe(5.0);
        }
        for _ in 0..9 {
            h.observe(50.0);
        }
        h.observe(1234.0);
        assert_eq!(h.quantile(0.5), 10.0);
        assert_eq!(h.quantile(0.95), 100.0);
        // The single overflow observation reports the true max.
        assert_eq!(h.quantile(1.0), 1234.0);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_edges_panic() {
        Histogram::new(&[5.0, 1.0]);
    }

    #[test]
    fn registry_counters_gauges_histograms_round_trip() {
        let mut m = MetricsRegistry::new();
        m.inc("a.x");
        m.add("a.x", 4);
        m.set_counter("a.y", 7);
        m.set_gauge("g", 2.5);
        m.observe("h", 3.0);
        m.observe("h", 300.0);

        assert_eq!(m.counter("a.x"), 5);
        assert_eq!(m.counter("a.y"), 7);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("g"), Some(2.5));
        assert_eq!(m.histogram("h").unwrap().count(), 2);

        let pref: Vec<_> = m.counters_with_prefix("a.").collect();
        assert_eq!(pref, vec![("a.x", 5), ("a.y", 7)]);

        let snap = m.snapshot();
        assert_eq!(snap.counter("a.x"), 5);
        assert_eq!(snap.histogram("h").unwrap().count, 2);
        assert_eq!(snap, m.snapshot());
    }

    #[test]
    fn register_histogram_keeps_custom_edges() {
        let mut m = MetricsRegistry::new();
        m.register_histogram("lat", &[0.5, 2.0]);
        m.observe("lat", 1.0);
        assert_eq!(m.histogram("lat").unwrap().edges(), &[0.5, 2.0]);
        // Re-registering must not clobber recorded data.
        m.register_histogram("lat", &[9.0]);
        assert_eq!(m.histogram("lat").unwrap().count(), 1);
    }

    #[test]
    fn histogram_merge_conserves_buckets_and_extrema() {
        let mut a = Histogram::new(&[1.0, 5.0, 10.0]);
        a.observe(0.5);
        a.observe(7.0);
        let mut b = Histogram::new(&[1.0, 5.0, 10.0]);
        b.observe(3.0);
        b.observe(100.0);
        a.merge(&b);
        assert_eq!(a.bucket_counts(), &[1, 1, 1, 1]);
        assert_eq!(a.count(), 4);
        assert!((a.sum() - 110.5).abs() < 1e-9);
        assert_eq!(a.min(), 0.5);
        assert_eq!(a.max(), 100.0);
        // Merging an empty histogram is a no-op.
        a.merge(&Histogram::new(&[1.0, 5.0, 10.0]));
        assert_eq!(a.count(), 4);
    }

    #[test]
    fn histogram_merge_rebuckets_on_edge_mismatch() {
        let mut a = Histogram::new(&[10.0, 100.0]);
        a.observe(5.0);
        let mut b = Histogram::new(&[2.0]);
        b.observe(1.0); // lands on edge 2.0 -> a's <=10 bucket
        b.observe(500.0); // overflow, re-observed at b's max -> a's overflow
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket_counts(), &[2, 0, 1]);
        assert_eq!(a.max(), 500.0);
    }

    #[test]
    fn registry_merge_saturates_counters_and_last_writes_gauges() {
        let mut a = MetricsRegistry::new();
        a.add("c", 5);
        a.set_counter("near_max", u64::MAX - 1);
        a.set_gauge("g", 1.0);
        a.observe("h", 2.0);
        let mut b = MetricsRegistry::new();
        b.add("c", 3);
        b.add("only_b", 1);
        b.set_counter("near_max", 10);
        b.set_gauge("g", 7.0);
        b.observe("h", 20.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 8);
        assert_eq!(a.counter("only_b"), 1);
        assert_eq!(a.counter("near_max"), u64::MAX);
        assert_eq!(a.gauge("g"), Some(7.0), "gauge merge is last-write");
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn snapshot_merge_matches_registry_merge_on_counters() {
        let mut a = MetricsRegistry::new();
        a.add("x", 2);
        a.observe("h", 1.0);
        let mut b = MetricsRegistry::new();
        b.add("x", 3);
        b.observe("h", 9.0);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        a.merge(&b);
        assert_eq!(snap.counters, a.snapshot().counters);
        assert_eq!(snap.histogram("h").unwrap().count, 2);
        assert_eq!(snap.histogram("h").unwrap().max, 9.0);
    }

    #[test]
    fn without_wall_clock_strips_phase_timings_only() {
        let mut m = MetricsRegistry::new();
        m.inc("bus.published");
        m.observe("tick.phase.sim_step", 3.0);
        m.observe("tick.total", 9.0);
        m.observe("bus.latency_ms", 1.0);
        let d = m.snapshot().without_wall_clock();
        assert_eq!(d.counter("bus.published"), 1);
        assert!(d.histogram("tick.phase.sim_step").is_none());
        assert!(d.histogram("tick.total").is_none());
        assert!(d.histogram("bus.latency_ms").is_some());
    }

    #[test]
    fn render_table_lists_every_metric_name() {
        let mut m = MetricsRegistry::new();
        m.inc("bus.dropped");
        m.set_gauge("fleet.alive", 3.0);
        m.observe("tick.phase.sim_step", 12.0);
        let table = m.render_table();
        assert!(table.contains("bus.dropped"));
        assert!(table.contains("fleet.alive"));
        assert!(table.contains("tick.phase.sim_step"));
    }
}
