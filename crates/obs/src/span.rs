//! Phase-scoped timing for the platform tick loop.
//!
//! A [`TickSpan`] is opened at the top of `Platform::step`, moved
//! through the loop's phases with [`TickSpan::enter`], and flushed into
//! a [`MetricsRegistry`] at the bottom with [`TickSpan::finish`]. It
//! accumulates laps locally and only touches the registry once, so the
//! platform can hold `&mut` borrows of its subsystems mid-tick without
//! fighting the metrics borrow.

use crate::metrics::MetricsRegistry;
use std::time::{Duration, Instant};

/// Canonical phase names of the platform tick loop, in execution
/// order. Kept here so the instrumentation, the docs and the
/// experiments summary all agree on spelling.
pub mod phase {
    pub const SIM_STEP: &str = "sim_step";
    pub const SENSE_PUBLISH: &str = "sense_publish";
    pub const EDDI_EVAL: &str = "eddi_eval";
    pub const AIRSPACE: &str = "airspace";
    pub const BUS_STEP: &str = "bus_step";
    pub const SECURITY: &str = "security";
    pub const CL_LANDING: &str = "cl_landing";
    pub const CONSERT_COMPOSE: &str = "consert_compose";
    pub const DECIDE: &str = "decide";
    pub const BOOKKEEPING: &str = "bookkeeping";

    /// All phases in tick order.
    pub const ALL: [&str; 10] = [
        SIM_STEP,
        SENSE_PUBLISH,
        EDDI_EVAL,
        AIRSPACE,
        BUS_STEP,
        SECURITY,
        CL_LANDING,
        CONSERT_COMPOSE,
        DECIDE,
        BOOKKEEPING,
    ];
}

/// Histogram name for a phase's per-tick duration in microseconds.
pub fn phase_metric(name: &str) -> String {
    format!("tick.phase.{name}")
}

/// Name prefixes of every metric fed from the wall clock rather than
/// simulation state (the phase timings this module flushes). Everything
/// else in the registry is bit-deterministic under a fixed seed;
/// determinism gates strip these prefixes before comparing
/// (see `MetricsSnapshot::without_wall_clock`).
pub const WALL_CLOCK_PREFIXES: [&str; 2] = ["tick.phase.", "tick.total"];

/// A scoped, phase-segmented timer over one platform tick.
#[derive(Debug)]
pub struct TickSpan {
    started: Instant,
    current: Option<(&'static str, Instant)>,
    laps: Vec<(&'static str, Duration)>,
}

impl TickSpan {
    /// Starts the span; the whole-tick clock runs from here.
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
            current: None,
            laps: Vec::with_capacity(phase::ALL.len()),
        }
    }

    /// Closes the previous phase (if any) and opens `name`. Re-entering
    /// a name records a second lap; [`Self::finish`] merges them.
    pub fn enter(&mut self, name: &'static str) {
        let now = Instant::now();
        if let Some((prev, since)) = self.current.take() {
            self.laps.push((prev, now.duration_since(since)));
        }
        self.current = Some((name, now));
    }

    /// Closes the current phase without opening another — for gaps the
    /// loop doesn't want attributed to any phase.
    pub fn exit(&mut self) {
        let now = Instant::now();
        if let Some((prev, since)) = self.current.take() {
            self.laps.push((prev, now.duration_since(since)));
        }
    }

    /// Phases recorded so far (closed laps only), in entry order.
    pub fn laps(&self) -> &[(&'static str, Duration)] {
        &self.laps
    }

    /// Closes any open phase and flushes one histogram observation per
    /// phase (microseconds, merged across repeat laps) plus a
    /// `tick.total` observation into `metrics`.
    pub fn finish(mut self, metrics: &mut MetricsRegistry) {
        self.exit();
        let total = self.started.elapsed();
        // Merge repeat laps in-place, preserving first-entry order.
        let mut merged: Vec<(&'static str, Duration)> = Vec::with_capacity(self.laps.len());
        for (name, dur) in self.laps.drain(..) {
            match merged.iter_mut().find(|(n, _)| *n == name) {
                Some((_, acc)) => *acc += dur,
                None => merged.push((name, dur)),
            }
        }
        for (name, dur) in merged {
            metrics.observe(&phase_metric(name), dur.as_secs_f64() * 1e6);
        }
        metrics.observe("tick.total", total.as_secs_f64() * 1e6);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_records_one_sample_per_phase_plus_total() {
        let mut m = MetricsRegistry::new();
        let mut span = TickSpan::start();
        span.enter(phase::SIM_STEP);
        span.enter(phase::BUS_STEP);
        span.finish(&mut m);

        assert_eq!(m.histogram("tick.phase.sim_step").unwrap().count(), 1);
        assert_eq!(m.histogram("tick.phase.bus_step").unwrap().count(), 1);
        assert_eq!(m.histogram("tick.total").unwrap().count(), 1);
    }

    #[test]
    fn reentered_phase_merges_into_one_observation() {
        let mut m = MetricsRegistry::new();
        let mut span = TickSpan::start();
        span.enter(phase::EDDI_EVAL);
        span.enter(phase::BUS_STEP);
        span.enter(phase::EDDI_EVAL);
        span.finish(&mut m);
        assert_eq!(m.histogram("tick.phase.eddi_eval").unwrap().count(), 1);
    }

    #[test]
    fn exit_leaves_untimed_gap() {
        let mut m = MetricsRegistry::new();
        let mut span = TickSpan::start();
        span.enter(phase::SIM_STEP);
        span.exit();
        assert_eq!(span.laps().len(), 1);
        span.finish(&mut m);
        assert_eq!(m.histogram("tick.phase.sim_step").unwrap().count(), 1);
        // The gap after exit() belongs to no phase.
        assert!(m.histogram("tick.total").is_some());
    }

    #[test]
    fn phase_list_matches_metric_names() {
        assert_eq!(phase::ALL[0], phase::SIM_STEP);
        assert_eq!(phase_metric(phase::DECIDE), "tick.phase.decide");
    }
}
