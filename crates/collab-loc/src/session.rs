//! The CL session and the guide-to-safe-landing controller.
//!
//! A [`CollabSession`] owns the collaborating agents, fuses their
//! simultaneous sightings, smooths the fused track with a Kalman filter,
//! and keeps a synchronized fix database (the "Database sync" of Fig. 3).
//! [`LandingGuidance`] consumes session fixes to steer the affected,
//! GPS-denied UAV onto a precise landing point — the Fig. 7 mitigation.

use crate::agent::CollaborativeAgent;
use crate::fusion::fuse_estimates;
use crate::geometry::PositionEstimate;
use sesame_types::geo::{Enu, GeoPoint, Vec3};
use sesame_types::time::SimTime;
use sesame_vision::tracking::KalmanTracker;

/// One entry of the synchronized fix database.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixRecord {
    /// When the fix was produced.
    pub time: SimTime,
    /// The fused, smoothed estimate.
    pub estimate: PositionEstimate,
    /// How many agents contributed sightings.
    pub contributors: usize,
}

/// A running collaborative-localization session for one affected UAV.
#[derive(Debug)]
pub struct CollabSession {
    agents: Vec<CollaborativeAgent>,
    anchor: GeoPoint,
    tracker: Option<KalmanTracker>,
    database: Vec<FixRecord>,
    last_time: Option<SimTime>,
}

impl CollabSession {
    /// Starts a session with the given agents, anchored near the affected
    /// UAV's last known position (used as the local ENU origin).
    ///
    /// # Panics
    ///
    /// Panics if no agents are supplied — CL needs at least one
    /// collaborator, and the paper's deployment uses two.
    pub fn new(agents: Vec<CollaborativeAgent>, anchor: GeoPoint) -> Self {
        assert!(!agents.is_empty(), "a CL session needs collaborators");
        CollabSession {
            agents,
            anchor,
            tracker: None,
            database: Vec::new(),
            last_time: None,
        }
    }

    /// Number of collaborating agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// The synchronized fix database.
    pub fn database(&self) -> &[FixRecord] {
        &self.database
    }

    /// One CL round: every agent tries to sight the affected UAV from its
    /// own position; sightings are fused and smoothed. Returns the new fix
    /// if at least one agent saw the target.
    ///
    /// `observer_positions` must be one position per agent (same order as
    /// construction).
    ///
    /// # Panics
    ///
    /// Panics if `observer_positions.len()` differs from the agent count.
    pub fn step(
        &mut self,
        now: SimTime,
        observer_positions: &[GeoPoint],
        affected_true_position: &GeoPoint,
    ) -> Option<PositionEstimate> {
        assert_eq!(
            observer_positions.len(),
            self.agents.len(),
            "one observer position per agent"
        );
        let estimates: Vec<PositionEstimate> = self
            .agents
            .iter_mut()
            .zip(observer_positions.iter())
            .filter_map(|(agent, pos)| agent.observe(pos, affected_true_position))
            .collect();
        let contributors = estimates.len();
        let fused = fuse_estimates(&estimates)?;
        self.smooth_and_record(now, fused, contributors)
    }

    /// The latest fix, if any.
    pub fn latest(&self) -> Option<&FixRecord> {
        self.database.last()
    }

    /// One CL round combining vision sightings with RSSI trilateration —
    /// the comm-based localization of Fig. 1 backing up the cameras. The
    /// radio ranges each observer↔target link; with ≥3 observers the
    /// trilaterated fix joins the vision estimates in the fusion (with a
    /// conservative σ, RSSI geometry being coarse).
    ///
    /// # Panics
    ///
    /// Panics if `observer_positions.len()` differs from the agent count.
    pub fn step_with_rssi(
        &mut self,
        now: SimTime,
        observer_positions: &[GeoPoint],
        affected_true_position: &GeoPoint,
        radio: &mut crate::rssi::RssiRanging,
    ) -> Option<PositionEstimate> {
        assert_eq!(
            observer_positions.len(),
            self.agents.len(),
            "one observer position per agent"
        );
        let mut estimates: Vec<PositionEstimate> = self
            .agents
            .iter_mut()
            .zip(observer_positions.iter())
            .filter_map(|(agent, pos)| agent.observe(pos, affected_true_position))
            .collect();
        if observer_positions.len() >= 3 {
            let measurements: Vec<crate::rssi::RangeMeasurement> = observer_positions
                .iter()
                .map(|obs| crate::rssi::RangeMeasurement {
                    anchor: *obs,
                    range_m: radio
                        .measure_range(obs.distance_3d_m(affected_true_position).max(0.1)),
                })
                .collect();
            if let Some(fix) = crate::rssi::trilaterate(&measurements, affected_true_position.alt_m)
            {
                estimates.push(PositionEstimate {
                    position: fix,
                    sigma_m: 8.0,
                });
            }
        }
        let contributors = estimates.len();
        let fused = crate::fusion::fuse_estimates(&estimates)?;
        self.smooth_and_record(now, fused, contributors)
    }

    fn smooth_and_record(
        &mut self,
        now: SimTime,
        fused: PositionEstimate,
        contributors: usize,
    ) -> Option<PositionEstimate> {
        let dt = self
            .last_time
            .map(|t| now.since(t).as_secs_f64())
            .unwrap_or(0.0);
        self.last_time = Some(now);
        let z: Vec3 = fused.position.to_enu(&self.anchor).into();
        let r = fused.sigma_m * fused.sigma_m;
        let tracker = self.tracker.get_or_insert_with(|| KalmanTracker::new(z, r));
        if dt > 0.0 {
            tracker.predict(dt);
        }
        tracker.update(z, r);
        let smoothed_enu: Enu = tracker.position().into();
        let sigma = tracker.position_sigma().norm() / 3f64.sqrt();
        let estimate = PositionEstimate {
            position: GeoPoint::from_enu(&self.anchor, smoothed_enu),
            sigma_m: sigma.max(0.05),
        };
        self.database.push(FixRecord {
            time: now,
            estimate,
            contributors,
        });
        Some(estimate)
    }
}

/// Steers the affected UAV to a safe-landing point using CL fixes instead
/// of GPS.
#[derive(Debug, Clone)]
pub struct LandingGuidance {
    target: GeoPoint,
    /// Horizontal speed command, m/s.
    pub approach_mps: f64,
    /// Descent rate once overhead, m/s.
    pub descent_mps: f64,
    /// Horizontal radius that counts as "overhead", metres.
    pub capture_radius_m: f64,
}

impl LandingGuidance {
    /// Guidance toward a ground `target`.
    pub fn new(target: GeoPoint) -> Self {
        LandingGuidance {
            target: target.with_alt(0.0),
            approach_mps: 3.0,
            descent_mps: 1.5,
            capture_radius_m: 2.0,
        }
    }

    /// The landing target.
    pub fn target(&self) -> GeoPoint {
        self.target
    }

    /// The velocity command (ENU m/s) for the affected UAV given its
    /// current CL-estimated position: close the horizontal gap first, then
    /// descend.
    pub fn velocity_command(&self, estimated: &GeoPoint) -> Vec3 {
        let enu = self.target.to_enu(estimated);
        let horiz = Vec3::new(enu.east_m, enu.north_m, 0.0);
        if horiz.norm() > self.capture_radius_m {
            let dir = horiz.normalized();
            let speed = self.approach_mps.min(horiz.norm());
            Vec3::new(dir.x * speed, dir.y * speed, 0.0)
        } else if estimated.alt_m > 0.2 {
            Vec3::new(0.0, 0.0, -self.descent_mps.min(estimated.alt_m))
        } else {
            Vec3::zero()
        }
    }

    /// Whether the estimated position counts as landed on target.
    pub fn is_landed(&self, estimated: &GeoPoint) -> bool {
        estimated.alt_m <= 0.2
            && self.target.haversine_distance_m(estimated) <= self.capture_radius_m * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agents() -> Vec<CollaborativeAgent> {
        vec![
            CollaborativeAgent::new("collab1", 11),
            CollaborativeAgent::new("collab2", 22),
        ]
    }

    fn anchor() -> GeoPoint {
        GeoPoint::new(35.0, 33.0, 0.0)
    }

    #[test]
    fn session_tracks_static_target_tightly() {
        let affected = anchor().destination(45.0, 40.0).with_alt(30.0);
        let obs1 = anchor().destination(0.0, 20.0).with_alt(32.0);
        let obs2 = anchor().destination(90.0, 25.0).with_alt(28.0);
        let mut session = CollabSession::new(agents(), anchor());
        let mut last = None;
        for s in 1..=100u64 {
            if let Some(fix) = session.step(SimTime::from_millis(s * 100), &[obs1, obs2], &affected)
            {
                last = Some(fix);
            }
        }
        let fix = last.expect("the target is close; fixes must arrive");
        let err = fix.position.distance_3d_m(&affected);
        assert!(err < 3.0, "CL error {err} m");
        assert!(session.database().len() > 50);
        assert!(session.latest().unwrap().contributors >= 1);
    }

    #[test]
    fn moving_target_is_followed() {
        let mut session = CollabSession::new(agents(), anchor());
        let obs1 = anchor().with_alt(35.0);
        let obs2 = anchor().destination(90.0, 30.0).with_alt(35.0);
        let mut err_sum = 0.0;
        let mut n = 0;
        for s in 1..=200u64 {
            let target = anchor()
                .destination(90.0, 10.0 + s as f64 * 0.2)
                .with_alt(30.0);
            if s > 50 {
                if let Some(fix) =
                    session.step(SimTime::from_millis(s * 100), &[obs1, obs2], &target)
                {
                    err_sum += fix.position.distance_3d_m(&target);
                    n += 1;
                }
            } else {
                let _ = session.step(SimTime::from_millis(s * 100), &[obs1, obs2], &target);
            }
        }
        assert!(n > 50);
        let mean = err_sum / n as f64;
        assert!(mean < 5.0, "mean tracking error {mean}");
    }

    #[test]
    fn out_of_range_target_yields_no_fix() {
        let mut session = CollabSession::new(agents(), anchor());
        let far = anchor().destination(0.0, 5000.0).with_alt(30.0);
        let obs = [anchor().with_alt(30.0), anchor().with_alt(30.0)];
        for s in 1..=20u64 {
            assert!(session
                .step(SimTime::from_millis(s * 100), &obs, &far)
                .is_none());
        }
        assert!(session.database().is_empty());
    }

    #[test]
    fn guidance_closes_on_target_then_descends() {
        let target = anchor().destination(90.0, 30.0);
        let g = LandingGuidance::new(target);
        let away = anchor().with_alt(25.0);
        let v = g.velocity_command(&away);
        assert!(v.x > 0.0, "move east toward the pad: {v:?}");
        assert_eq!(v.z, 0.0, "no descent while off target");
        let overhead = target.with_alt(20.0);
        let v2 = g.velocity_command(&overhead);
        assert!(v2.z < 0.0, "descend overhead: {v2:?}");
        assert!(v2.x.abs() < 1e-9);
        let landed = target.with_alt(0.0);
        assert_eq!(g.velocity_command(&landed), Vec3::zero());
        assert!(g.is_landed(&landed));
        assert!(!g.is_landed(&overhead));
    }

    #[test]
    fn full_guided_landing_without_gps() {
        // Integrate the affected UAV purely on CL fixes: true position is
        // only used by the *observers'* cameras, never by the controller.
        let mut session = CollabSession::new(agents(), anchor());
        let pad = anchor().destination(90.0, 25.0);
        let guidance = LandingGuidance::new(pad);
        let obs1 = anchor().destination(0.0, 15.0).with_alt(35.0);
        let obs2 = anchor().destination(90.0, 45.0).with_alt(35.0);
        let mut true_pos = anchor().destination(45.0, 40.0).with_alt(30.0);
        let dt = 0.1;
        let mut landed_at = None;
        for s in 1..=4000u64 {
            let now = SimTime::from_millis(s * 100);
            let fix = session.step(now, &[obs1, obs2], &true_pos);
            if let Some(fix) = fix {
                let v = guidance.velocity_command(&fix.position);
                let step = v * dt;
                true_pos = GeoPoint::from_enu(&true_pos, step.into());
                if true_pos.alt_m < 0.0 {
                    true_pos = true_pos.with_alt(0.0);
                }
                if guidance.is_landed(&fix.position) {
                    landed_at = Some(true_pos);
                    break;
                }
            }
        }
        let final_pos = landed_at.expect("guided landing must complete");
        let miss = pad.haversine_distance_m(&final_pos);
        assert!(miss < 6.0, "landing miss {miss} m");
        assert!(final_pos.alt_m < 1.0);
    }

    #[test]
    fn rssi_backup_produces_fixes_when_cameras_miss() {
        // Blind the cameras by placing the target beyond visual range but
        // keep three radio observers: the comm-localization branch alone
        // must still produce (coarser) fixes.
        let agents = vec![
            CollaborativeAgent::new("c1", 41),
            CollaborativeAgent::new("c2", 42),
            CollaborativeAgent::new("c3", 43),
        ];
        let mut session = CollabSession::new(agents, anchor());
        let target = anchor().destination(45.0, 400.0).with_alt(30.0);
        let observers = [
            target.destination(0.0, 60.0).with_alt(35.0),
            target.destination(120.0, 60.0).with_alt(35.0),
            target.destination(240.0, 60.0).with_alt(35.0),
        ];
        let mut radio = crate::rssi::RssiRanging::new(5);
        radio.shadowing_db = 0.5;
        let mut errors = Vec::new();
        for s in 1..=150u64 {
            if let Some(fix) = session.step_with_rssi(
                SimTime::from_millis(s * 100),
                &observers,
                &target,
                &mut radio,
            ) {
                if s > 50 {
                    errors.push(fix.position.haversine_distance_m(&target));
                }
            }
        }
        assert!(!errors.is_empty());
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        assert!(mean < 10.0, "mean CL error with RSSI backup {mean} m");
    }

    #[test]
    #[should_panic(expected = "collaborators")]
    fn empty_session_panics() {
        let _ = CollabSession::new(vec![], anchor());
    }

    #[test]
    #[should_panic(expected = "one observer position per agent")]
    fn mismatched_observers_panic() {
        let mut s = CollabSession::new(agents(), anchor());
        let _ = s.step(SimTime::ZERO, &[anchor()], &anchor());
    }
}
