//! Collaborative Localization (CL) for GPS-denied UAVs.
//!
//! Reproduces §III-C of the paper: "Collaborative Localization enables
//! multi-UAVs to collaboratively determine and enhance their position and
//! navigation, particularly in scenarios involving GPS signal loss or
//! sensor inaccuracies due to security attacks. … Nearby UAVs equipped
//! with Jetson onboard devices and RGB cameras detect and calculate
//! distances to affected UAVs in real-time using tinyYOLOv4 and monocular
//! depth estimation. The final position is refined through trigonometric
//! calculations and the Haversine formula."
//!
//! * [`geometry`] — one sighting (bearing/elevation/range) → a position
//!   estimate with covariance, via exactly those trigonometric +
//!   haversine-destination calculations;
//! * [`fusion`] — inverse-variance fusion of simultaneous estimates from
//!   multiple collaborators;
//! * [`agent`] — a collaborative agent (vision detector + geometry);
//! * [`session`] — the CL session: ≥2 collaborators tracking the affected
//!   UAV with a Kalman smoother and a synchronized fix database, plus the
//!   guide-to-safe-landing controller of Fig. 7.

pub mod agent;
pub mod fusion;
pub mod geometry;
pub mod rssi;
pub mod session;

pub use agent::CollaborativeAgent;
pub use fusion::fuse_estimates;
pub use geometry::PositionEstimate;
pub use rssi::{trilaterate, RangeMeasurement, RssiRanging};
pub use session::{CollabSession, LandingGuidance};
