//! Inverse-variance fusion of simultaneous position estimates.

use crate::geometry::PositionEstimate;
use sesame_types::geo::{Enu, GeoPoint};

/// Fuses simultaneous estimates by inverse-variance weighting in a local
/// ENU frame anchored at the first estimate. Returns `None` for an empty
/// slice.
///
/// The fused σ follows the standard combination
/// `1/σ² = Σ 1/σᵢ²` — two observers are strictly better than one.
///
/// # Examples
///
/// ```
/// use sesame_collab_loc::fusion::fuse_estimates;
/// use sesame_collab_loc::geometry::PositionEstimate;
/// use sesame_types::geo::GeoPoint;
///
/// let a = PositionEstimate { position: GeoPoint::new(35.0, 33.0, 30.0), sigma_m: 2.0 };
/// let b = PositionEstimate { position: GeoPoint::new(35.0, 33.0, 32.0), sigma_m: 2.0 };
/// let fused = fuse_estimates(&[a, b]).unwrap();
/// assert!((fused.position.alt_m - 31.0).abs() < 1e-9);
/// assert!(fused.sigma_m < 2.0);
/// ```
pub fn fuse_estimates(estimates: &[PositionEstimate]) -> Option<PositionEstimate> {
    let first = estimates.first()?;
    let anchor = first.position;
    let mut weight_sum = 0.0;
    let (mut east, mut north, mut up) = (0.0, 0.0, 0.0);
    for e in estimates {
        let w = 1.0 / (e.sigma_m * e.sigma_m).max(1e-9);
        let enu = e.position.to_enu(&anchor);
        east += w * enu.east_m;
        north += w * enu.north_m;
        up += w * enu.up_m;
        weight_sum += w;
    }
    let fused_enu = Enu::new(east / weight_sum, north / weight_sum, up / weight_sum);
    Some(PositionEstimate {
        position: GeoPoint::from_enu(&anchor, fused_enu),
        sigma_m: (1.0 / weight_sum).sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(p: GeoPoint, sigma: f64) -> PositionEstimate {
        PositionEstimate {
            position: p,
            sigma_m: sigma,
        }
    }

    #[test]
    fn empty_input_gives_none() {
        assert!(fuse_estimates(&[]).is_none());
    }

    #[test]
    fn single_estimate_passes_through() {
        let p = GeoPoint::new(35.0, 33.0, 40.0);
        let fused = fuse_estimates(&[est(p, 3.0)]).unwrap();
        assert!(fused.position.distance_3d_m(&p) < 1e-9);
        assert!((fused.sigma_m - 3.0).abs() < 1e-9);
    }

    #[test]
    fn equal_weights_average() {
        let a = GeoPoint::new(35.0, 33.0, 30.0);
        let b = a.destination(90.0, 10.0);
        let fused = fuse_estimates(&[est(a, 2.0), est(b, 2.0)]).unwrap();
        assert!((a.haversine_distance_m(&fused.position) - 5.0).abs() < 0.01);
        assert!((fused.sigma_m - 2.0 / 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn tighter_estimate_dominates() {
        let a = GeoPoint::new(35.0, 33.0, 30.0);
        let b = a.destination(90.0, 10.0);
        let fused = fuse_estimates(&[est(a, 1.0), est(b, 10.0)]).unwrap();
        // Weighting 100:1 pulls the fix to within ~0.1 m of a.
        assert!(a.haversine_distance_m(&fused.position) < 0.2);
    }

    #[test]
    fn more_observers_tighten_sigma() {
        let p = GeoPoint::new(35.0, 33.0, 30.0);
        let two = fuse_estimates(&[est(p, 3.0), est(p, 3.0)]).unwrap().sigma_m;
        let four = fuse_estimates(&[est(p, 3.0); 4]).unwrap().sigma_m;
        assert!(four < two);
    }
}
