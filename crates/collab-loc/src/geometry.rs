//! Sighting geometry: bearing / elevation / range → position.

use sesame_types::geo::GeoPoint;
use sesame_vision::drone_detect::DroneObservation;

/// A position estimate with an isotropic 1-σ accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionEstimate {
    /// Estimated position of the target.
    pub position: GeoPoint,
    /// 1-σ accuracy in metres.
    pub sigma_m: f64,
}

/// Converts one sighting from `observer` into a position estimate: the
/// horizontal distance is `range·cos(elevation)`, the target lies at that
/// distance along the measured bearing (haversine destination), and the
/// altitude offset is `range·sin(elevation)`.
///
/// The reported σ combines the range noise with the cross-range error
/// `range·σ_angle`.
///
/// # Examples
///
/// ```
/// use sesame_types::geo::GeoPoint;
/// use sesame_vision::drone_detect::DroneObservation;
/// use sesame_collab_loc::geometry::estimate_from_observation;
///
/// let me = GeoPoint::new(35.0, 33.0, 30.0);
/// let obs = DroneObservation {
///     bearing_deg: 90.0,
///     elevation_deg: 0.0,
///     range_m: 50.0,
///     range_sigma_m: 3.0,
///     angle_sigma_deg: 1.5,
/// };
/// let est = estimate_from_observation(&me, &obs);
/// assert!((est.position.alt_m - 30.0).abs() < 1e-9);
/// assert!((me.haversine_distance_m(&est.position) - 50.0).abs() < 1e-6);
/// ```
pub fn estimate_from_observation(observer: &GeoPoint, obs: &DroneObservation) -> PositionEstimate {
    let elev = obs.elevation_deg.to_radians();
    let horizontal = obs.range_m * elev.cos();
    let vertical = obs.range_m * elev.sin();
    let position = observer
        .destination(obs.bearing_deg, horizontal)
        .with_alt(observer.alt_m + vertical);
    let cross_range = obs.range_m * obs.angle_sigma_deg.to_radians();
    let sigma = (obs.range_sigma_m * obs.range_sigma_m + cross_range * cross_range).sqrt();
    PositionEstimate {
        position,
        sigma_m: sigma.max(0.1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observer() -> GeoPoint {
        GeoPoint::new(35.0, 33.0, 30.0)
    }

    fn obs(bearing: f64, elevation: f64, range: f64) -> DroneObservation {
        DroneObservation {
            bearing_deg: bearing,
            elevation_deg: elevation,
            range_m: range,
            range_sigma_m: 2.0,
            angle_sigma_deg: 1.5,
        }
    }

    #[test]
    fn level_sighting_preserves_altitude() {
        let est = estimate_from_observation(&observer(), &obs(0.0, 0.0, 40.0));
        assert!((est.position.alt_m - 30.0).abs() < 1e-9);
        assert!((observer().haversine_distance_m(&est.position) - 40.0).abs() < 1e-6);
    }

    #[test]
    fn elevated_sighting_raises_target() {
        let est = estimate_from_observation(&observer(), &obs(0.0, 30.0, 40.0));
        let expected_up = 40.0 * 30f64.to_radians().sin();
        let expected_horiz = 40.0 * 30f64.to_radians().cos();
        assert!((est.position.alt_m - (30.0 + expected_up)).abs() < 1e-9);
        assert!((observer().haversine_distance_m(&est.position) - expected_horiz).abs() < 1e-6);
    }

    #[test]
    fn depressed_sighting_lowers_target() {
        let est = estimate_from_observation(&observer(), &obs(180.0, -45.0, 20.0));
        assert!(est.position.alt_m < 30.0);
    }

    #[test]
    fn round_trip_against_true_geometry() {
        // Build a true target, compute the exact observation, reconstruct.
        let target = observer().destination(73.0, 60.0).with_alt(45.0);
        let horiz = observer().haversine_distance_m(&target);
        let elev = ((target.alt_m - observer().alt_m) / horiz)
            .atan()
            .to_degrees();
        let range = observer().distance_3d_m(&target);
        let est = estimate_from_observation(&observer(), &obs(73.0, elev, range));
        assert!(
            est.position.distance_3d_m(&target) < 0.1,
            "reconstruction error {}",
            est.position.distance_3d_m(&target)
        );
    }

    #[test]
    fn sigma_grows_with_range() {
        let near = estimate_from_observation(&observer(), &obs(0.0, 0.0, 10.0));
        let far = estimate_from_observation(&observer(), &obs(0.0, 0.0, 100.0));
        assert!(far.sigma_m > near.sigma_m);
    }
}
