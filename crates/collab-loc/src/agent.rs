//! A collaborative agent: camera + geometry.
//!
//! Each assisting UAV of Fig. 2 runs "Detection & Tracking" and the
//! "Collaborative Algorithm" on its onboard processing unit: sight the
//! affected UAV with the drone detector, convert the sighting to a
//! position estimate, publish it to the session.

use crate::geometry::{estimate_from_observation, PositionEstimate};
use sesame_types::geo::GeoPoint;
use sesame_vision::drone_detect::DroneDetector;

/// One assisting UAV in a CL session.
#[derive(Debug)]
pub struct CollaborativeAgent {
    name: String,
    detector: DroneDetector,
    observations_made: u64,
    detections: u64,
}

impl CollaborativeAgent {
    /// Creates an agent with a seeded detector.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        CollaborativeAgent {
            name: name.into(),
            detector: DroneDetector::new(seed),
            observations_made: 0,
            detections: 0,
        }
    }

    /// The agent's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attempts to sight the affected UAV from the agent's current
    /// position; returns a position estimate when the detector fires.
    pub fn observe(
        &mut self,
        own_position: &GeoPoint,
        affected_true_position: &GeoPoint,
    ) -> Option<PositionEstimate> {
        self.observations_made += 1;
        let obs = self
            .detector
            .observe(own_position, affected_true_position)?;
        self.detections += 1;
        Some(estimate_from_observation(own_position, &obs))
    }

    /// Detection rate so far (detections / attempts).
    pub fn detection_rate(&self) -> f64 {
        if self.observations_made == 0 {
            0.0
        } else {
            self.detections as f64 / self.observations_made as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_target_is_usually_sighted() {
        let mut agent = CollaborativeAgent::new("collab1", 3);
        let me = GeoPoint::new(35.0, 33.0, 30.0);
        let target = me.destination(45.0, 30.0).with_alt(35.0);
        let mut errors = Vec::new();
        for _ in 0..500 {
            if let Some(est) = agent.observe(&me, &target) {
                errors.push(est.position.distance_3d_m(&target));
            }
        }
        assert!(
            agent.detection_rate() > 0.5,
            "rate {}",
            agent.detection_rate()
        );
        let mean_err = errors.iter().sum::<f64>() / errors.len() as f64;
        assert!(mean_err < 5.0, "mean error {mean_err}");
    }

    #[test]
    fn far_target_is_never_sighted() {
        let mut agent = CollaborativeAgent::new("collab1", 3);
        let me = GeoPoint::new(35.0, 33.0, 30.0);
        let target = me.destination(45.0, 3000.0);
        for _ in 0..100 {
            assert!(agent.observe(&me, &target).is_none());
        }
        assert_eq!(agent.detection_rate(), 0.0);
        assert_eq!(agent.name(), "collab1");
    }
}
