//! Communication-based localization: RSSI ranging + trilateration.
//!
//! Fig. 1 of the paper includes a **Communication-based Localization
//! ConSert** alongside the vision-based one: nearby UAVs estimate their
//! mutual ranges from radio signal strength and trilaterate the affected
//! UAV. This module provides:
//!
//! * [`RssiRanging`] — a log-distance path-loss model that converts RSSI
//!   to a (noisy) range estimate;
//! * [`trilaterate`] — Gauss–Newton least squares over ≥3 range
//!   measurements in the local ENU frame.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sesame_types::geo::{Enu, GeoPoint};

/// Log-distance path-loss RSSI model: `RSSI(d) = P₀ − 10·n·log₁₀(d/d₀)`
/// plus shadowing noise, invertible to a range estimate.
///
/// # Examples
///
/// ```
/// use sesame_collab_loc::rssi::RssiRanging;
///
/// let mut radio = RssiRanging::new(1);
/// let rssi = radio.rssi_at(50.0);
/// let range = radio.range_from_rssi(rssi);
/// assert!((range - 50.0).abs() < 40.0);
/// ```
#[derive(Debug)]
pub struct RssiRanging {
    rng: StdRng,
    /// RSSI at the reference distance, dBm.
    pub p0_dbm: f64,
    /// Reference distance, metres.
    pub d0_m: f64,
    /// Path-loss exponent (2 = free space; 2.2 fits open-air UAV links).
    pub exponent: f64,
    /// Log-normal shadowing σ, dB.
    pub shadowing_db: f64,
}

impl RssiRanging {
    /// An open-air UAV-to-UAV link model.
    pub fn new(seed: u64) -> Self {
        RssiRanging {
            rng: StdRng::seed_from_u64(seed),
            p0_dbm: -40.0,
            d0_m: 1.0,
            exponent: 2.2,
            shadowing_db: 2.0,
        }
    }

    /// Draws a noisy RSSI observation for a link of true length `d_m`.
    ///
    /// # Panics
    ///
    /// Panics if `d_m` is not positive.
    pub fn rssi_at(&mut self, d_m: f64) -> f64 {
        assert!(d_m > 0.0, "distance must be positive");
        let mean = self.p0_dbm - 10.0 * self.exponent * (d_m / self.d0_m).log10();
        mean + self.shadowing_db * self.gaussian()
    }

    /// Inverts the path-loss model: the range estimate for an observed
    /// RSSI.
    pub fn range_from_rssi(&self, rssi_dbm: f64) -> f64 {
        self.d0_m * 10f64.powf((self.p0_dbm - rssi_dbm) / (10.0 * self.exponent))
    }

    /// One ranging measurement: observe RSSI at the true distance and
    /// invert it.
    pub fn measure_range(&mut self, true_d_m: f64) -> f64 {
        let rssi = self.rssi_at(true_d_m);
        self.range_from_rssi(rssi)
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// One range measurement from a known anchor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeMeasurement {
    /// The anchor (a collaborating UAV at a known position).
    pub anchor: GeoPoint,
    /// Measured range, metres.
    pub range_m: f64,
}

/// Trilateration by Gauss–Newton least squares in the ENU frame of the
/// first anchor. Needs at least three measurements; returns `None` when
/// under-determined or when the iteration fails to produce a finite
/// solution.
///
/// `initial_alt_m` seeds the vertical coordinate (RSSI geometry is weak in
/// altitude; a barometric prior helps).
///
/// # Examples
///
/// ```
/// use sesame_collab_loc::rssi::{trilaterate, RangeMeasurement};
/// use sesame_types::geo::GeoPoint;
///
/// let origin = GeoPoint::new(35.0, 33.0, 30.0);
/// let target = origin.destination(40.0, 35.0).with_alt(28.0);
/// let anchors = [0.0, 120.0, 240.0].map(|b| origin.destination(b, 60.0).with_alt(32.0));
/// let measurements: Vec<RangeMeasurement> = anchors
///     .iter()
///     .map(|a| RangeMeasurement { anchor: *a, range_m: a.distance_3d_m(&target) })
///     .collect();
/// let fix = trilaterate(&measurements, 30.0).expect("well-posed geometry");
/// assert!(fix.distance_3d_m(&target) < 1.0);
/// ```
pub fn trilaterate(measurements: &[RangeMeasurement], initial_alt_m: f64) -> Option<GeoPoint> {
    if measurements.len() < 3 {
        return None;
    }
    let origin = measurements[0].anchor;
    let anchors: Vec<Enu> = measurements
        .iter()
        .map(|m| m.anchor.to_enu(&origin))
        .collect();
    // Initial guess: centroid of anchors at the altitude prior.
    let mut x = anchors.iter().map(|a| a.east_m).sum::<f64>() / anchors.len() as f64;
    let mut y = anchors.iter().map(|a| a.north_m).sum::<f64>() / anchors.len() as f64;
    let mut z = initial_alt_m - origin.alt_m;

    for _ in 0..50 {
        // Residuals r_i = |p - a_i| - range_i and the normal equations of
        // the linearized system (3×3, solved in closed form).
        let mut jt_j = [[0.0f64; 3]; 3];
        let mut jt_r = [0.0f64; 3];
        for (a, m) in anchors.iter().zip(measurements.iter()) {
            let dx = x - a.east_m;
            let dy = y - a.north_m;
            let dz = z - a.up_m;
            let dist = (dx * dx + dy * dy + dz * dz).sqrt().max(1e-6);
            let r = dist - m.range_m;
            let g = [dx / dist, dy / dist, dz / dist];
            for i in 0..3 {
                for j in 0..3 {
                    jt_j[i][j] += g[i] * g[j];
                }
                jt_r[i] += g[i] * r;
            }
        }
        // Levenberg damping keeps the vertical axis well-conditioned.
        for (i, row) in jt_j.iter_mut().enumerate() {
            row[i] += 1e-3;
        }
        let step = solve3(jt_j, jt_r)?;
        x -= step[0];
        y -= step[1];
        z -= step[2];
        if step.iter().map(|s| s.abs()).fold(0.0, f64::max) < 1e-6 {
            break;
        }
    }
    if !(x.is_finite() && y.is_finite() && z.is_finite()) {
        return None;
    }
    Some(GeoPoint::from_enu(&origin, Enu::new(x, y, z)))
}

/// Solves a 3×3 linear system by Cramer's rule; `None` for a (near-)
/// singular matrix.
fn solve3(a: [[f64; 3]; 3], b: [f64; 3]) -> Option<[f64; 3]> {
    let det = |m: [[f64; 3]; 3]| -> f64 {
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    };
    let d = det(a);
    if d.abs() < 1e-12 {
        return None;
    }
    let mut out = [0.0; 3];
    for k in 0..3 {
        let mut m = a;
        for row in 0..3 {
            m[row][k] = b[row];
        }
        out[k] = det(m) / d;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin() -> GeoPoint {
        GeoPoint::new(35.0, 33.0, 30.0)
    }

    #[test]
    fn rssi_model_inverts_exactly_without_noise() {
        let mut radio = RssiRanging::new(1);
        radio.shadowing_db = 0.0;
        for d in [1.0, 10.0, 50.0, 120.0] {
            let est = radio.measure_range(d);
            assert!((est - d).abs() < 1e-9, "{d} -> {est}");
        }
    }

    #[test]
    fn rssi_decreases_with_distance() {
        let mut radio = RssiRanging::new(2);
        radio.shadowing_db = 0.0;
        assert!(radio.rssi_at(10.0) > radio.rssi_at(100.0));
    }

    #[test]
    fn ranging_is_unbiased_in_log_domain() {
        let mut radio = RssiRanging::new(3);
        let n = 4000;
        let mean_log: f64 = (0..n).map(|_| radio.measure_range(60.0).ln()).sum::<f64>() / n as f64;
        assert!((mean_log - 60.0f64.ln()).abs() < 0.02, "{mean_log}");
    }

    #[test]
    fn exact_ranges_trilaterate_exactly() {
        let target = origin().destination(70.0, 45.0).with_alt(26.0);
        let anchors =
            [10.0, 130.0, 250.0, 60.0].map(|b| origin().destination(b, 70.0).with_alt(33.0));
        let ms: Vec<RangeMeasurement> = anchors
            .iter()
            .map(|a| RangeMeasurement {
                anchor: *a,
                range_m: a.distance_3d_m(&target),
            })
            .collect();
        let fix = trilaterate(&ms, 30.0).unwrap();
        assert!(
            fix.distance_3d_m(&target) < 0.5,
            "err {}",
            fix.distance_3d_m(&target)
        );
    }

    #[test]
    fn noisy_rssi_ranges_localize_within_meters() {
        let mut radio = RssiRanging::new(7);
        let target = origin().destination(45.0, 40.0).with_alt(30.0);
        let anchors =
            [0.0, 90.0, 180.0, 270.0].map(|b| origin().destination(b, 60.0).with_alt(32.0));
        // Average several RSSI rounds to tame the shadowing.
        let mut errors = Vec::new();
        for _ in 0..50 {
            let ms: Vec<RangeMeasurement> = anchors
                .iter()
                .map(|a| {
                    let true_d = a.distance_3d_m(&target);
                    let avg: f64 = (0..8).map(|_| radio.measure_range(true_d)).sum::<f64>() / 8.0;
                    RangeMeasurement {
                        anchor: *a,
                        range_m: avg,
                    }
                })
                .collect();
            if let Some(fix) = trilaterate(&ms, 30.0) {
                errors.push(fix.haversine_distance_m(&target));
            }
        }
        assert!(errors.len() > 40);
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        assert!(mean < 8.0, "mean horizontal error {mean} m");
    }

    #[test]
    fn under_determined_returns_none() {
        let m = RangeMeasurement {
            anchor: origin(),
            range_m: 10.0,
        };
        assert!(trilaterate(&[m], 30.0).is_none());
        assert!(trilaterate(&[m, m], 30.0).is_none());
    }

    #[test]
    #[should_panic(expected = "distance must be positive")]
    fn zero_distance_panics() {
        let mut radio = RssiRanging::new(1);
        let _ = radio.rssi_at(0.0);
    }
}
