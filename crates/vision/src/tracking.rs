//! Constant-velocity Kalman tracking.
//!
//! The collaborative-localization stack smooths per-frame position fixes of
//! the affected UAV ("Detection & Tracking" in Fig. 2) with a standard
//! per-axis constant-velocity Kalman filter in local ENU coordinates.

use sesame_types::geo::Vec3;

/// Per-axis state: position and velocity with a 2×2 covariance.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Axis {
    pos: f64,
    vel: f64,
    // Covariance [[p00, p01], [p01, p11]].
    p00: f64,
    p01: f64,
    p11: f64,
}

impl Axis {
    fn new(pos: f64, pos_var: f64) -> Self {
        Axis {
            pos,
            vel: 0.0,
            p00: pos_var,
            p01: 0.0,
            p11: 25.0, // generous initial velocity variance (5 m/s σ)
        }
    }

    fn predict(&mut self, dt: f64, q_accel: f64) {
        self.pos += self.vel * dt;
        // P = F P Fᵀ + Q  with F = [[1, dt], [0, 1]].
        let p00 = self.p00 + dt * (2.0 * self.p01 + dt * self.p11);
        let p01 = self.p01 + dt * self.p11;
        let p11 = self.p11;
        // White-acceleration process noise.
        let dt2 = dt * dt;
        self.p00 = p00 + q_accel * dt2 * dt2 / 4.0;
        self.p01 = p01 + q_accel * dt2 * dt / 2.0;
        self.p11 = p11 + q_accel * dt2;
    }

    fn update(&mut self, z: f64, r: f64) {
        let s = self.p00 + r;
        let k0 = self.p00 / s;
        let k1 = self.p01 / s;
        let innov = z - self.pos;
        self.pos += k0 * innov;
        self.vel += k1 * innov;
        let p00 = (1.0 - k0) * self.p00;
        let p01 = (1.0 - k0) * self.p01;
        let p11 = self.p11 - k1 * self.p01;
        self.p00 = p00;
        self.p01 = p01;
        self.p11 = p11;
    }
}

/// A 3-axis constant-velocity tracker over local ENU coordinates.
///
/// # Examples
///
/// ```
/// use sesame_types::geo::Vec3;
/// use sesame_vision::tracking::KalmanTracker;
///
/// let mut kt = KalmanTracker::new(Vec3::new(0.0, 0.0, 30.0), 4.0);
/// kt.predict(0.1);
/// kt.update(Vec3::new(0.5, 0.0, 30.0), 4.0);
/// assert!(kt.position().x > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KalmanTracker {
    axes: [Axis; 3],
    /// Process (acceleration) noise intensity, (m/s²)².
    pub q_accel: f64,
}

impl KalmanTracker {
    /// Starts a track at `position` with measurement variance `pos_var`
    /// (m²) and a default manoeuvre noise of 1 (m/s²)².
    pub fn new(position: Vec3, pos_var: f64) -> Self {
        KalmanTracker {
            axes: [
                Axis::new(position.x, pos_var),
                Axis::new(position.y, pos_var),
                Axis::new(position.z, pos_var),
            ],
            q_accel: 1.0,
        }
    }

    /// Propagates the track forward by `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative or non-finite.
    pub fn predict(&mut self, dt: f64) {
        assert!(dt.is_finite() && dt >= 0.0, "dt must be ≥ 0");
        for a in &mut self.axes {
            a.predict(dt, self.q_accel);
        }
    }

    /// Fuses a position measurement with variance `r` (m², same for each
    /// axis).
    ///
    /// # Panics
    ///
    /// Panics if `r` is not positive.
    pub fn update(&mut self, z: Vec3, r: f64) {
        assert!(r.is_finite() && r > 0.0, "measurement variance must be > 0");
        self.axes[0].update(z.x, r);
        self.axes[1].update(z.y, r);
        self.axes[2].update(z.z, r);
    }

    /// Current position estimate.
    pub fn position(&self) -> Vec3 {
        Vec3::new(self.axes[0].pos, self.axes[1].pos, self.axes[2].pos)
    }

    /// Current velocity estimate.
    pub fn velocity(&self) -> Vec3 {
        Vec3::new(self.axes[0].vel, self.axes[1].vel, self.axes[2].vel)
    }

    /// Position standard deviation per axis.
    pub fn position_sigma(&self) -> Vec3 {
        Vec3::new(
            self.axes[0].p00.max(0.0).sqrt(),
            self.axes[1].p00.max(0.0).sqrt(),
            self.axes[2].p00.max(0.0).sqrt(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn static_target_converges() {
        let mut kt = KalmanTracker::new(Vec3::new(10.0, -5.0, 30.0), 100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let truth = Vec3::new(12.0, -4.0, 31.0);
        for _ in 0..200 {
            kt.predict(0.1);
            let mut noise = || (rng.random::<f64>() - 0.5) * 2.0;
            let jitter = Vec3::new(noise(), noise(), noise());
            kt.update(truth + jitter, 1.0);
        }
        let err = (kt.position() - truth).norm();
        assert!(err < 0.5, "err = {err}");
        assert!(kt.position_sigma().norm() < 1.0);
    }

    #[test]
    fn moving_target_velocity_estimated() {
        let mut kt = KalmanTracker::new(Vec3::zero(), 1.0);
        for i in 1..=300 {
            kt.predict(0.1);
            let t = i as f64 * 0.1;
            kt.update(Vec3::new(2.0 * t, 0.0, 0.0), 0.5);
        }
        let v = kt.velocity();
        assert!((v.x - 2.0).abs() < 0.2, "vx = {}", v.x);
        assert!(v.y.abs() < 0.2);
    }

    #[test]
    fn prediction_without_updates_grows_uncertainty() {
        let mut kt = KalmanTracker::new(Vec3::zero(), 1.0);
        let s0 = kt.position_sigma().norm();
        for _ in 0..50 {
            kt.predict(0.1);
        }
        assert!(kt.position_sigma().norm() > s0);
    }

    #[test]
    fn update_shrinks_uncertainty() {
        let mut kt = KalmanTracker::new(Vec3::zero(), 100.0);
        let before = kt.position_sigma().x;
        kt.update(Vec3::zero(), 1.0);
        assert!(kt.position_sigma().x < before);
    }

    #[test]
    #[should_panic(expected = "dt must be ≥ 0")]
    fn negative_dt_panics() {
        let mut kt = KalmanTracker::new(Vec3::zero(), 1.0);
        kt.predict(-1.0);
    }

    #[test]
    #[should_panic(expected = "variance must be > 0")]
    fn zero_variance_panics() {
        let mut kt = KalmanTracker::new(Vec3::zero(), 1.0);
        kt.update(Vec3::zero(), 0.0);
    }
}
