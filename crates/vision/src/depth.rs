//! Monocular depth (range) estimation.
//!
//! Collaborative localization "calculate\[s\] distances to affected UAVs in
//! real-time using tinyYOLOv4 and monocular depth estimation" (§III-C).
//! Monocular depth error famously grows with range; the model here is
//! Gaussian with `σ(r) = σ₀ + k·r`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Seeded monocular range estimator.
///
/// # Examples
///
/// ```
/// use sesame_vision::depth::DepthEstimator;
///
/// let mut d = DepthEstimator::new(1);
/// let est = d.estimate(40.0);
/// assert!((est - 40.0).abs() < 15.0);
/// assert!(d.sigma_at(10.0) < d.sigma_at(100.0));
/// ```
#[derive(Debug)]
pub struct DepthEstimator {
    rng: StdRng,
    /// Floor of the noise, metres.
    pub sigma_base_m: f64,
    /// Noise growth per metre of range.
    pub sigma_per_meter: f64,
    /// Maximum usable range, metres; beyond it estimates saturate.
    pub max_range_m: f64,
}

impl DepthEstimator {
    /// Creates an estimator with Jetson-class monocular characteristics:
    /// σ = 0.5 m + 5 % of range, usable to 120 m.
    pub fn new(seed: u64) -> Self {
        DepthEstimator {
            rng: StdRng::seed_from_u64(seed),
            sigma_base_m: 0.5,
            sigma_per_meter: 0.05,
            max_range_m: 120.0,
        }
    }

    /// The 1-σ error at a given range.
    pub fn sigma_at(&self, range_m: f64) -> f64 {
        self.sigma_base_m + self.sigma_per_meter * range_m.max(0.0)
    }

    /// Draws one noisy range estimate for a target at `true_range_m`.
    /// Ranges beyond `max_range_m` saturate to it (the net never reports
    /// targets it cannot resolve).
    pub fn estimate(&mut self, true_range_m: f64) -> f64 {
        let r = true_range_m.clamp(0.0, self.max_range_m);
        let sigma = self.sigma_at(r);
        (r + sigma * self.gaussian()).max(0.1)
    }

    /// Whether a target at this range can be resolved at all.
    pub fn in_range(&self, true_range_m: f64) -> bool {
        (0.0..=self.max_range_m).contains(&true_range_m)
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_are_unbiased() {
        let mut d = DepthEstimator::new(2);
        let n = 5000;
        let sum: f64 = (0..n).map(|_| d.estimate(50.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 50.0).abs() < 0.5, "mean = {mean}");
    }

    #[test]
    fn noise_grows_with_range() {
        let mut d = DepthEstimator::new(2);
        let spread = |r: f64, d: &mut DepthEstimator| {
            let xs: Vec<f64> = (0..2000).map(|_| d.estimate(r)).collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        let near = spread(10.0, &mut d);
        let far = spread(100.0, &mut d);
        assert!(far > near * 2.0, "near σ={near}, far σ={far}");
    }

    #[test]
    fn range_saturation() {
        let mut d = DepthEstimator::new(2);
        assert!(!d.in_range(500.0));
        assert!(d.in_range(100.0));
        let est = d.estimate(500.0);
        assert!(est <= d.max_range_m + 5.0 * d.sigma_at(d.max_range_m));
    }

    #[test]
    fn estimates_never_negative() {
        let mut d = DepthEstimator::new(2);
        for _ in 0..1000 {
            assert!(d.estimate(0.5) > 0.0);
        }
    }
}
