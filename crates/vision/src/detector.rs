//! Stochastic person detection.
//!
//! The tiny-YOLOv4 stand-in: per frame, each person inside the camera
//! footprint is detected with a probability that falls off with altitude
//! and haze, and localized with altitude-proportional error; clutter
//! occasionally produces false positives. The *accuracy* model is
//! calibrated to the paper's §V-B claim: ≈99.8 % at the low-altitude
//! operating point (25 m, clear), degrading toward higher altitudes.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sesame_types::geo::GeoPoint;

/// One detection output by the detector.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Estimated ground position of the person.
    pub position: GeoPoint,
    /// Detector confidence score in `[0, 1]`.
    pub confidence: f64,
    /// Whether this detection corresponds to a real person (ground truth,
    /// available because this is a simulation — used for scoring only).
    pub true_positive: bool,
}

/// The stochastic person detector.
///
/// # Examples
///
/// ```
/// use sesame_vision::detector::PersonDetector;
///
/// let det = PersonDetector::new(1);
/// let low = det.accuracy(25.0, 1.0);
/// let high = det.accuracy(60.0, 1.0);
/// assert!(low > 0.99 && high < low);
/// ```
#[derive(Debug)]
pub struct PersonDetector {
    rng: StdRng,
    /// Altitude (m) at which accuracy peaks.
    pub optimal_altitude_m: f64,
    /// Peak accuracy at the optimal altitude — the paper's 99.8 %.
    pub peak_accuracy: f64,
    /// Accuracy decay per metre above the optimum.
    pub decay_per_meter: f64,
    /// False positives per frame at full degradation.
    pub max_false_positive_rate: f64,
}

impl PersonDetector {
    /// Creates a detector with the §V-B calibration.
    pub fn new(seed: u64) -> Self {
        PersonDetector {
            rng: StdRng::seed_from_u64(seed),
            optimal_altitude_m: 25.0,
            peak_accuracy: 0.998,
            decay_per_meter: 0.004,
            max_false_positive_rate: 0.05,
        }
    }

    /// Deterministic per-person detection accuracy at the given altitude
    /// and visibility: the probability a present person is correctly
    /// detected and classified.
    pub fn accuracy(&self, altitude_m: f64, visibility: f64) -> f64 {
        let excess = (altitude_m - self.optimal_altitude_m).abs();
        let alt_term = self.peak_accuracy - self.decay_per_meter * excess;
        let vis_term = visibility.clamp(0.0, 1.0);
        (alt_term * (0.5 + 0.5 * vis_term)).clamp(0.0, 1.0)
    }

    /// Runs one frame over the people currently inside the footprint.
    /// `people` are ground-truth positions; `camera` is the UAV position
    /// (its altitude sets the accuracy and the localization noise).
    pub fn detect_frame(
        &mut self,
        camera: &GeoPoint,
        visibility: f64,
        people: &[GeoPoint],
    ) -> Vec<Detection> {
        let acc = self.accuracy(camera.alt_m, visibility);
        let mut out = Vec::new();
        for p in people {
            if self.rng.random::<f64>() < acc {
                // Localization error grows with altitude: σ = 1 % of alt.
                let sigma = 0.01 * camera.alt_m.max(1.0);
                let bearing = self.rng.random::<f64>() * 360.0;
                let err = self.gaussian().abs() * sigma;
                out.push(Detection {
                    position: p.destination(bearing, err).with_alt(0.0),
                    confidence: (acc + 0.1 * self.gaussian()).clamp(0.05, 1.0),
                    true_positive: true,
                });
            }
        }
        // Clutter false positives appear as accuracy degrades.
        let fp_rate = self.max_false_positive_rate * (1.0 - acc);
        if self.rng.random::<f64>() < fp_rate {
            let bearing = self.rng.random::<f64>() * 360.0;
            let dist = self.rng.random::<f64>() * camera.alt_m;
            out.push(Detection {
                position: camera.destination(bearing, dist).with_alt(0.0),
                confidence: (0.3 + 0.2 * self.gaussian()).clamp(0.05, 0.9),
                true_positive: false,
            });
        }
        out
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn camera(alt: f64) -> GeoPoint {
        GeoPoint::new(35.0, 33.0, alt)
    }

    #[test]
    fn accuracy_peaks_at_optimal_altitude() {
        let d = PersonDetector::new(1);
        let at_opt = d.accuracy(25.0, 1.0);
        assert!((at_opt - 0.998).abs() < 1e-12);
        assert!(d.accuracy(60.0, 1.0) < at_opt);
        assert!(d.accuracy(5.0, 1.0) < at_opt, "too low also hurts");
    }

    #[test]
    fn haze_halves_accuracy_at_zero_visibility() {
        let d = PersonDetector::new(1);
        let clear = d.accuracy(25.0, 1.0);
        let blind = d.accuracy(25.0, 0.0);
        assert!((blind - clear / 2.0).abs() < 1e-9);
    }

    #[test]
    fn detection_rate_matches_accuracy_statistically() {
        let mut d = PersonDetector::new(7);
        let person = [GeoPoint::new(35.0001, 33.0001, 0.0)];
        let mut hits = 0;
        let n = 3000;
        for _ in 0..n {
            let dets = d.detect_frame(&camera(25.0), 1.0, &person);
            hits += dets.iter().filter(|x| x.true_positive).count();
        }
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.998).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn high_altitude_misses_more_and_localizes_worse() {
        let mut d = PersonDetector::new(3);
        let person = [GeoPoint::new(35.0001, 33.0001, 0.0)];
        let mut err_low = 0.0;
        let mut err_high = 0.0;
        let (mut n_low, mut n_high) = (0, 0);
        for _ in 0..2000 {
            for det in d.detect_frame(&camera(25.0), 1.0, &person) {
                if det.true_positive {
                    err_low += det.position.haversine_distance_m(&person[0]);
                    n_low += 1;
                }
            }
            for det in d.detect_frame(&camera(100.0), 1.0, &person) {
                if det.true_positive {
                    err_high += det.position.haversine_distance_m(&person[0]);
                    n_high += 1;
                }
            }
        }
        assert!(n_high < n_low);
        assert!(err_high / n_high as f64 > err_low / n_low as f64);
    }

    #[test]
    fn empty_scene_rarely_detects() {
        let mut d = PersonDetector::new(11);
        let mut fps = 0;
        for _ in 0..1000 {
            fps += d.detect_frame(&camera(25.0), 1.0, &[]).len();
        }
        // At peak accuracy the FP rate is ~0.05 * 0.002 per frame.
        assert!(fps < 10, "false positives = {fps}");
    }

    #[test]
    fn determinism_per_seed() {
        let person = [GeoPoint::new(35.0001, 33.0001, 0.0)];
        let mut a = PersonDetector::new(5);
        let mut b = PersonDetector::new(5);
        assert_eq!(
            a.detect_frame(&camera(30.0), 0.9, &person),
            b.detect_frame(&camera(30.0), 0.9, &person)
        );
    }
}
