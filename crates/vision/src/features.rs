//! Condition-dependent image feature generation.
//!
//! SafeML compares runtime feature distributions against a training
//! reference. The extractor below generates Gaussian feature vectors whose
//! mean drifts away from the training condition as the scene departs from
//! it — higher altitude and worse visibility mean larger drift. The drift
//! coefficient is calibrated so a SafeML KS monitor reports ≈0.75
//! dissimilarity at the paper's low-altitude operating point (25 m) and
//! >0.9 at the high-altitude point (60 m), matching §V-B.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The scene parameters that drive distribution shift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneCondition {
    /// Above-ground altitude of the camera in metres.
    pub altitude_m: f64,
    /// Visibility quality in `[0, 1]` (1 = clear day).
    pub visibility: f64,
}

impl SceneCondition {
    /// The training condition the reference set is drawn from: a close,
    /// clear scene.
    pub fn training() -> Self {
        SceneCondition {
            altitude_m: 10.0,
            visibility: 1.0,
        }
    }
}

impl Default for SceneCondition {
    fn default() -> Self {
        Self::training()
    }
}

/// Deterministic, seeded feature-vector source.
///
/// # Examples
///
/// ```
/// use sesame_vision::features::{FeatureExtractor, SceneCondition};
///
/// let mut fx = FeatureExtractor::new(8, 42);
/// let frame = fx.extract(&SceneCondition::training());
/// assert_eq!(frame.len(), 8);
/// ```
#[derive(Debug)]
pub struct FeatureExtractor {
    dims: usize,
    rng: StdRng,
    /// Mean drift per metre above the training altitude (calibrated).
    pub shift_per_meter: f64,
    /// Mean drift per unit of visibility loss.
    pub shift_per_visibility: f64,
}

impl FeatureExtractor {
    /// Creates an extractor producing `dims`-dimensional features.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    pub fn new(dims: usize, seed: u64) -> Self {
        assert!(dims > 0, "need at least one feature dimension");
        FeatureExtractor {
            dims,
            rng: StdRng::seed_from_u64(seed),
            shift_per_meter: 0.153,
            shift_per_visibility: 2.0,
        }
    }

    /// Number of feature dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The deterministic mean drift for a condition (exposed for tests and
    /// calibration).
    pub fn drift(&self, condition: &SceneCondition) -> f64 {
        let train = SceneCondition::training();
        let dalt = (condition.altitude_m - train.altitude_m).max(0.0);
        let dvis = (train.visibility - condition.visibility).max(0.0);
        self.shift_per_meter * dalt + self.shift_per_visibility * dvis
    }

    /// Draws one frame's feature vector under `condition`: unit-variance
    /// Gaussians centred at the condition's drift.
    pub fn extract(&mut self, condition: &SceneCondition) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.dims);
        self.extract_into(condition, &mut out);
        out
    }

    /// [`FeatureExtractor::extract`] into a caller-provided buffer — the
    /// tick loop's zero-alloc path. The buffer is cleared and refilled;
    /// the same RNG draws happen in the same order, so the values are
    /// identical to [`FeatureExtractor::extract`]'s.
    pub fn extract_into(&mut self, condition: &SceneCondition, out: &mut Vec<f64>) {
        let mu = self.drift(condition);
        out.clear();
        for _ in 0..self.dims {
            out.push(mu + self.gaussian());
        }
    }

    /// Draws a reference set of `n` frames at the training condition.
    pub fn reference_set(&mut self, n: usize) -> Vec<Vec<f64>> {
        let training = SceneCondition::training();
        (0..n).map(|_| self.extract(&training)).collect()
    }

    /// Standard normal via Box–Muller.
    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_condition_has_zero_drift() {
        let fx = FeatureExtractor::new(4, 1);
        assert_eq!(fx.drift(&SceneCondition::training()), 0.0);
    }

    #[test]
    fn drift_grows_with_altitude_and_haze() {
        let fx = FeatureExtractor::new(4, 1);
        let d25 = fx.drift(&SceneCondition {
            altitude_m: 25.0,
            visibility: 1.0,
        });
        let d60 = fx.drift(&SceneCondition {
            altitude_m: 60.0,
            visibility: 1.0,
        });
        let d60_hazy = fx.drift(&SceneCondition {
            altitude_m: 60.0,
            visibility: 0.6,
        });
        assert!(0.0 < d25 && d25 < d60 && d60 < d60_hazy);
    }

    #[test]
    fn below_training_altitude_does_not_go_negative() {
        let fx = FeatureExtractor::new(4, 1);
        let d = fx.drift(&SceneCondition {
            altitude_m: 2.0,
            visibility: 1.0,
        });
        assert_eq!(d, 0.0);
    }

    #[test]
    fn extraction_is_deterministic_per_seed() {
        let cond = SceneCondition {
            altitude_m: 30.0,
            visibility: 0.8,
        };
        let mut a = FeatureExtractor::new(6, 9);
        let mut b = FeatureExtractor::new(6, 9);
        assert_eq!(a.extract(&cond), b.extract(&cond));
        let mut c = FeatureExtractor::new(6, 10);
        assert_ne!(a.extract(&cond), c.extract(&cond));
    }

    #[test]
    fn sample_mean_tracks_drift() {
        let cond = SceneCondition {
            altitude_m: 60.0,
            visibility: 1.0,
        };
        let mut fx = FeatureExtractor::new(2, 3);
        let expected = fx.drift(&cond);
        let n = 2000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += fx.extract(&cond).iter().sum::<f64>() / 2.0;
        }
        let mean = sum / n as f64;
        assert!(
            (mean - expected).abs() < 0.1,
            "mean {mean} should be near {expected}"
        );
    }

    #[test]
    fn reference_set_shape() {
        let mut fx = FeatureExtractor::new(5, 7);
        let r = fx.reference_set(20);
        assert_eq!(r.len(), 20);
        assert!(r.iter().all(|row| row.len() == 5));
    }

    #[test]
    #[should_panic(expected = "at least one feature")]
    fn zero_dims_panics() {
        let _ = FeatureExtractor::new(0, 1);
    }
}
