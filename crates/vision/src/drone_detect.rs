//! Vision-based nearby-drone detection.
//!
//! Collaborative agents detect the affected UAV with their RGB cameras and
//! measure its direction (bearing and elevation, with pixel-level angular
//! noise) plus a monocular range estimate. Detection probability decays
//! with range — past the depth estimator's usable range nothing is seen.

use crate::depth::DepthEstimator;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sesame_types::geo::GeoPoint;

/// One sighting of another drone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DroneObservation {
    /// Bearing from the observer to the target, degrees clockwise from
    /// north.
    pub bearing_deg: f64,
    /// Elevation angle, degrees (positive = target above observer).
    pub elevation_deg: f64,
    /// Monocular range estimate in metres.
    pub range_m: f64,
    /// 1-σ of the range estimate at this range.
    pub range_sigma_m: f64,
    /// 1-σ of the angular measurements in degrees.
    pub angle_sigma_deg: f64,
}

/// The drone detector of a collaborative agent.
///
/// # Examples
///
/// ```
/// use sesame_types::geo::GeoPoint;
/// use sesame_vision::drone_detect::DroneDetector;
///
/// let mut det = DroneDetector::new(3);
/// let me = GeoPoint::new(35.0, 33.0, 30.0);
/// let target = me.destination(90.0, 40.0).with_alt(35.0);
/// if let Some(obs) = det.observe(&me, &target) {
///     assert!((obs.bearing_deg - 90.0).abs() < 10.0);
/// }
/// ```
#[derive(Debug)]
pub struct DroneDetector {
    rng: StdRng,
    depth: DepthEstimator,
    /// Angular noise (degrees, 1-σ) of the bearing/elevation measurement.
    pub angle_sigma_deg: f64,
    /// Detection probability at zero range.
    pub p_detect_near: f64,
    /// Range at which detection probability halves.
    pub half_range_m: f64,
}

impl DroneDetector {
    /// Creates a detector with tinyYOLO-class characteristics.
    pub fn new(seed: u64) -> Self {
        DroneDetector {
            rng: StdRng::seed_from_u64(seed),
            depth: DepthEstimator::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1)),
            angle_sigma_deg: 1.5,
            p_detect_near: 0.98,
            half_range_m: 80.0,
        }
    }

    /// Probability of detecting a target at `range_m`.
    pub fn detection_probability(&self, range_m: f64) -> f64 {
        if !self.depth.in_range(range_m) {
            return 0.0;
        }
        let r = range_m / self.half_range_m;
        self.p_detect_near / (1.0 + r * r)
    }

    /// Attempts to observe `target` from `observer`. Returns `None` when
    /// the target is missed or out of range.
    pub fn observe(&mut self, observer: &GeoPoint, target: &GeoPoint) -> Option<DroneObservation> {
        let range = observer.distance_3d_m(target);
        if self.rng.random::<f64>() >= self.detection_probability(range) {
            return None;
        }
        let true_bearing = observer.bearing_deg(target);
        let horiz = observer.haversine_distance_m(target);
        let true_elev = (target.alt_m - observer.alt_m)
            .atan2(horiz.max(0.1))
            .to_degrees();
        let bearing = (true_bearing + self.angle_sigma_deg * self.gaussian() + 360.0) % 360.0;
        let elevation = true_elev + self.angle_sigma_deg * self.gaussian();
        let range_est = self.depth.estimate(range);
        Some(DroneObservation {
            bearing_deg: bearing,
            elevation_deg: elevation,
            range_m: range_est,
            range_sigma_m: self.depth.sigma_at(range_est),
            angle_sigma_deg: self.angle_sigma_deg,
        })
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn me() -> GeoPoint {
        GeoPoint::new(35.0, 33.0, 30.0)
    }

    #[test]
    fn detection_probability_decays_and_cuts_off() {
        let d = DroneDetector::new(1);
        assert!(d.detection_probability(10.0) > d.detection_probability(100.0));
        assert_eq!(d.detection_probability(1e4), 0.0);
    }

    #[test]
    fn observation_geometry_is_unbiased() {
        let mut d = DroneDetector::new(5);
        let target = me().destination(45.0, 50.0).with_alt(40.0);
        let mut bearings = Vec::new();
        let mut ranges = Vec::new();
        for _ in 0..3000 {
            if let Some(obs) = d.observe(&me(), &target) {
                bearings.push(obs.bearing_deg);
                ranges.push(obs.range_m);
            }
        }
        assert!(bearings.len() > 1000, "detections = {}", bearings.len());
        let mean_b = bearings.iter().sum::<f64>() / bearings.len() as f64;
        assert!((mean_b - 45.0).abs() < 0.5, "mean bearing {mean_b}");
        let mean_r = ranges.iter().sum::<f64>() / ranges.len() as f64;
        let true_r = me().distance_3d_m(&target);
        assert!(
            (mean_r - true_r).abs() < 2.0,
            "mean range {mean_r} vs {true_r}"
        );
    }

    #[test]
    fn elevation_sign_tracks_relative_altitude() {
        let mut d = DroneDetector::new(6);
        let above = me().destination(0.0, 30.0).with_alt(60.0);
        let below = me().destination(0.0, 30.0).with_alt(5.0);
        let mut sum_above = 0.0;
        let mut sum_below = 0.0;
        let mut n = 0;
        for _ in 0..500 {
            if let (Some(a), Some(b)) = (d.observe(&me(), &above), d.observe(&me(), &below)) {
                sum_above += a.elevation_deg;
                sum_below += b.elevation_deg;
                n += 1;
            }
        }
        assert!(n > 100);
        assert!(sum_above / n as f64 > 10.0);
        assert!(sum_below / (n as f64) < -10.0);
    }

    #[test]
    fn out_of_range_target_never_observed() {
        let mut d = DroneDetector::new(7);
        let far = me().destination(90.0, 5000.0);
        for _ in 0..200 {
            assert!(d.observe(&me(), &far).is_none());
        }
    }
}
