//! Synthetic vision substrate.
//!
//! The paper's platform runs tiny YOLOv4 person/drone detection and
//! monocular depth estimation on Jetson-class hardware (§III-C, §IV-B).
//! This crate is the calibrated synthetic stand-in (see DESIGN.md):
//!
//! * [`features`] — per-frame feature vectors whose distribution shifts
//!   with altitude and visibility, calibrated so that SafeML reproduces the
//!   §V-B uncertainty numbers (>90 % at high altitude, ≈75 % after
//!   descending);
//! * [`detector`] — a stochastic person detector with altitude/visibility-
//!   dependent accuracy (≈99.8 % at the paper's low-altitude operating
//!   point);
//! * [`depth`] — monocular range estimation with distance-proportional
//!   noise;
//! * [`drone_detect`] — nearby-drone detection producing bearing/elevation
//!   and range measurements for collaborative localization;
//! * [`tracking`] — a constant-velocity Kalman filter to smooth detection
//!   tracks.
//!
//! Everything is seeded and deterministic.

pub mod depth;
pub mod detector;
pub mod drone_detect;
pub mod features;
pub mod tracking;

pub use depth::DepthEstimator;
pub use detector::{Detection, PersonDetector};
pub use drone_detect::{DroneDetector, DroneObservation};
pub use features::{FeatureExtractor, SceneCondition};
pub use tracking::KalmanTracker;
