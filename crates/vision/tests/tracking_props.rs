//! Property tests of the Kalman tracker and the detector calibration.

use proptest::prelude::*;
use sesame_types::geo::{GeoPoint, Vec3};
use sesame_vision::detector::PersonDetector;
use sesame_vision::tracking::KalmanTracker;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An update with any finite measurement never increases the position
    /// variance.
    #[test]
    fn update_never_inflates_uncertainty(
        x in -100.0..100.0f64, y in -100.0..100.0f64, z in 0.0..100.0f64,
        r in 0.1..50.0f64,
    ) {
        let mut kt = KalmanTracker::new(Vec3::new(0.0, 0.0, 30.0), 25.0);
        kt.predict(0.5);
        let before = kt.position_sigma().norm();
        kt.update(Vec3::new(x, y, z), r);
        prop_assert!(kt.position_sigma().norm() <= before + 1e-9);
    }

    /// Prediction over any positive horizon never shrinks uncertainty.
    #[test]
    fn prediction_never_shrinks_uncertainty(dt in 0.01..10.0f64) {
        let mut kt = KalmanTracker::new(Vec3::zero(), 4.0);
        let before = kt.position_sigma().norm();
        kt.predict(dt);
        prop_assert!(kt.position_sigma().norm() >= before - 1e-9);
    }

    /// The estimate after one update lies between the prior and the
    /// measurement on each axis (convex combination).
    #[test]
    fn update_is_convex_combination(
        m in -50.0..50.0f64, r in 0.1..100.0f64,
    ) {
        let prior = 5.0;
        let mut kt = KalmanTracker::new(Vec3::new(prior, 0.0, 0.0), 9.0);
        kt.update(Vec3::new(m, 0.0, 0.0), r);
        let est = kt.position().x;
        let (lo, hi) = if prior <= m { (prior, m) } else { (m, prior) };
        prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "{est} not in [{lo}, {hi}]");
    }

    /// Detector accuracy is a probability for any altitude/visibility and
    /// is maximal at the calibrated optimum.
    #[test]
    fn detector_accuracy_bounds(alt in 0.0..200.0f64, vis in 0.0..1.0f64) {
        let d = PersonDetector::new(1);
        let a = d.accuracy(alt, vis);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!(a <= d.accuracy(25.0, 1.0) + 1e-12);
    }

    /// Worse visibility never improves accuracy at any altitude.
    #[test]
    fn accuracy_monotone_in_visibility(alt in 5.0..150.0f64, v1 in 0.0..1.0f64, dv in 0.0..1.0f64) {
        let d = PersonDetector::new(1);
        let v2 = (v1 + dv).min(1.0);
        prop_assert!(d.accuracy(alt, v2) >= d.accuracy(alt, v1) - 1e-12);
    }

    /// Detections of a present person land near that person at any
    /// altitude (localization noise scales with altitude but stays
    /// bounded).
    #[test]
    fn detections_near_ground_truth(alt in 10.0..120.0f64, seed in 0u64..50) {
        let mut d = PersonDetector::new(seed);
        let cam = GeoPoint::new(35.0, 33.0, alt);
        let person = [GeoPoint::new(35.0002, 33.0002, 0.0)];
        for _ in 0..20 {
            for det in d.detect_frame(&cam, 1.0, &person) {
                if det.true_positive {
                    let err = det.position.haversine_distance_m(&person[0]);
                    prop_assert!(err < alt, "error {err} m at altitude {alt} m");
                }
            }
        }
    }
}
