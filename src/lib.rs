//! `sesame` — umbrella crate for the SESAME multi-UAV reproduction.
//!
//! Re-exports every workspace crate under one roof so that examples and
//! integration tests can write `use sesame::conserts::...` instead of
//! depending on a dozen crates individually.
//!
//! # Quickstart
//!
//! ```
//! use sesame::core::scenario::ScenarioBuilder;
//!
//! let outcome = ScenarioBuilder::new(42).build().run();
//! assert!(outcome.metrics.mission_completed_fraction > 0.0);
//! ```
//!
//! See `examples/quickstart.rs` for a narrated version, and
//! `crates/bench/src/bin/experiments.rs` for the harness that regenerates
//! every figure of the DATE 2025 paper.

pub use sesame_collab_loc as collab_loc;
pub use sesame_conserts as conserts;
pub use sesame_core as core;
pub use sesame_deepknowledge as deepknowledge;
pub use sesame_middleware as middleware;
pub use sesame_obs as obs;
pub use sesame_safedrones as safedrones;
pub use sesame_safeml as safeml;
pub use sesame_sar as sar;
pub use sesame_scenario_dsl as scenario_dsl;
pub use sesame_security as security;
pub use sesame_server as server;
pub use sesame_sinadra as sinadra;
pub use sesame_types as types;
pub use sesame_uav_sim as uav_sim;
pub use sesame_vision as vision;
