//! Offline stand-in for the `bytes` crate.
//!
//! Provides the small slice of the real API the workspace uses:
//! [`Bytes`], a cheaply clonable immutable byte buffer (`Arc<[u8]>`
//! underneath instead of the real crate's refcounted vtable design).

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable chunk of bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Wraps a static byte slice. The stub copies rather than borrows;
    /// callers only observe the contents.
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes {
            data: v.as_bytes().into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn construction_and_equality() {
        assert!(Bytes::new().is_empty());
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..], &[1, 2, 3]);
        let c = a.clone();
        assert_eq!(c, a);
    }
}
