//! Test-run configuration, deterministic RNG and case-failure plumbing.

use std::fmt;

/// How a property test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (carried to the reporting panic).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator driving all strategies: xoshiro256++ seeded
/// from the test name, so each property sees a stable input stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// A generator seeded deterministically from `name` (FNV-1a hash).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
