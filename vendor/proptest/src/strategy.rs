//! Value-generation strategies (generation only, no shrinking).

use crate::test_runner::TestRng;
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Chains into a dependent strategy: `f` maps each generated value
    /// to the strategy the final value is drawn from.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Builds recursive structures: `recurse` receives a strategy for the
    /// substructure and returns a strategy for one more level. `depth`
    /// bounds the recursion; the extra proptest tuning parameters are
    /// accepted for signature compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let base = self.boxed();
        Recursive {
            base,
            depth,
            recurse: Arc::new(move |s| recurse(s).boxed()),
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// String-pattern strategies: a `&str` is interpreted as a tiny regex
/// subset — literal characters, `[a-z0-9]`-style classes (with ranges),
/// and `{m}` / `{m,n}` repetitions on the preceding atom.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .expect("unterminated character class");
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .expect("unterminated repetition");
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("bad repetition min"),
                        b.trim().parse::<usize>().expect("bad repetition max"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = min + rng.below(max - min + 1);
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len())]);
            }
        }
        out
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among type-erased strategies (built by `prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// See [`Strategy::prop_recursive`].
#[derive(Clone)]
pub struct Recursive<T> {
    pub(crate) base: BoxedStrategy<T>,
    pub(crate) depth: u32,
    pub(crate) recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        // Compose `recurse` a geometrically distributed number of times
        // (halving probability per level), bounded by `depth`.
        let mut strat = self.base.clone();
        let mut level = 0;
        while level < self.depth && rng.below(2) == 0 {
            strat = (self.recurse)(strat);
            level += 1;
        }
        strat.generate(rng)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )+};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let x = (-5.0..5.0f64).generate(&mut rng);
            assert!((-5.0..5.0).contains(&x));
            let n = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&n));
            let i = (-4i32..4).generate(&mut rng);
            assert!((-4..4).contains(&i));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::for_test("map_and_tuple_compose");
        let s = (0.0..1.0f64, 10u8..20).prop_map(|(f, i)| (f * 100.0) as u8 + i);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 120);
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = TestRng::for_test("union_uses_every_arm");
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let vals: Vec<u8> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.contains(&1) && vals.contains(&2));
    }

    #[test]
    fn recursive_bounded_by_depth() {
        #[derive(Debug)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn height(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(cs) => 1 + cs.iter().map(height).max().unwrap_or(0),
            }
        }
        let s = Just(())
            .prop_map(|_| T::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(T::Node)
            });
        let mut rng = TestRng::for_test("recursive_bounded_by_depth");
        for _ in 0..200 {
            assert!(height(&s.generate(&mut rng)) <= 3);
        }
    }
}
