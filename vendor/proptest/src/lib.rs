//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! re-implements the subset of proptest the workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`prop_oneof!`], numeric-range and tuple strategies, `prop_map`,
//! `prop_recursive`, [`collection::vec`] and [`strategy::Just`].
//!
//! It is generation-only: failing cases are reported with their case
//! number and message but are **not shrunk**. Generation is deterministic
//! per test name, so failures reproduce exactly across runs.

pub mod strategy;
pub mod test_runner;

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specifications accepted by [`vec`]: an exact length or a
    /// half-open range of lengths.
    pub trait IntoSizeRange {
        /// The inclusive minimum and exclusive maximum length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty size range");
        VecStrategy { element, min, max }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.min + rng.below(self.max - self.min);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The things property tests normally import.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` running `body` over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public
/// API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $arg =
                                $crate::strategy::Strategy::generate(&($strat), &mut rng);
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items!{ config = ($config); $($rest)* }
    };
}

/// Asserts a condition inside a property test, failing the current case
/// (with formatted context) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
