//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the small slice of the criterion API the workspace's
//! benches use: `Criterion`, benchmark groups, `BenchmarkId`,
//! `Bencher::iter`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros. It measures wall-clock time (median over
//! `sample_size` samples after a warm-up) and prints one line per
//! benchmark; there is no statistics engine, plotting, or baseline
//! comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The harness entry point: holds measurement settings.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.clone(),
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), &self.clone(), &mut f);
        self
    }
}

/// A named benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function_name.into()))
    }

    /// Just the parameter (the group name provides the function part).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Criterion,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{id}", self.name), &self.settings, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{id}", self.name), &self.settings, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the routine
/// to measure.
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Measures `routine`: warms up, calibrates an iteration count, then
    /// records `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up (and calibrate the per-iteration cost).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Split the measurement budget across samples.
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, settings: &Criterion, f: &mut F) {
    let mut b = Bencher {
        samples_ns: Vec::with_capacity(settings.sample_size),
        sample_size: settings.sample_size,
        warm_up: settings.warm_up,
        measurement: settings.measurement,
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{name:<50} (no measurement: routine never called iter)");
        return;
    }
    b.samples_ns.sort_by(|a, c| a.total_cmp(c));
    let median = b.samples_ns[b.samples_ns.len() / 2];
    let min = b.samples_ns[0];
    let max = b.samples_ns[b.samples_ns.len() - 1];
    println!(
        "{name:<50} time: [{} {} {}]",
        format_ns(min),
        format_ns(median),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!{
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
