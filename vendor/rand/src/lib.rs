//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the exact API surface the workspace uses — nothing
//! more. The generator is xoshiro256++ seeded via SplitMix64: fast,
//! well-distributed, and fully deterministic for a given seed, which is
//! all the simulation needs (every stochastic model in the workspace is
//! seeded explicitly for reproducibility).

/// Core generator interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (the subset of the real `SeedableRng` we need).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling extension methods, in the spirit of `rand::Rng`.
pub trait RngExt: RngCore {
    /// Samples a value of `T` from its canonical uniform distribution
    /// (`f64` in `[0, 1)`, full range for integers).
    fn random<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Types samplable from their canonical uniform distribution.
pub trait Sample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Sample for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// In-place slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice uniformly.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                // Modulo bias is negligible for the slice lengths the
                // workspace shuffles (hundreds of samples vs 2^64).
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..8).map(|_| a.random::<f64>()).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.random::<f64>()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
