#!/usr/bin/env bash
# Regenerates everything the repository claims: tests, the paper's
# figures, and the benchmark suite. Outputs land next to this script's
# invocation directory as test_output.txt / bench_output.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== building =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace 2>&1 | tee test_output.txt

echo "== experiments (all paper figures) =="
cargo run --release -p sesame-bench --bin experiments -- all

echo "== robustness sweep =="
cargo run --release -p sesame-bench --bin experiments -- robustness

echo "== criterion benches =="
cargo bench --workspace 2>&1 | tee bench_output.txt
