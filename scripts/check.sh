#!/usr/bin/env bash
# Full pre-merge gate: release build, the whole test suite, and clippy
# with warnings promoted to errors. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (root package: tier-1 gate)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> chaos smoke: 10 seeded random-fault scenario runs at --jobs 4 must stay panic-free"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run -q --release -p sesame-bench --bin chaos -- 10 smoke --jobs 4 > "$tmpdir/parallel.txt"

echo "==> determinism gate: serial vs parallel chaos reports must be byte-identical"
cargo run -q --release -p sesame-bench --bin chaos -- 10 smoke --jobs 1 > "$tmpdir/serial.txt"
if ! diff -u "$tmpdir/serial.txt" "$tmpdir/parallel.txt"; then
    echo "FAIL: --jobs 4 chaos report diverged from the serial (--jobs 1) report" >&2
    exit 1
fi

echo "==> panic-injection soak: 50 seeds with scheduled compute faults (EDDI panics, NaN telemetry, solver stalls) must isolate every fault — zero aborts"
cargo run -q --release -p sesame-bench --bin chaos -- 50 smoke panics --jobs 4 > "$tmpdir/panics_parallel.txt"
cargo run -q --release -p sesame-bench --bin chaos -- 50 smoke panics --jobs 1 > "$tmpdir/panics_serial.txt"
if ! diff -u "$tmpdir/panics_serial.txt" "$tmpdir/panics_parallel.txt"; then
    echo "FAIL: panic-injection campaign diverged between --jobs 1 and --jobs 4" >&2
    exit 1
fi

echo "==> busbench smoke: zero-copy fanout must hold its 3x margin over the reference bus"
cargo run -q --release -p sesame-bench --bin busbench -- smoke > BENCH_bus.json
cat BENCH_bus.json

echo "==> eddibench smoke: the incremental EDDI fast path must hold its 3x margin over the reference runtime"
cargo run -q --release -p sesame-bench --bin eddibench -- smoke > BENCH_eddi.json
cat BENCH_eddi.json

echo "==> fleetbench smoke: sharded fleet ticks (3..200 UAVs) must match the serial oracle and hold throughput"
cargo run -q --release -p sesame-bench --bin fleetbench -- smoke > BENCH_fleet.json
cat BENCH_fleet.json

echo "==> fleetbench recovery: supervised tick under injected panics must stay plan-independent and hold throughput"
cargo run -q --release -p sesame-bench --bin fleetbench -- smoke --inject-panics --jobs 4 > BENCH_recovery.json
cat BENCH_recovery.json

echo "==> tickbench smoke: end-to-end platform ticks/sec must hold the 3x margin over the reference path with bit-identical digests"
cargo run -q --release -p sesame-bench --bin tickbench -- smoke > BENCH_tick.json
cat BENCH_tick.json

echo "==> serverbench soak: 8 clients x 34 campaigns with a mid-campaign kill-and-restart; every run must replay digest-identically from the log — zero aborts"
cargo run -q --release -p sesame-bench --bin serverbench -- smoke --jobs 4 > BENCH_server.json
cat BENCH_server.json

echo "==> run-log corruption properties: torn tails, flipped bits and torn replays must all be refused with typed errors"
SESAME_FUZZ_CASES=512 cargo test -q -p sesame-server

echo "==> scenario library: every .sesame file must compile, validate and smoke-run"
cargo run -q --release -p sesame-bench --bin scenario -- check scenarios/*.sesame
cargo run -q --release -p sesame-bench --bin scenario -- smoke scenarios/*.sesame

echo "==> scenario DSL fuzz: parser/compiler never panic, spans stay in range, print is a parse fixed point (2048 cases/property)"
SESAME_FUZZ_CASES=2048 cargo test -q -p sesame-scenario-dsl --test fuzz

echo "==> bench gate: fresh numbers vs committed baselines (>20% regression fails)"
scripts/bench_gate.sh

echo "OK: build, tests, clippy, fmt, parallel chaos smoke, determinism diff, panic-injection soak, busbench, eddibench, fleetbench, the recovery bench, tickbench, the server soak, the run-log properties, the scenario library smoke, the DSL fuzz suite and the bench gate all green"
