#!/usr/bin/env bash
# Full pre-merge gate: release build, the whole test suite, and clippy
# with warnings promoted to errors. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (root package: tier-1 gate)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "OK: build, tests and clippy all green"
