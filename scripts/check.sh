#!/usr/bin/env bash
# Full pre-merge gate: release build, the whole test suite, and clippy
# with warnings promoted to errors. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (root package: tier-1 gate)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> chaos smoke: 10 seeded random-fault scenario runs must stay panic-free"
cargo run -q --release -p sesame-bench --bin chaos -- 10 smoke

echo "OK: build, tests, clippy and chaos smoke all green"
