#!/usr/bin/env bash
# Throughput regression gate: compares the freshly generated
# BENCH_bus.json / BENCH_eddi.json / BENCH_fleet.json / BENCH_tick.json
# / BENCH_server.json (written by scripts/check.sh smoke runs) against
# the committed baselines in scripts/baselines/.
#
#   scripts/bench_gate.sh                    # gate against the baselines
#   UPDATE_BASELINE=1 scripts/bench_gate.sh  # accept the fresh numbers
#
# Two thresholds per bench:
#   - speedup (fast vs in-process reference) below 80% of baseline fails.
#     Both paths see the same machine noise, so the ratio is stable and
#     a >20% drop means the fast path genuinely regressed.
#   - absolute throughput below 50% of baseline fails. Wall-clock
#     throughput swings with load, so this is deliberately loose: it
#     only catches order-of-magnitude collapses, not scheduler noise.
# Refresh the baselines when moving to different hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE_DIR="scripts/baselines"

# First numeric value for a key in a JSON report. Both bench reports
# print the optimized/fast object before the reference object, so the
# first occurrence is always the accelerated path's number.
extract() {
    grep -o "\"$2\": [0-9.]*" "$1" | head -1 | awk -F': ' '{print $2}'
}

# gate <fresh_file> <key> <min_fraction> <label>
gate() {
    local fresh_file="$1" key="$2" min_fraction="$3" label="$4"
    local baseline_file="$BASELINE_DIR/$(basename "$fresh_file")"
    if [[ ! -f "$fresh_file" ]]; then
        echo "bench_gate: $fresh_file missing — run scripts/check.sh first" >&2
        exit 1
    fi
    if [[ ! -f "$baseline_file" ]]; then
        echo "bench_gate: no baseline $baseline_file — run UPDATE_BASELINE=1 scripts/bench_gate.sh" >&2
        exit 1
    fi
    local fresh baseline
    fresh="$(extract "$fresh_file" "$key")"
    baseline="$(extract "$baseline_file" "$key")"
    if [[ -z "$fresh" || -z "$baseline" ]]; then
        echo "bench_gate: could not extract $key from $fresh_file / $baseline_file" >&2
        exit 1
    fi
    if awk -v f="$fresh" -v b="$baseline" -v m="$min_fraction" 'BEGIN { exit !(f < m * b) }'; then
        echo "bench_gate: FAIL — $label $key regressed below ${min_fraction}x baseline: $fresh vs $baseline" >&2
        exit 1
    fi
    echo "bench_gate: $label $key $fresh vs baseline $baseline — ok"
}

# gate_max <fresh_file> <key> <max_multiple> <label> — inverted gate for
# latency-style metrics where *higher* is worse: fail when the fresh
# value exceeds max_multiple x baseline.
gate_max() {
    local fresh_file="$1" key="$2" max_multiple="$3" label="$4"
    local baseline_file="$BASELINE_DIR/$(basename "$fresh_file")"
    if [[ ! -f "$fresh_file" ]]; then
        echo "bench_gate: $fresh_file missing — run scripts/check.sh first" >&2
        exit 1
    fi
    if [[ ! -f "$baseline_file" ]]; then
        echo "bench_gate: no baseline $baseline_file — run UPDATE_BASELINE=1 scripts/bench_gate.sh" >&2
        exit 1
    fi
    local fresh baseline
    fresh="$(extract "$fresh_file" "$key")"
    baseline="$(extract "$baseline_file" "$key")"
    if [[ -z "$fresh" || -z "$baseline" ]]; then
        echo "bench_gate: could not extract $key from $fresh_file / $baseline_file" >&2
        exit 1
    fi
    if awk -v f="$fresh" -v b="$baseline" -v m="$max_multiple" 'BEGIN { exit !(f > m * b) }'; then
        echo "bench_gate: FAIL — $label $key regressed above ${max_multiple}x baseline: $fresh vs $baseline" >&2
        exit 1
    fi
    echo "bench_gate: $label $key $fresh vs baseline $baseline — ok"
}

update() {
    local fresh_file="$1"
    if [[ ! -f "$fresh_file" ]]; then
        echo "bench_gate: $fresh_file missing — run scripts/check.sh first" >&2
        exit 1
    fi
    mkdir -p "$BASELINE_DIR"
    cp "$fresh_file" "$BASELINE_DIR/$(basename "$fresh_file")"
    echo "bench_gate: baseline $BASELINE_DIR/$(basename "$fresh_file") updated"
}

if [[ "${UPDATE_BASELINE:-0}" == "1" ]]; then
    update BENCH_bus.json
    update BENCH_eddi.json
    update BENCH_fleet.json
    update BENCH_recovery.json
    update BENCH_tick.json
    update BENCH_server.json
    exit 0
fi

gate BENCH_bus.json   speedup           0.8 busbench
gate BENCH_bus.json   msgs_per_sec      0.5 busbench
gate BENCH_eddi.json  speedup           0.8 eddibench
gate BENCH_eddi.json  ticks_per_sec     0.5 eddibench
# fleetbench's headline is the largest fleet's per-UAV throughput; the
# sharded/serial speedup hovers near 1.0 on small machines (Auto stays
# serial below the core budget), so only the absolute floor is gated.
gate BENCH_fleet.json uav_ticks_per_sec 0.5 fleetbench
# Recovery workload: throughput under injected compute faults with the
# full containment machinery live (isolation, quarantine, revival
# probes, watchdog demotion). Floors only — the faulted/clean ratio
# wobbles because quarantined UAVs skip EDDI work.
gate BENCH_recovery.json uav_ticks_per_sec 0.5 fleetbench-recovery
# tickbench's headline is the whole-platform speedup on the 3-UAV steady
# state (fast vs reference engines inside the same process) plus an
# absolute ticks/sec floor.
gate BENCH_tick.json speedup       0.8 tickbench
gate BENCH_tick.json ticks_per_sec 0.5 tickbench
# Campaign-service soak: absolute throughput floors (loose, wall-clock
# bound) plus a tail-latency ceiling — submit→complete p99 more than 4x
# the baseline means the scheduler or the log path got slow, even if
# throughput survived.
gate BENCH_server.json runs_per_sec      0.5 serverbench
gate BENCH_server.json campaigns_per_sec 0.5 serverbench
gate_max BENCH_server.json latency_p99_ms 4.0 serverbench
